//! LHD — Least Hit Density (Beckmann, Chen & Cidon, NSDI '18).
//!
//! LHD estimates each object's *hit density* — expected hits per unit of
//! cache space-time — from the empirical distribution of hits and evictions
//! over object ages, and evicts the sampled object with the lowest density.
//!
//! This implementation follows the published design in its practical form:
//!
//! - ages (time since last access, in requests) are coarsened into log2
//!   buckets;
//! - per-bucket hit and end-of-life counters are decayed periodically
//!   (EWMA), giving a sliding-window estimate;
//! - the density of age `b` is `(hits beyond b) / (object-time beyond b)`,
//!   divided by the object's size (hit density per byte);
//! - eviction samples 16 random resident objects and evicts the minimum-
//!   density one, as in the paper's sampled variant.

use crate::util::Meta;
use cache_ds::{IdMap, SplitMix64};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

const AGE_BUCKETS: usize = 40;
const SAMPLES: usize = 16;

struct Entry {
    /// Index into `keys` for O(1) sampling.
    slot: usize,
    meta: Meta,
}

/// The LHD eviction algorithm (sampled, age-bucketed).
pub struct Lhd {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// Dense key vector for uniform sampling; `table[id].slot` indexes it.
    keys: Vec<ObjId>,
    /// Hits observed at each age bucket.
    hits: [f64; AGE_BUCKETS],
    /// Lifetimes ended (evictions) at each age bucket.
    ends: [f64; AGE_BUCKETS],
    /// Precomputed density per age bucket.
    density: [f64; AGE_BUCKETS],
    /// Requests since the last reconfiguration.
    since_reconfigure: u64,
    reconfigure_every: u64,
    now: u64,
    rng: SplitMix64,
    stats: PolicyStats,
}

impl Lhd {
    /// Creates an LHD cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        let mut lhd = Lhd {
            capacity,
            used: 0,
            table: IdMap::default(),
            keys: Vec::new(),
            hits: [0.0; AGE_BUCKETS],
            ends: [0.0; AGE_BUCKETS],
            density: [0.0; AGE_BUCKETS],
            since_reconfigure: 0,
            reconfigure_every: capacity.clamp(1 << 10, 1 << 18),
            now: 0,
            rng: SplitMix64::new(0x14D),
            stats: PolicyStats::default(),
        };
        lhd.reconfigure();
        Ok(lhd)
    }

    #[inline]
    fn bucket_of(age: u64) -> usize {
        ((64 - age.leading_zeros()) as usize).min(AGE_BUCKETS - 1)
    }

    /// Recomputes the density table from the age histograms and decays the
    /// histograms (the paper's periodic reconfiguration).
    fn reconfigure(&mut self) {
        // Suffix sums: expected hits and expected object-time beyond each
        // age bucket (object-time approximated by the bucket's midpoint age
        // times the events ending there).
        let mut hits_beyond = 0.0f64;
        let mut time_beyond = 0.0f64;
        for b in (0..AGE_BUCKETS).rev() {
            let events = self.hits[b] + self.ends[b];
            let age_rep = (1u64 << b.min(62)) as f64;
            hits_beyond += self.hits[b];
            time_beyond += events * age_rep;
            self.density[b] = if time_beyond > 0.0 {
                hits_beyond / time_beyond
            } else {
                // No lifetime has ever reached this age: an object this old
                // has outlived everything observed, so its expected hit
                // density is zero (evict first).
                0.0
            };
        }
        for b in 0..AGE_BUCKETS {
            self.hits[b] *= 0.9;
            self.ends[b] *= 0.9;
        }
        self.since_reconfigure = 0;
    }

    fn density_of(&self, e: &Entry) -> f64 {
        let age = self.now.saturating_sub(e.meta.last_access);
        let b = Self::bucket_of(age);
        self.density[b] / f64::from(e.meta.size.max(1))
    }

    fn remove_slot(&mut self, id: ObjId) -> Entry {
        // Invariant: callers only remove resident ids.
        let entry = self.table.remove(&id).expect("id in table");
        let slot = entry.slot;
        let last = self.keys.len() - 1;
        self.keys.swap(slot, last);
        self.keys.pop();
        if slot < self.keys.len() {
            let moved = self.keys[slot];
            // Invariant: every id in keys is tabled.
            self.table.get_mut(&moved).expect("moved id in table").slot = slot;
        }
        self.used -= u64::from(entry.meta.size);
        entry
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if self.keys.is_empty() {
            return;
        }
        // Sample up to SAMPLES distinct-ish candidates; duplicates are
        // harmless (they only reduce effective sample size).
        let mut victim: Option<(f64, ObjId)> = None;
        for _ in 0..SAMPLES.min(self.keys.len() * 2) {
            let idx = self.rng.next_below(self.keys.len() as u64) as usize;
            let id = self.keys[idx];
            let d = self.density_of(&self.table[&id]);
            if victim.map(|(vd, _)| d < vd).unwrap_or(true) {
                victim = Some((d, id));
            }
        }
        // Invariant: eviction only runs with a non-empty key set.
        let (_, id) = victim.expect("non-empty keys yields a victim");
        let entry = self.remove_slot(id);
        let age = self.now.saturating_sub(entry.meta.last_access);
        self.ends[Self::bucket_of(age)] += 1.0;
        self.stats.evictions += 1;
        evicted.push(entry.meta.eviction(id, false));
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let slot = self.keys.len();
        self.keys.push(req.id);
        self.table.insert(
            req.id,
            Entry {
                slot,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, id: ObjId) {
        if self.table.contains_key(&id) {
            self.remove_slot(id);
        }
    }
}

impl Policy for Lhd {
    fn name(&self) -> String {
        "LHD".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        self.now += 1;
        self.since_reconfigure += 1;
        if self.since_reconfigure >= self.reconfigure_every {
            self.reconfigure();
        }
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    let age = {
                        // Invariant: contains_key just succeeded.
                        let e = self.table.get_mut(&req.id).expect("entry exists");
                        let age = self.now.saturating_sub(e.meta.last_access);
                        e.meta.touch(req.time);
                        age
                    };
                    self.hits[Self::bucket_of(age)] += 1.0;
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn capacity_bounded() {
        let mut p = Lhd::new(64).unwrap();
        let trace = test_trace(20_000, 1000, 97);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 64);
        }
    }

    #[test]
    fn hot_objects_survive() {
        let mut p = Lhd::new(50).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Hot set accessed continuously while cold objects stream through.
        let mut state = 1u64;
        for _ in 0..30_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = state >> 33;
            let id = if r % 2 == 0 {
                (r >> 1) % 10
            } else {
                1000 + (r % 100_000)
            };
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (0..10u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 8, "hot set not retained: {survivors}/10");
    }

    #[test]
    fn beats_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 101);
        let mut lhd = Lhd::new(64).unwrap();
        let mut f = crate::fifo::Fifo::new(64).unwrap();
        let mr_l = miss_ratio_of(&mut lhd, &trace);
        let mr_f = miss_ratio_of(&mut f, &trace);
        assert!(mr_l < mr_f, "LHD {mr_l:.4} vs FIFO {mr_f:.4}");
    }

    #[test]
    fn key_vector_consistent_after_churn() {
        let mut p = Lhd::new(32).unwrap();
        let trace = test_trace(5000, 200, 103);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert_eq!(p.keys.len(), p.table.len());
        }
        for (i, &id) in p.keys.iter().enumerate() {
            assert_eq!(p.table[&id].slot, i, "slot mapping corrupted");
        }
    }

    #[test]
    fn basics() {
        let mut p = Lhd::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Lhd::new(0).is_err());
    }
}

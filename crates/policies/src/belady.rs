//! Belady's MIN / OPT — the offline-optimal eviction algorithm.
//!
//! Belady evicts the cached object whose next request is furthest in the
//! future (objects never requested again are evicted first). It needs the
//! whole trace up front, so [`Belady::new`] takes the request sequence and
//! precomputes, for every position, when the same object is requested next.
//! Fig. 4 uses Belady to show that even the optimal policy evicts mostly
//! one-hit wonders.

use crate::util::Meta;
use cache_ds::IdMap;
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::BTreeSet;

/// "Never requested again."
const INFINITY: u64 = u64::MAX;

struct Entry {
    next_use: u64,
    meta: Meta,
}

/// The offline-optimal eviction policy.
pub struct Belady {
    capacity: u64,
    used: u64,
    /// For request position `i`, the position of the next request to the
    /// same object (or [`INFINITY`]).
    next_occurrence: Vec<u64>,
    /// Current position in the trace.
    pos: usize,
    table: IdMap<Entry>,
    /// Cached objects ordered by next use; the maximum is the victim.
    order: BTreeSet<(u64, ObjId)>,
    stats: PolicyStats,
}

impl Belady {
    /// Creates an offline-optimal policy for the given trace.
    ///
    /// The policy must then be driven with exactly that trace, in order.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, trace: &[Request]) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        let mut next_occurrence = vec![INFINITY; trace.len()];
        let mut last_seen: IdMap<u64> = IdMap::default();
        for (i, r) in trace.iter().enumerate().rev() {
            if let Some(&later) = last_seen.get(&r.id) {
                next_occurrence[i] = later;
            }
            last_seen.insert(r.id, i as u64);
        }
        Ok(Belady {
            capacity,
            used: 0,
            next_occurrence,
            pos: 0,
            table: IdMap::default(),
            order: BTreeSet::new(),
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(&(next, id)) = self.order.iter().next_back() {
            self.order.remove(&(next, id));
            // Invariant: the order set and the table index the same ids.
            let entry = self.table.remove(&id).expect("ordered id in table");
            self.used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.order.remove(&(e.next_use, id));
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Belady {
    fn name(&self) -> String {
        "Belady".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        // Positions beyond the precomputed trace (e.g. ad-hoc probes in
        // tests) are treated as never-requested-again.
        let next = self
            .next_occurrence
            .get(self.pos)
            .copied()
            .unwrap_or(INFINITY);
        self.pos += 1;
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    // Invariant: contains_key just succeeded.
                    let e = self.table.get_mut(&req.id).expect("entry exists");
                    e.meta.touch(req.time);
                    let old = e.next_use;
                    e.next_use = next;
                    self.order.remove(&(old, req.id));
                    self.order.insert((next, req.id));
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty()
                    {
                        self.evict_one(evicted);
                    }
                    self.table.insert(
                        req.id,
                        Entry {
                            next_use: next,
                            meta: Meta::new(req.size, req.time),
                        },
                    );
                    self.order.insert((next, req.id));
                    self.used += u64::from(req.size);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty()
                    {
                        self.evict_one(evicted);
                    }
                    self.table.insert(
                        req.id,
                        Entry {
                            next_use: next,
                            meta: Meta::new(req.size, req.time),
                        },
                    );
                    self.order.insert((next, req.id));
                    self.used += u64::from(req.size);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{miss_ratio_of, test_trace};
    use cache_types::policy::run_trace;

    #[test]
    fn textbook_example() {
        // The textbook OPT example (Silberschatz et al.): 3 frames, the
        // 20-reference string below incurs exactly 9 page faults.
        let ids = [
            7u64, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1,
        ];
        let reqs: Vec<Request> = ids
            .iter()
            .enumerate()
            .map(|(t, &id)| Request::get(id, t as u64))
            .collect();
        let mut p = Belady::new(3, &reqs).unwrap();
        let s = run_trace(&mut p, &reqs);
        assert_eq!(s.misses, 9, "OPT page-fault count on the textbook string");
    }

    #[test]
    fn optimal_beats_every_online_policy() {
        let trace = test_trace(20_000, 800, 131);
        let cap = 64u64;
        let mut opt = Belady::new(cap, &trace).unwrap();
        let mr_opt = miss_ratio_of(&mut opt, &trace);
        let mut lru = crate::lru::Lru::new(cap).unwrap();
        let mr_lru = miss_ratio_of(&mut lru, &trace);
        let mut fifo = crate::fifo::Fifo::new(cap).unwrap();
        let mr_fifo = miss_ratio_of(&mut fifo, &trace);
        let mut arc = crate::arc::Arc::new(cap).unwrap();
        let mr_arc = miss_ratio_of(&mut arc, &trace);
        assert!(mr_opt <= mr_lru + 1e-12, "OPT {mr_opt} vs LRU {mr_lru}");
        assert!(mr_opt <= mr_fifo + 1e-12, "OPT {mr_opt} vs FIFO {mr_fifo}");
        assert!(mr_opt <= mr_arc + 1e-12, "OPT {mr_opt} vs ARC {mr_arc}");
    }

    #[test]
    fn evicts_never_used_again_first() {
        let ids = [1u64, 2, 3, 1, 2, 4, 1, 2];
        let reqs: Vec<Request> = ids
            .iter()
            .enumerate()
            .map(|(t, &id)| Request::get(id, t as u64))
            .collect();
        let mut p = Belady::new(2, &reqs).unwrap();
        let mut evs = Vec::new();
        for r in &reqs[..3] {
            evs.clear();
            p.request(r, &mut evs);
        }
        // At the insert of 3, the cache held {1, 2}; 3 itself is never used
        // again while 1 and 2 are, so 3's insert should have evicted the one
        // with the furthest next use... and 3 becomes the next victim.
        evs.clear();
        p.request(&reqs[3], &mut evs); // request 1
        p.request(&reqs[4], &mut evs); // request 2
                                       // 3 must be gone by now if any eviction happened; at minimum OPT
                                       // keeps 1 and 2 for their upcoming requests.
        assert!(p.stats().misses <= 4);
    }

    #[test]
    fn capacity_bounded() {
        let trace = test_trace(10_000, 500, 137);
        let mut p = Belady::new(32, &trace).unwrap();
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 32);
        }
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Belady::new(0, &[]).is_err());
    }
}

//! CACHEUS (Rodriguez et al., FAST '21).
//!
//! CACHEUS is LeCaR's successor: two *scan- and churn-resistant* experts —
//! SR-LRU and CR-LFU — mixed with a regret-minimizing weight update whose
//! learning rate adapts online.
//!
//! This implementation follows the published design at the level the
//! paper's comparison needs:
//!
//! - **SR-LRU** keeps a demoted (probationary) region `SR` and a protected
//!   region `R`. New and once-used blocks live in `SR`; a hit in `SR`
//!   promotes to `R`; `R` overflow demotes back to `SR`. SR-LRU's victim is
//!   the `SR` tail, which makes the expert scan-resistant.
//! - **CR-LFU** is LFU with churn resistance: on frequency ties the *most*
//!   recently used block is the victim's tie-break survivor (implemented by
//!   preferring to evict the least recently used among minimum-frequency
//!   blocks).
//! - The adaptive learning rate follows CACHEUS's scheme: the rate is
//!   bumped when the hit rate over a window degrades and decayed otherwise.

use crate::util::{GhostList, Meta};
use cache_ds::{DList, Handle, IdMap, SplitMix64};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    /// Probationary (scan-resistant) region of SR-LRU.
    Sr,
    /// Protected region.
    R,
}

struct Entry {
    handle: Handle,
    region: Region,
    freq: u64,
    lfu_seq: u64,
    meta: Meta,
}

/// The CACHEUS eviction algorithm.
pub struct Cacheus {
    capacity: u64,
    /// Target size of the protected region (half the cache, adapted by
    /// demotions).
    r_capacity: u64,
    used: u64,
    sr_used: u64,
    r_used: u64,
    table: IdMap<Entry>,
    sr: DList<ObjId>,
    r: DList<ObjId>,
    /// CR-LFU order: (freq, lru_seq, id); min = victim.
    lfu: BTreeSet<(u64, u64, ObjId)>,
    seq: u64,
    w_srlru: f64,
    w_crlfu: f64,
    learning_rate: f64,
    h_srlru: GhostList,
    h_crlfu: GhostList,
    /// Hit tracking for learning-rate adaptation.
    window_hits: u64,
    window_reqs: u64,
    prev_hit_rate: f64,
    rng: SplitMix64,
    stats: PolicyStats,
}

impl Cacheus {
    /// Creates a CACHEUS cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Cacheus {
            capacity,
            r_capacity: (capacity / 2).max(1),
            used: 0,
            sr_used: 0,
            r_used: 0,
            table: IdMap::default(),
            sr: DList::new(),
            r: DList::new(),
            lfu: BTreeSet::new(),
            seq: 0,
            w_srlru: 0.5,
            w_crlfu: 0.5,
            learning_rate: 0.45,
            h_srlru: GhostList::new(capacity / 2),
            h_crlfu: GhostList::new(capacity / 2),
            window_hits: 0,
            window_reqs: 0,
            prev_hit_rate: 0.0,
            rng: SplitMix64::new(0xCAC0),
            stats: PolicyStats::default(),
        })
    }

    /// Current (w_srlru, w_crlfu) weights.
    pub fn weights(&self) -> (f64, f64) {
        (self.w_srlru, self.w_crlfu)
    }

    fn reward(&mut self, mistaken_srlru: bool) {
        if mistaken_srlru {
            self.w_crlfu *= self.learning_rate.exp();
        } else {
            self.w_srlru *= self.learning_rate.exp();
        }
        let total = self.w_srlru + self.w_crlfu;
        self.w_srlru /= total;
        self.w_crlfu /= total;
    }

    /// CACHEUS adapts its learning rate based on hit-rate movement over
    /// windows of `capacity` requests.
    fn adapt_learning_rate(&mut self) {
        if self.window_reqs < self.capacity.clamp(64, 1 << 16) {
            return;
        }
        let hit_rate = self.window_hits as f64 / self.window_reqs as f64;
        if hit_rate < self.prev_hit_rate {
            // Performance degraded: explore with a larger rate.
            self.learning_rate = (self.learning_rate * 1.1).min(1.0);
        } else {
            self.learning_rate = (self.learning_rate * 0.9).max(0.001);
        }
        self.prev_hit_rate = hit_rate;
        self.window_hits = 0;
        self.window_reqs = 0;
    }

    fn srlru_victim(&self) -> Option<ObjId> {
        self.sr.back().copied().or_else(|| self.r.back().copied())
    }

    fn crlfu_victim(&self) -> Option<ObjId> {
        self.lfu.iter().next().map(|&(_, _, id)| id)
    }

    fn remove_entry(&mut self, id: ObjId) -> Entry {
        // Invariant: callers only remove resident ids.
        let entry = self.table.remove(&id).expect("entry in table");
        match entry.region {
            Region::Sr => {
                self.sr.remove(entry.handle);
                self.sr_used -= u64::from(entry.meta.size);
            }
            Region::R => {
                self.r.remove(entry.handle);
                self.r_used -= u64::from(entry.meta.size);
            }
        }
        self.lfu.remove(&(entry.freq, entry.lfu_seq, id));
        self.used -= u64::from(entry.meta.size);
        entry
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        let (Some(sv), Some(fv)) = (self.srlru_victim(), self.crlfu_victim()) else {
            return;
        };
        let use_srlru = sv == fv || self.rng.next_f64() < self.w_srlru;
        let victim = if use_srlru { sv } else { fv };
        let entry = self.remove_entry(victim);
        self.stats.evictions += 1;
        evicted.push(entry.meta.eviction(victim, entry.region == Region::Sr));
        if sv != fv {
            if use_srlru {
                self.h_srlru.insert(victim, entry.meta.size);
            } else {
                self.h_crlfu.insert(victim, entry.meta.size);
            }
        }
    }

    /// R-region overflow demotes its LRU tail into SR (scan resistance).
    fn rebalance(&mut self) {
        while self.r_used > self.r_capacity {
            let Some(id) = self.r.pop_back() else { break };
            let e = self.table.get_mut(&id).expect("r id in table");
            self.r_used -= u64::from(e.meta.size);
            e.region = Region::Sr;
            e.handle = self.sr.push_front(id);
            self.sr_used += u64::from(e.meta.size);
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        self.seq += 1;
        let handle = self.sr.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                region: Region::Sr,
                freq: 1,
                lfu_seq: self.seq,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.lfu.insert((1, self.seq, req.id));
        self.sr_used += u64::from(req.size);
        self.used += u64::from(req.size);
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let (region, freq, lfu_seq, handle, size) = {
            // Invariant: on_hit fires only after a successful lookup.
            let e = self.table.get_mut(&id).expect("hit id in table");
            e.meta.touch(now);
            (e.region, e.freq, e.lfu_seq, e.handle, e.meta.size)
        };
        // CR-LFU bookkeeping: bump frequency, refresh recency sequence.
        self.lfu.remove(&(freq, lfu_seq, id));
        self.seq += 1;
        let new_seq = self.seq;
        {
            // Invariant: still tabled — the entry was read a moment ago.
            let e = self.table.get_mut(&id).expect("entry exists");
            e.freq = freq + 1;
            e.lfu_seq = new_seq;
        }
        self.lfu.insert((freq + 1, new_seq, id));
        // SR-LRU bookkeeping: SR hit promotes to R; R hit refreshes.
        match region {
            Region::Sr => {
                self.sr.remove(handle);
                self.sr_used -= u64::from(size);
                let h = self.r.push_front(id);
                self.r_used += u64::from(size);
                // Invariant: still tabled — only the region handle changed.
                let e = self.table.get_mut(&id).expect("entry exists");
                e.region = Region::R;
                e.handle = h;
                self.rebalance();
            }
            Region::R => {
                self.r.move_to_front(handle);
            }
        }
    }

    fn learn_from_ghosts(&mut self, id: ObjId) {
        if self.h_srlru.remove(id) {
            self.reward(true);
        } else if self.h_crlfu.remove(id) {
            self.reward(false);
        }
    }

    fn delete(&mut self, id: ObjId) {
        if self.table.contains_key(&id) {
            self.remove_entry(id);
        }
    }
}

impl Policy for Cacheus {
    fn name(&self) -> String {
        "CACHEUS".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                self.window_reqs += 1;
                let out = if self.table.contains_key(&req.id) {
                    self.window_hits += 1;
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.learn_from_ghosts(req.id);
                    self.insert(req, evicted);
                    Outcome::Miss
                };
                self.adapt_learning_rate();
                out
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn weights_normalized_under_load() {
        let mut p = Cacheus::new(32).unwrap();
        let trace = test_trace(10_000, 500, 73);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            let (a, b) = p.weights();
            assert!((a + b - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sr_hit_promotes_to_r() {
        let mut p = Cacheus::new(10).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        assert_eq!(p.table[&1].region, Region::Sr);
        p.request(&Request::get(1, 1), &mut evs);
        assert_eq!(p.table[&1].region, Region::R);
    }

    #[test]
    fn capacity_bounded() {
        let mut p = Cacheus::new(64).unwrap();
        let trace = test_trace(20_000, 1000, 79);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 64);
        }
    }

    #[test]
    fn learning_rate_stays_in_range() {
        let mut p = Cacheus::new(64).unwrap();
        let trace = test_trace(50_000, 2000, 83);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
        }
        assert!(p.learning_rate >= 0.001 && p.learning_rate <= 1.0);
    }

    #[test]
    fn scan_resistant_working_set() {
        let mut p = Cacheus::new(20).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        for id in 0..8u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        for id in 1000..1100u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (0..8u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 5, "R region flushed: {survivors}/8");
    }

    #[test]
    fn competitive_with_lru() {
        let trace = test_trace(30_000, 2000, 89);
        let mut c = Cacheus::new(64).unwrap();
        let mut l = crate::lru::Lru::new(64).unwrap();
        let mr_c = miss_ratio_of(&mut c, &trace);
        let mr_l = miss_ratio_of(&mut l, &trace);
        assert!(mr_c <= mr_l + 0.03, "CACHEUS {mr_c:.4} vs LRU {mr_l:.4}");
    }

    #[test]
    fn basics() {
        let mut p = Cacheus::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Cacheus::new(0).is_err());
    }
}

//! LRU eviction: promote to the queue head on every hit, evict the tail.
//!
//! The incumbent that §2.2 critiques: promotion costs "at least six random
//! memory accesses protected by a lock" in a concurrent setting, and the
//! two list pointers per object are significant overhead for small objects.
//! (This single-threaded simulation version measures only its miss ratio;
//! the scalability cost shows up in `cache-concurrent`.)

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

struct Entry {
    handle: Handle,
    meta: Meta,
}

/// Least-recently-used eviction.
pub struct Lru {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// Head = most recently used, tail = next eviction.
    queue: DList<ObjId>,
    stats: PolicyStats,
}

impl Lru {
    /// Creates an LRU cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Lru {
            capacity,
            used: 0,
            table: IdMap::default(),
            queue: DList::new(),
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(id) = self.queue.pop_back() {
            // Invariant: queued ids are always tabled.
            let entry = self.table.remove(&id).expect("queued id in table");
            self.used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.queue.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.queue.remove(e.handle);
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.meta.touch(req.time);
                    let h = e.handle;
                    self.queue.move_to_front(h);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        crate::util::validate_single_queue(
            "LRU",
            self.capacity,
            self.used,
            self.table.len(),
            self.queue.iter(),
            |id| self.table.get(&id).map(|e| e.meta.size),
        )
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn promotes_on_hit() {
        let mut p = Lru::new(2).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(2, 1), &mut evs);
        p.request(&Request::get(1, 2), &mut evs); // 1 becomes MRU
        evs.clear();
        p.request(&Request::get(3, 3), &mut evs);
        assert_eq!(evs[0].id, 2, "LRU must evict the least recently used");
        assert!(p.contains(1));
    }

    #[test]
    fn matches_reference_model() {
        // Differential test against a naive Vec-based LRU model.
        let trace = test_trace(5000, 100, 42);
        let cap = 32usize;
        let mut p = Lru::new(cap as u64).unwrap();
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            let out = p.request(r, &mut evs);
            let model_hit = if let Some(pos) = model.iter().position(|&x| x == r.id) {
                model.remove(pos);
                model.insert(0, r.id);
                true
            } else {
                model.insert(0, r.id);
                if model.len() > cap {
                    model.pop();
                }
                false
            };
            assert_eq!(out.is_hit(), model_hit, "diverged at t={}", r.time);
        }
    }

    #[test]
    fn loop_workload_thrashes() {
        // Classic LRU pathology: a loop one object larger than the cache
        // yields zero hits after the first pass.
        let mut p = Lru::new(10).unwrap();
        let mut evs = Vec::new();
        let mut hits = 0;
        for pass in 0..5u64 {
            for id in 0..11u64 {
                evs.clear();
                if p.request(&Request::get(id, pass * 11 + id), &mut evs)
                    .is_hit()
                {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn beats_fifo_on_skewed_trace() {
        let trace = test_trace(30_000, 3000, 7);
        let mut lru = Lru::new(64).unwrap();
        let mut fifo = crate::fifo::Fifo::new(64).unwrap();
        let mr_lru = miss_ratio_of(&mut lru, &trace);
        let mr_fifo = miss_ratio_of(&mut fifo, &trace);
        assert!(
            mr_lru <= mr_fifo + 0.01,
            "LRU {mr_lru:.4} should be no worse than FIFO {mr_fifo:.4} here"
        );
    }

    #[test]
    fn basics() {
        let mut p = Lru::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Lru::new(0).is_err());
    }
}

//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST '03).
//!
//! Four LRU lists: `T1` (recency) and `T2` (frequency) hold data; `B1` and
//! `B2` are their ghost extensions. A hit in `B1` grows the recency target
//! `p`, a hit in `B2` shrinks it; `REPLACE` evicts from `T1` when it exceeds
//! `p`, else from `T2`. §6.1 analyzes how ARC's adaptation can pick an `S`
//! (here `T1`) that is too small or too large.
//!
//! The classic algorithm is stated in object counts; this implementation
//! generalizes to byte-weighted capacities (object counts are the special
//! case where every size is 1).

use crate::util::{GhostList, Meta};
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    T1,
    T2,
}

struct Entry {
    handle: Handle,
    loc: Loc,
    meta: Meta,
}

/// The ARC eviction algorithm.
pub struct Arc {
    capacity: u64,
    /// Target size (bytes) of T1, adapted online.
    p: u64,
    t1: DList<ObjId>,
    t2: DList<ObjId>,
    b1: GhostList,
    b2: GhostList,
    t1_used: u64,
    t2_used: u64,
    table: IdMap<Entry>,
    stats: PolicyStats,
}

impl Arc {
    /// Creates an ARC cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Arc {
            capacity,
            p: 0,
            t1: DList::new(),
            t2: DList::new(),
            // Each ghost holds up to c bytes of entries; combined directory
            // is bounded by 2c as in the paper.
            b1: GhostList::new(capacity),
            b2: GhostList::new(capacity),
            t1_used: 0,
            t2_used: 0,
            table: IdMap::default(),
            stats: PolicyStats::default(),
        })
    }

    /// Current recency target `p` (exposed for the Fig. 10 analysis of how
    /// ARC sizes its probationary region).
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Bytes currently in the recency list T1.
    pub fn t1_used(&self) -> u64 {
        self.t1_used
    }

    fn used_total(&self) -> u64 {
        self.t1_used + self.t2_used
    }

    /// The REPLACE subroutine: evict from T1 if it exceeds the target `p`
    /// (or equals it while the request hits in B2), else from T2.
    fn replace(&mut self, in_b2: bool, evicted: &mut Vec<Eviction>) {
        let from_t1 = self.t1_used > 0
            && (self.t1_used > self.p || (in_b2 && self.t1_used == self.p) || self.t2.is_empty());
        if from_t1 {
            if let Some(id) = self.t1.pop_back() {
                // Invariant: ids on t1/t2 are always tabled.
                let entry = self.table.remove(&id).expect("t1 id in table");
                self.t1_used -= u64::from(entry.meta.size);
                self.b1.insert(id, entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(id, true));
            }
        } else if let Some(id) = self.t2.pop_back() {
            // Invariant: ids on t1/t2 are always tabled.
            let entry = self.table.remove(&id).expect("t2 id in table");
            self.t2_used -= u64::from(entry.meta.size);
            self.b2.insert(id, entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let (loc, size, handle) = {
            // Invariant: on_hit fires only after a successful lookup.
            let e = self.table.get_mut(&id).expect("hit entry exists");
            e.meta.touch(now);
            (e.loc, e.meta.size, e.handle)
        };
        match loc {
            Loc::T1 => {
                // Promote to the frequency list.
                self.t1.remove(handle);
                self.t1_used -= u64::from(size);
                let h = self.t2.push_front(id);
                self.t2_used += u64::from(size);
                // Invariant: still tabled — only the queue handle changed.
                let e = self.table.get_mut(&id).expect("entry exists");
                e.loc = Loc::T2;
                e.handle = h;
            }
            Loc::T2 => {
                self.t2.move_to_front(handle);
            }
        }
    }

    fn miss_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        let size = u64::from(req.size);
        let c = self.capacity;
        let in_b1 = self.b1.contains(req.id);
        let in_b2 = self.b2.contains(req.id);

        if in_b1 {
            // Recency ghost hit: grow p.
            let delta = (self.b2.used() / self.b1.used().max(1)).max(1) * size;
            self.p = (self.p + delta).min(c);
            self.b1.remove(req.id);
        } else if in_b2 {
            // Frequency ghost hit: shrink p.
            let delta = (self.b1.used() / self.b2.used().max(1)).max(1) * size;
            self.p = self.p.saturating_sub(delta);
            self.b2.remove(req.id);
        } else {
            // Case IV of the paper: bound the directory.
            if self.t1_used + self.b1.used() >= c {
                if self.t1_used < c {
                    self.b1.trim_to(c.saturating_sub(self.t1_used + size));
                }
            } else if self.used_total() + self.b1.used() + self.b2.used() >= 2 * c {
                self.b2
                    .trim_to((2 * c).saturating_sub(self.used_total() + self.b1.used() + size));
            }
        }

        while self.used_total() + size > c && !self.table.is_empty() {
            self.replace(in_b2, evicted);
        }

        // Ghost hits resurrect into T2; brand-new objects go to T1.
        let (handle, loc) = if in_b1 || in_b2 {
            self.t2_used += size;
            (self.t2.push_front(req.id), Loc::T2)
        } else {
            self.t1_used += size;
            (self.t1.push_front(req.id), Loc::T1)
        };
        self.table.insert(
            req.id,
            Entry {
                handle,
                loc,
                meta: Meta::new(req.size, req.time),
            },
        );
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            match e.loc {
                Loc::T1 => {
                    self.t1.remove(e.handle);
                    self.t1_used -= u64::from(e.meta.size);
                }
                Loc::T2 => {
                    self.t2.remove(e.handle);
                    self.t2_used -= u64::from(e.meta.size);
                }
            }
        }
    }
}

impl Policy for Arc {
    fn name(&self) -> String {
        "ARC".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.miss_insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.miss_insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn hit_in_t1_promotes_to_t2() {
        let mut p = Arc::new(10).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        assert_eq!(p.table[&1].loc, Loc::T1);
        p.request(&Request::get(1, 1), &mut evs);
        assert_eq!(p.table[&1].loc, Loc::T2);
    }

    #[test]
    fn b1_hit_grows_p() {
        let mut p = Arc::new(10).unwrap();
        let mut evs = Vec::new();
        // Fill T1 and push some ids into B1.
        for id in 0..20u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        let p_before = p.p();
        let ghosted = (0..20u64).rev().find(|&id| !p.contains(id)).unwrap();
        evs.clear();
        p.request(&Request::get(ghosted, 100), &mut evs);
        assert!(p.p() > p_before, "B1 hit must grow p");
        assert_eq!(p.table[&ghosted].loc, Loc::T2);
    }

    #[test]
    fn b2_hit_shrinks_p() {
        let mut p = Arc::new(8).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Build T2 contents then displace them into B2.
        for id in 0..8u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        // Force T2 evictions by inserting new objects (p stays small).
        for id in 100..120u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        // Grow p artificially via a B1 hit, then hit B2 and check shrink.
        let b1_id = (100..120u64).rev().find(|&id| !p.contains(id)).unwrap();
        evs.clear();
        p.request(&Request::get(b1_id, t), &mut evs);
        t += 1;
        let p_mid = p.p();
        let b2_id = (0..8u64).find(|&id| !p.contains(id) && p.b2.contains(id));
        if let Some(b2_id) = b2_id {
            evs.clear();
            p.request(&Request::get(b2_id, t), &mut evs);
            assert!(p.p() <= p_mid, "B2 hit must not grow p");
        }
    }

    #[test]
    fn scan_does_not_flush_t2() {
        let mut p = Arc::new(20).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Hot set in T2.
        for id in 0..8u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        // Scan.
        for id in 1000..1200u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (0..8u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 6, "scan flushed T2: {survivors}/8 left");
    }

    #[test]
    fn better_than_lru_on_mixed_workload() {
        // Zipf core plus scans: ARC should beat plain LRU.
        let mut trace = test_trace(20_000, 1500, 17);
        let base = trace.len() as u64;
        for i in 0..5000u64 {
            trace.push(Request::get(1_000_000 + i, base + i));
        }
        let mut arc = Arc::new(64).unwrap();
        let mut lru = crate::lru::Lru::new(64).unwrap();
        let mr_arc = miss_ratio_of(&mut arc, &trace);
        let mr_lru = miss_ratio_of(&mut lru, &trace);
        assert!(
            mr_arc <= mr_lru + 0.005,
            "ARC {mr_arc:.4} vs LRU {mr_lru:.4}"
        );
    }

    #[test]
    fn p_stays_bounded() {
        let mut p = Arc::new(50).unwrap();
        let trace = test_trace(20_000, 500, 23);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.p() <= 50);
            assert!(p.used() <= 50);
        }
    }

    #[test]
    fn basics() {
        let mut p = Arc::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Arc::new(0).is_err());
    }
}

//! LRU-K (O'Neil, O'Neil & Weikum, SIGMOD '93), K = 2.
//!
//! LRU-K evicts the page whose K-th most recent reference is oldest
//! (maximum *backward K-distance*). Pages with fewer than K references have
//! infinite distance and are evicted first, ordered by their last access.
//! For K = 2 this means: cold pages (one access) form an LRU-ordered pool
//! that empties before any page with two or more accesses is considered, and
//! warm pages are ranked by their penultimate access time.

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::BTreeSet;

enum Rank {
    /// Fewer than K accesses: position in the cold LRU list.
    Cold(Handle),
    /// K or more accesses: ordered by penultimate access time.
    Warm(u64),
}

struct Entry {
    rank: Rank,
    /// Time of the most recent access (becomes the penultimate on the next
    /// access).
    last: u64,
    meta: Meta,
}

/// The LRU-2 eviction algorithm.
pub struct LruK {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// Cold pages; head = most recent single access, tail = evict first.
    cold: DList<ObjId>,
    /// Warm pages keyed by (penultimate access, id); the minimum is the
    /// maximum backward-2-distance, i.e. the eviction candidate.
    warm: BTreeSet<(u64, ObjId)>,
    stats: PolicyStats,
}

impl LruK {
    /// Creates an LRU-2 cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(LruK {
            capacity,
            used: 0,
            table: IdMap::default(),
            cold: DList::new(),
            warm: BTreeSet::new(),
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        // Cold pages (infinite backward-2-distance) go first.
        if let Some(id) = self.cold.pop_back() {
            let entry = self.table.remove(&id).expect("cold id in table");
            self.used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, true));
            return;
        }
        // Then the warm page with the oldest penultimate access.
        if let Some(&(penult, id)) = self.warm.iter().next() {
            self.warm.remove(&(penult, id));
            let entry = self.table.remove(&id).expect("warm id in table");
            self.used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.cold.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                rank: Rank::Cold(handle),
                last: req.time,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        // Invariant: on_hit fires only after a successful lookup.
        let entry = self.table.get_mut(&id).expect("hit id in table");
        entry.meta.touch(now);
        let penult = entry.last;
        entry.last = now;
        match entry.rank {
            Rank::Cold(h) => {
                // Second access: the page becomes warm with penultimate =
                // its first access.
                self.cold.remove(h);
                entry.rank = Rank::Warm(penult);
                self.warm.insert((penult, id));
            }
            Rank::Warm(old_penult) => {
                self.warm.remove(&(old_penult, id));
                entry.rank = Rank::Warm(penult);
                self.warm.insert((penult, id));
            }
        }
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            match e.rank {
                Rank::Cold(h) => {
                    self.cold.remove(h);
                }
                Rank::Warm(p) => {
                    self.warm.remove(&(p, id));
                }
            }
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for LruK {
    fn name(&self) -> String {
        "LRU-2".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn cold_pages_evicted_before_warm() {
        let mut p = LruK::new(3).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(1, 1), &mut evs); // 1 is warm
        p.request(&Request::get(2, 2), &mut evs);
        p.request(&Request::get(3, 3), &mut evs);
        evs.clear();
        p.request(&Request::get(4, 4), &mut evs);
        // 2 is the oldest cold page.
        assert_eq!(evs[0].id, 2);
        assert!(p.contains(1), "warm page must outlive cold pages");
    }

    #[test]
    fn warm_eviction_by_penultimate_access() {
        let mut p = LruK::new(2).unwrap();
        let mut evs = Vec::new();
        // Page 1: accesses at t=0 and t=10 → penult 0.
        // Page 2: accesses at t=1 and t=2 → penult 1.
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(2, 1), &mut evs);
        p.request(&Request::get(2, 2), &mut evs);
        p.request(&Request::get(1, 10), &mut evs);
        evs.clear();
        p.request(&Request::get(3, 11), &mut evs);
        // Despite page 1 being more *recent*, its penultimate access (0) is
        // older than page 2's (1): LRU-2 evicts page 1.
        assert_eq!(evs[0].id, 1);
        assert!(p.contains(2));
    }

    #[test]
    fn scan_resistant() {
        let mut p = LruK::new(20).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        for id in 0..10u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        for id in 1000..1200u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (0..10u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 8, "warm set flushed by scan: {survivors}/10");
    }

    #[test]
    fn beats_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 51);
        let mut k = LruK::new(64).unwrap();
        let mut f = crate::fifo::Fifo::new(64).unwrap();
        assert!(miss_ratio_of(&mut k, &trace) < miss_ratio_of(&mut f, &trace));
    }

    #[test]
    fn basics() {
        let mut p = LruK::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(LruK::new(0).is_err());
    }
}

//! FIFO eviction: evict in insertion order, no metadata updates on hits.
//!
//! FIFO is the baseline every result in the paper is expressed against
//! (§5.1.2's miss-ratio reduction). It needs no per-hit work at all, which is
//! why flash caches and scalable in-memory caches favour it (§2.1).

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

struct Entry {
    handle: Handle,
    meta: Meta,
}

/// First-in first-out eviction.
pub struct Fifo {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// Head = newest insert, tail = next eviction.
    queue: DList<ObjId>,
    stats: PolicyStats,
}

impl Fifo {
    /// Creates a FIFO cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Fifo {
            capacity,
            used: 0,
            table: IdMap::default(),
            queue: DList::new(),
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(id) = self.queue.pop_back() {
            // Invariant: queued ids are always tabled.
            let entry = self.table.remove(&id).expect("queued id in table");
            self.used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.queue.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.queue.remove(e.handle);
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Fifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.meta.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        crate::util::validate_single_queue(
            "FIFO",
            self.capacity,
            self.used,
            self.table.len(),
            self.queue.iter(),
            |id| self.table.get(&id).map(|e| e.meta.size),
        )
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::check_policy_basics;

    #[test]
    fn evicts_in_insertion_order() {
        let mut p = Fifo::new(3).unwrap();
        let mut evs = Vec::new();
        for id in 1..=3 {
            p.request(&Request::get(id, id), &mut evs);
        }
        // Hit object 1; FIFO must still evict it first.
        p.request(&Request::get(1, 10), &mut evs);
        evs.clear();
        p.request(&Request::get(4, 11), &mut evs);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, 1);
        assert_eq!(evs[0].freq, 1, "object 1 had one post-insert access");
    }

    #[test]
    fn hits_do_not_reorder() {
        let mut p = Fifo::new(2).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(2, 1), &mut evs);
        for t in 2..10 {
            p.request(&Request::get(1, t), &mut evs); // many hits on 1
        }
        evs.clear();
        p.request(&Request::get(3, 10), &mut evs);
        assert_eq!(evs[0].id, 1, "FIFO ignores recency");
    }

    #[test]
    fn basics() {
        let mut p = Fifo::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Fifo::new(0).is_err());
    }

    #[test]
    fn delete_and_set() {
        let mut p = Fifo::new(10).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::delete(1, 1), &mut evs);
        assert!(!p.contains(1));
        p.request(
            &Request {
                id: 2,
                size: 4,
                time: 2,
                op: Op::Set,
            },
            &mut evs,
        );
        assert!(p.contains(2));
        assert_eq!(p.used(), 4);
    }

    #[test]
    fn sized_objects() {
        let mut p = Fifo::new(10).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get_sized(1, 6, 0), &mut evs);
        p.request(&Request::get_sized(2, 6, 1), &mut evs);
        // 1 must have been evicted to fit 2.
        assert!(!p.contains(1));
        assert!(p.contains(2));
        assert_eq!(p.used(), 6);
    }
}

//! FIFO-Merge — Segcache's eviction algorithm (Yang et al., NSDI '21).
//!
//! Segcache stores objects in append-only *segments* kept in FIFO order.
//! Eviction merges the N oldest segments into one, retaining the most
//! valuable ~1/N of their objects (ranked by access frequency) and dropping
//! the rest. §5.2 notes FIFO-Merge "was designed for log-structured storage
//! and key-value cache workloads without scan resistance", performing close
//! to LRU on web workloads but poorly on block workloads.

use crate::util::Meta;
use cache_ds::IdMap;
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::VecDeque;

/// Number of segments merged per eviction pass.
const MERGE_N: usize = 4;
/// Fraction (1/RETAIN_DIV) of merged bytes retained.
const RETAIN_DIV: u64 = 4;

struct Entry {
    seg: u64,
    freq: u32,
    meta: Meta,
}

struct Segment {
    id: u64,
    ids: Vec<ObjId>,
    live_bytes: u64,
}

/// The FIFO-Merge (Segcache) eviction algorithm.
pub struct FifoMerge {
    capacity: u64,
    used: u64,
    seg_capacity: u64,
    next_seg_id: u64,
    /// Oldest segment at the front.
    segments: VecDeque<Segment>,
    table: IdMap<Entry>,
    stats: PolicyStats,
}

impl FifoMerge {
    /// Creates a FIFO-Merge cache of `capacity` bytes with segments of
    /// 1/10th of the capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(FifoMerge {
            capacity,
            used: 0,
            seg_capacity: (capacity / 10).max(1),
            next_seg_id: 0,
            segments: VecDeque::new(),
            table: IdMap::default(),
            stats: PolicyStats::default(),
        })
    }

    fn active_segment(&mut self) -> &mut Segment {
        let need_new = self
            .segments
            .back()
            .map(|s| s.live_bytes >= self.seg_capacity)
            .unwrap_or(true);
        if need_new {
            self.next_seg_id += 1;
            self.segments.push_back(Segment {
                id: self.next_seg_id,
                ids: Vec::new(),
                live_bytes: 0,
            });
        }
        // Invariant: the branch above pushed a segment if none existed.
        self.segments.back_mut().expect("just ensured")
    }

    /// Merges the `MERGE_N` oldest segments, retaining the most frequently
    /// accessed quarter of their live bytes and evicting the rest.
    fn merge_evict(&mut self, evicted: &mut Vec<Eviction>) {
        let take = MERGE_N.min(self.segments.len());
        if take == 0 {
            return;
        }
        let mut candidates: Vec<(ObjId, u32)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut merged_bytes = 0u64;
        for _ in 0..take {
            // Invariant: take is bounded by the segment count, so pop_front succeeds.
            let seg = self.segments.pop_front().expect("segment available");
            for id in seg.ids {
                // A segment's id list may hold duplicates: Delete leaves the
                // slot in place (append-only log), and re-inserting the same
                // object into the same active segment appends it again. Count
                // each live object once or the retain loop double-processes
                // it (double-counted bytes, then a panic on the second pass).
                if let Some(e) = self.table.get(&id) {
                    if e.seg == seg.id && seen.insert(id) {
                        candidates.push((id, e.freq));
                        merged_bytes += u64::from(e.meta.size);
                    }
                }
            }
        }
        // Rank by frequency (descending), breaking ties toward *newer*
        // objects so an all-cold merge does not pin the oldest ids forever.
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1).then_with(|| {
                let ia = self.table[&a.0].meta.insert_time;
                let ib = self.table[&b.0].meta.insert_time;
                ib.cmp(&ia)
            })
        });
        let retain_budget = if take == MERGE_N {
            merged_bytes / RETAIN_DIV
        } else {
            // Partial merge (cache nearly empty): keep nothing extra.
            0
        };
        self.next_seg_id += 1;
        let mut merged = Segment {
            id: self.next_seg_id,
            ids: Vec::new(),
            live_bytes: 0,
        };
        for (id, _freq) in candidates {
            // Invariant: candidates are live ids still present in the table.
            let e = self.table.get_mut(&id).expect("candidate in table");
            if merged.live_bytes + u64::from(e.meta.size) <= retain_budget {
                e.seg = merged.id;
                // Merging halves the frequency (decay), as in Segcache.
                e.freq /= 2;
                merged.live_bytes += u64::from(e.meta.size);
                merged.ids.push(id);
            } else {
                // Invariant: the same id resolved via get_mut just above.
                let entry = self.table.remove(&id).expect("entry exists");
                self.used -= u64::from(entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(id, false));
            }
        }
        if !merged.ids.is_empty() {
            // The merged segment takes the oldest position.
            self.segments.push_front(merged);
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.merge_evict(evicted);
        }
        let size = req.size;
        let seg = self.active_segment();
        seg.ids.push(req.id);
        seg.live_bytes += u64::from(size);
        let seg_id = seg.id;
        self.table.insert(
            req.id,
            Entry {
                seg: seg_id,
                freq: 0,
                meta: Meta::new(size, req.time),
            },
        );
        self.used += u64::from(size);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.used -= u64::from(e.meta.size);
            if let Some(seg) = self.segments.iter_mut().find(|s| s.id == e.seg) {
                seg.live_bytes = seg.live_bytes.saturating_sub(u64::from(e.meta.size));
            }
        }
    }
}

impl Policy for FifoMerge {
    fn name(&self) -> String {
        "FIFO-Merge".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.freq = e.freq.saturating_add(1).min(255);
                    e.meta.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn capacity_bounded() {
        let mut p = FifoMerge::new(64).unwrap();
        let trace = test_trace(20_000, 1000, 113);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 64, "used {} > 64", p.used());
        }
    }

    #[test]
    fn merge_retains_frequent_objects() {
        let mut p = FifoMerge::new(40).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Insert hot ids and hit them repeatedly.
        for id in 0..4u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        for _ in 0..5 {
            for id in 0..4u64 {
                p.request(&Request::get(id, t), &mut evs);
                t += 1;
            }
        }
        // Flood to force merges, refreshing the hot set periodically (a
        // cold object's frequency decays at every merge, so objects with no
        // further hits are eventually dropped — that is by design).
        for id in 100..300u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
            if id % 10 == 0 {
                for h in 0..4u64 {
                    p.request(&Request::get(h, t), &mut evs);
                    t += 1;
                }
            }
        }
        let survivors = (0..4u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 3, "hot objects lost in merge: {survivors}/4");
    }

    #[test]
    fn scan_evicts_everything_eventually() {
        let mut p = FifoMerge::new(40).unwrap();
        let mut evs = Vec::new();
        for id in 0..400u64 {
            evs.clear();
            p.request(&Request::get(id, id), &mut evs);
        }
        // Early scan ids must be gone.
        assert!(!p.contains(0));
        assert!(p.len() <= 40);
    }

    #[test]
    fn better_than_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 127);
        let mut fm = FifoMerge::new(64).unwrap();
        let mut f = crate::fifo::Fifo::new(64).unwrap();
        let mr_m = miss_ratio_of(&mut fm, &trace);
        let mr_f = miss_ratio_of(&mut f, &trace);
        assert!(mr_m < mr_f + 0.01, "FIFO-Merge {mr_m:.4} vs FIFO {mr_f:.4}");
    }

    #[test]
    fn basics() {
        let mut p = FifoMerge::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(FifoMerge::new(0).is_err());
    }
}

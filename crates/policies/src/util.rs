//! Shared helpers for the policy implementations.

use cache_ds::IdSet;
use cache_types::{Eviction, ObjId};
use std::collections::VecDeque;

/// Per-object bookkeeping common to every policy: size and the timestamps
/// and counters that eviction records report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Meta {
    pub size: u32,
    pub insert_time: u64,
    pub last_access: u64,
    /// Accesses after insertion.
    pub hits: u32,
}

impl Meta {
    pub(crate) fn new(size: u32, now: u64) -> Self {
        Meta {
            size,
            insert_time: now,
            last_access: now,
            hits: 0,
        }
    }

    pub(crate) fn touch(&mut self, now: u64) {
        self.hits += 1;
        self.last_access = now;
    }

    pub(crate) fn eviction(&self, id: ObjId, from_probationary: bool) -> Eviction {
        Eviction {
            id,
            size: self.size,
            insert_time: self.insert_time,
            last_access_time: self.last_access,
            freq: self.hits,
            from_probationary,
        }
    }
}

/// A byte-bounded FIFO ghost list of object ids (2Q's A1out, ARC's B1/B2,
/// LeCaR's history lists).
#[derive(Debug, Default)]
pub(crate) struct GhostList {
    fifo: VecDeque<(ObjId, u32)>,
    set: IdSet,
    used: u64,
    capacity: u64,
}

impl GhostList {
    pub(crate) fn new(capacity: u64) -> Self {
        GhostList {
            fifo: VecDeque::new(),
            set: IdSet::default(),
            used: 0,
            capacity,
        }
    }

    pub(crate) fn contains(&self, id: ObjId) -> bool {
        self.set.contains(&id)
    }

    pub(crate) fn insert(&mut self, id: ObjId, size: u32) {
        if self.capacity == 0 {
            return;
        }
        if self.set.insert(id) {
            self.fifo.push_back((id, size));
            self.used += u64::from(size);
        }
        self.trim_to(self.capacity);
    }

    /// Removes the id (ghost hit); the FIFO slot becomes a tombstone.
    pub(crate) fn remove(&mut self, id: ObjId) -> bool {
        self.set.remove(&id)
    }

    /// Drops oldest entries until at most `cap` bytes are charged.
    pub(crate) fn trim_to(&mut self, cap: u64) {
        while self.used > cap {
            match self.fifo.pop_front() {
                Some((old, sz)) => {
                    self.used -= u64::from(sz);
                    self.set.remove(&old);
                }
                None => break,
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }

    pub(crate) fn used(&self) -> u64 {
        self.used
    }

    /// Structural self-check: byte accounting matches the FIFO slots
    /// (tombstones included — `remove` clears the set but keeps the slot
    /// charged until it ages out), every live id owns a slot, and the byte
    /// bound holds.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.used > self.capacity {
            return Err(format!(
                "ghost used {} > capacity {}",
                self.used, self.capacity
            ));
        }
        let bytes: u64 = self.fifo.iter().map(|&(_, s)| u64::from(s)).sum();
        if bytes != self.used {
            return Err(format!("ghost slot bytes {bytes} != accounted {}", self.used));
        }
        let live = self
            .fifo
            .iter()
            .filter(|(id, _)| self.set.contains(id))
            .count();
        if live < self.set.len() {
            return Err(format!(
                "ghost set holds {} live ids but only {live} own FIFO slots",
                self.set.len()
            ));
        }
        Ok(())
    }
}

/// Structural validation shared by the single-queue policies (FIFO, LRU,
/// CLOCK, SIEVE): byte accounting matches the queue contents, the queue and
/// the table agree entry-for-entry (ruling out duplicate residency), and the
/// capacity bound holds.
pub(crate) fn validate_single_queue<'a>(
    name: &str,
    capacity: u64,
    used: u64,
    table_len: usize,
    queue: impl Iterator<Item = &'a ObjId>,
    size_of: impl Fn(ObjId) -> Option<u32>,
) -> Result<(), String> {
    if used > capacity {
        return Err(format!("{name}: used {used} > capacity {capacity}"));
    }
    let mut bytes = 0u64;
    let mut count = 0usize;
    for &id in queue {
        let Some(size) = size_of(id) else {
            return Err(format!("{name}: queued id {id} missing from table"));
        };
        bytes += u64::from(size);
        count += 1;
    }
    if count != table_len {
        return Err(format!(
            "{name}: queue holds {count} ids but table holds {table_len}"
        ));
    }
    if bytes != used {
        return Err(format!("{name}: queued bytes {bytes} != accounted {used}"));
    }
    Ok(())
}

/// Returns a stable per-test skewed trace for differential tests.
#[cfg(test)]
pub(crate) fn test_trace(n: usize, universe: u64, seed: u64) -> Vec<cache_types::Request> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|t| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            let id = if r % 3 == 0 { r % 10 } else { r % universe };
            cache_types::Request::get(id, t as u64)
        })
        .collect()
}

/// Drives a policy over a trace and returns its miss ratio.
#[cfg(test)]
pub(crate) fn miss_ratio_of(
    policy: &mut dyn cache_types::Policy,
    reqs: &[cache_types::Request],
) -> f64 {
    cache_types::policy::run_trace(policy, reqs).miss_ratio()
}

/// Checks the baseline invariants every policy must satisfy after a run.
#[cfg(test)]
pub(crate) fn check_policy_basics(policy: &mut dyn cache_types::Policy, cap: u64) {
    use cache_types::Request;
    let mut evs = Vec::new();
    let trace = test_trace(5000, 400, 0xBA5E);
    for r in &trace {
        evs.clear();
        policy.request(r, &mut evs);
        assert!(
            policy.used() <= cap,
            "{} exceeded capacity: {} > {}",
            policy.name(),
            policy.used(),
            cap
        );
        for e in &evs {
            assert!(
                !policy.contains(e.id),
                "{} reported evicting {} but still contains it",
                policy.name(),
                e.id
            );
        }
    }
    // A hit after an insert must be reported as a hit.
    evs.clear();
    policy.request(&Request::get(0xFFFF_0001, 1_000_000), &mut evs);
    evs.clear();
    let out = policy.request(&Request::get(0xFFFF_0001, 1_000_001), &mut evs);
    assert!(
        out.is_hit(),
        "{} missed a just-inserted object",
        policy.name()
    );
    let s = policy.stats();
    assert!(s.gets >= 5000);
    assert!(s.misses <= s.gets);
}

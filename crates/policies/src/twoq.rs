//! 2Q (Johnson & Shasha, VLDB '94).
//!
//! §5.2: "2Q has the most similar design to S3-FIFO. It uses 25 % cache
//! space for a FIFO queue [A1in], the rest for an LRU queue [Am], and also
//! has a ghost queue [A1out]. Besides the difference in queue size and type,
//! objects evicted from the small queue are not inserted into the LRU queue"
//! — only a later request for an A1out (ghost) id promotes into Am.

use crate::util::{GhostList, Meta};
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    A1In,
    Am,
}

struct Entry {
    handle: Handle,
    loc: Loc,
    meta: Meta,
}

/// The 2Q eviction algorithm with the paper's parameters
/// (Kin = 25 % of the cache, Kout = 50 % of the cache's entries).
pub struct TwoQ {
    capacity: u64,
    a1in_capacity: u64,
    a1in: DList<ObjId>,
    am: DList<ObjId>,
    a1out: GhostList,
    a1in_used: u64,
    am_used: u64,
    table: IdMap<Entry>,
    stats: PolicyStats,
}

impl TwoQ {
    /// Creates a 2Q cache with the classic 25 %/50 % parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        Self::with_params(capacity, 0.25, 0.5)
    }

    /// Creates a 2Q cache with explicit `kin` (A1in share of the cache) and
    /// `kout` (A1out ghost size as a fraction of the cache).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the capacity is zero or the fractions are
    /// out of `(0, 1)` / `[0, ∞)`.
    pub fn with_params(capacity: u64, kin: f64, kout: f64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(kin > 0.0 && kin < 1.0) || kout < 0.0 {
            return Err(CacheError::InvalidParameter(format!(
                "kin must be in (0,1), kout >= 0; got {kin}, {kout}"
            )));
        }
        let a1in_capacity = ((capacity as f64 * kin).round() as u64).max(1);
        Ok(TwoQ {
            capacity,
            a1in_capacity,
            a1in: DList::new(),
            am: DList::new(),
            a1out: GhostList::new((capacity as f64 * kout).round() as u64),
            a1in_used: 0,
            am_used: 0,
            table: IdMap::default(),
            stats: PolicyStats::default(),
        })
    }

    fn used_total(&self) -> u64 {
        self.a1in_used + self.am_used
    }

    /// The RECLAIM step of the 2Q paper: when A1in holds more than its
    /// share, its tail is dropped and remembered in A1out; otherwise the LRU
    /// tail of Am is evicted.
    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if self.a1in_used >= self.a1in_capacity || self.am.is_empty() {
            if let Some(id) = self.a1in.pop_back() {
                let entry = self.table.remove(&id).expect("a1in id in table");
                self.a1in_used -= u64::from(entry.meta.size);
                self.a1out.insert(id, entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(id, true));
                return;
            }
        }
        if let Some(id) = self.am.pop_back() {
            // Invariant: am ids are always tabled.
            let entry = self.table.remove(&id).expect("am id in table");
            self.am_used -= u64::from(entry.meta.size);
            self.stats.evictions += 1;
            evicted.push(entry.meta.eviction(id, false));
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        // Decide A1out membership before evicting: eviction inserts into
        // A1out and could displace the entry being looked up.
        let in_a1out = self.a1out.remove(req.id);
        while self.used_total() + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let (handle, loc) = if in_a1out {
            // A1out hit: the second chance promotes straight into Am.
            self.am_used += u64::from(req.size);
            (self.am.push_front(req.id), Loc::Am)
        } else {
            self.a1in_used += u64::from(req.size);
            (self.a1in.push_front(req.id), Loc::A1In)
        };
        self.table.insert(
            req.id,
            Entry {
                handle,
                loc,
                meta: Meta::new(req.size, req.time),
            },
        );
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            match e.loc {
                Loc::A1In => {
                    self.a1in.remove(e.handle);
                    self.a1in_used -= u64::from(e.meta.size);
                }
                Loc::Am => {
                    self.am.remove(e.handle);
                    self.am_used -= u64::from(e.meta.size);
                }
            }
        }
    }
}

impl Policy for TwoQ {
    fn name(&self) -> String {
        "2Q".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.meta.touch(req.time);
                    // A1in hits do nothing (FIFO); Am hits promote.
                    if e.loc == Loc::Am {
                        let h = e.handle;
                        self.am.move_to_front(h);
                    }
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "2Q: used {} > capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        let mut count = 0usize;
        for (queue, loc, used) in [
            (&self.a1in, Loc::A1In, self.a1in_used),
            (&self.am, Loc::Am, self.am_used),
        ] {
            let mut bytes = 0u64;
            for &id in queue.iter() {
                let Some(e) = self.table.get(&id) else {
                    return Err(format!("2Q: {loc:?} id {id} missing from table"));
                };
                if e.loc != loc {
                    return Err(format!("2Q: id {id} sits in {loc:?} but is tagged {:?}", e.loc));
                }
                if self.a1out.contains(id) {
                    return Err(format!("2Q: id {id} is both resident and in A1out"));
                }
                bytes += u64::from(e.meta.size);
                count += 1;
            }
            if bytes != used {
                return Err(format!("2Q: {loc:?} bytes {bytes} != accounted {used}"));
            }
        }
        if count != self.table.len() {
            return Err(format!(
                "2Q: queues hold {count} ids but table holds {}",
                self.table.len()
            ));
        }
        self.a1out.validate().map_err(|e| format!("2Q A1out: {e}"))
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn one_hit_wonders_fall_out_of_a1in() {
        let mut p = TwoQ::new(20).unwrap();
        let mut evs = Vec::new();
        for id in 0..40u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        // A scan never populates Am.
        assert_eq!(p.am.len(), 0);
        assert!(p.a1out.len() > 0);
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        let mut p = TwoQ::new(20).unwrap();
        let mut evs = Vec::new();
        for id in 0..40u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        let ghosted = (0..40u64).rev().find(|&id| !p.contains(id)).unwrap();
        evs.clear();
        let out = p.request(&Request::get(ghosted, 100), &mut evs);
        assert!(out.is_miss());
        assert_eq!(p.table[&ghosted].loc, Loc::Am);
    }

    #[test]
    fn a1in_hits_do_not_promote() {
        let mut p = TwoQ::new(100).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(1, 1), &mut evs);
        p.request(&Request::get(1, 2), &mut evs);
        // 2Q leaves repeat hits in A1in alone — promotion happens only via
        // the ghost.
        assert_eq!(p.table[&1].loc, Loc::A1In);
    }

    #[test]
    fn scan_resistant() {
        let mut p = TwoQ::new(40).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // A genuinely hot set (ids 0..10) interleaved with a cold stream:
        // hot ids cycle through A1in into the ghost once, then their next
        // request promotes them into Am where LRU retains them.
        for _round in 0..4 {
            for j in 0..60u64 {
                evs.clear();
                p.request(&Request::get(1000 + t % 999_983, t), &mut evs);
                t += 1;
                if j % 4 == 0 {
                    evs.clear();
                    p.request(&Request::get((j / 4) % 10, t), &mut evs);
                    t += 1;
                }
            }
        }
        let in_am = (0..10u64)
            .filter(|id| p.table.get(id).map(|e| e.loc == Loc::Am).unwrap_or(false))
            .count();
        assert!(in_am >= 5, "hot set should be in Am, got {in_am}");
        // Long scan: evictions must come from A1in, leaving Am untouched.
        let before: Vec<u64> = (0..10u64)
            .filter(|id| p.table.get(id).map(|e| e.loc == Loc::Am).unwrap_or(false))
            .collect();
        for id in 5000..5200u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        for id in &before {
            assert!(p.contains(*id), "scan evicted Am resident {id}");
        }
    }

    #[test]
    fn better_than_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 21);
        let mut q = TwoQ::new(64).unwrap();
        let mut f = crate::fifo::Fifo::new(64).unwrap();
        assert!(miss_ratio_of(&mut q, &trace) < miss_ratio_of(&mut f, &trace));
    }

    #[test]
    fn basics() {
        let mut p = TwoQ::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TwoQ::new(0).is_err());
        assert!(TwoQ::with_params(10, 0.0, 0.5).is_err());
        assert!(TwoQ::with_params(10, 1.5, 0.5).is_err());
        assert!(TwoQ::with_params(10, 0.5, -1.0).is_err());
    }
}

//! Baseline cache eviction algorithms for the S3-FIFO reproduction.
//!
//! §5.2 compares S3-FIFO against the state-of-the-art algorithms of the past
//! three decades. Every algorithm named in the paper's evaluation is
//! implemented here, each in its own module, all behind the shared
//! [`cache_types::Policy`] trait:
//!
//! | Module | Algorithm | Paper's role |
//! |---|---|---|
//! | [`fifo`] | FIFO | the baseline all reductions are relative to |
//! | [`lru`] | LRU | the incumbent (§2.2) |
//! | [`clock`] | CLOCK / FIFO-Reinsertion / Second Chance | "different implementations of the same algorithm" (§3) |
//! | [`sieve`] | SIEVE | related work, simpler-than-LRU eviction |
//! | [`slru`] | Segmented LRU (4 segments) | §5.2 |
//! | [`twoq`] | 2Q | "most similar design to S3-FIFO" |
//! | [`arc`] | ARC | adaptive state of the art |
//! | [`lirs`] | LIRS | inter-reference recency competitor |
//! | [`tinylfu`] | W-TinyLFU (1 % and 10 % windows) | "the closest competitor" |
//! | [`lruk`] | LRU-K (K=2) | §2 related work |
//! | [`lecar`] | LeCaR | ML-based expert mixing |
//! | [`cacheus`] | CACHEUS | LeCaR successor |
//! | [`lhd`] | LHD | hit-density sampling |
//! | [`blru`] | Bloom-filter LRU | CDN admission baseline |
//! | [`fifomerge`] | FIFO-Merge | Segcache's eviction |
//! | [`belady`] | Belady / OPT | offline optimal (Fig. 4) |
//!
//! [`registry`] builds policies by name for the sweep engine. [`dense`]
//! holds slot-indexed mirrors of the core policies (FIFO, LRU, CLOCK, SIEVE,
//! SLRU, 2Q, S3-FIFO) for the simulator's dense-ID fast path;
//! [`registry::build_dense`] selects them. [`dense::mrc`] holds the
//! multi-capacity engines that compute a whole miss-ratio curve in one trace
//! pass ([`MultiCapacityPolicy`]); [`registry::build_mrc`] selects those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod belady;
pub mod blru;
pub mod cacheus;
pub mod clock;
pub mod dense;
pub mod fifo;
pub mod fifomerge;
pub mod lecar;
pub mod lhd;
pub mod lirs;
pub mod lru;
pub mod lruk;
pub mod registry;
pub mod sieve;
pub mod slru;
pub mod tinylfu;
pub mod twoq;
pub(crate) mod util;

pub use arc::Arc;
pub use belady::Belady;
pub use dense::{DenseClock, DenseFifo, DenseLru, DenseS3Fifo, DenseSieve, DenseSlru, DenseTwoQ};
pub use dense::{
    MrcClock, MrcExactFifo, MrcFifo, MrcS3Fifo, MrcSieve, MrcTurboClock, MrcTurboS3Fifo,
    MrcTurboSieve, MultiCapacityPolicy, MAX_TURBO_LANES,
};
pub use blru::BloomLru;
pub use cacheus::Cacheus;
pub use clock::Clock;
pub use fifo::Fifo;
pub use fifomerge::FifoMerge;
pub use lecar::LeCar;
pub use lhd::Lhd;
pub use lirs::Lirs;
pub use lru::Lru;
pub use lruk::LruK;
pub use sieve::Sieve;
pub use slru::Slru;
pub use tinylfu::TinyLfu;
pub use twoq::TwoQ;

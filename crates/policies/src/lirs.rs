//! LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS '02).
//!
//! LIRS ranks blocks by *reuse distance* (inter-reference recency, IRR)
//! rather than recency. Blocks with low IRR are **LIR** (hot) and own ~99 %
//! of the cache; the rest are **HIR** and live in a small queue `Q` (~1 % —
//! the quick-demotion queue §5.2 credits for LIRS's efficiency). The LIRS
//! stack `S` tracks recency and holds LIR blocks, resident HIR blocks, and
//! non-resident HIR blocks (ghosts):
//!
//! - hit on a LIR block → move to the top of `S`, prune the stack;
//! - hit on a resident HIR block in `S` → it becomes LIR; the LIR block at
//!   the stack bottom is demoted into `Q`;
//! - hit on a resident HIR block not in `S` → move to `Q`'s head, re-push
//!   onto `S`;
//! - miss on a non-resident HIR block in `S` (ghost hit) → becomes LIR,
//!   demote the bottom LIR;
//! - miss on an unknown block → resident HIR, pushed onto `S` and `Q`.
//!
//! Eviction removes the front of `Q`; the block stays in `S` as a
//! non-resident ghost. The stack is bounded (non-resident entries beyond
//! ~3× the cache's entry count are pruned from the bottom).

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Lir,
    HirResident,
    HirGhost,
}

struct Node {
    state: State,
    /// Handle in the stack S (`None` when pruned from S).
    s_handle: Option<Handle>,
    /// Handle in the queue Q (`Some` only for resident HIR).
    q_handle: Option<Handle>,
    meta: Meta,
}

/// The LIRS eviction algorithm with the paper's 1 % HIR allocation.
pub struct Lirs {
    capacity: u64,
    /// Byte budget for LIR blocks (99 % by default).
    lir_capacity: u64,
    lir_used: u64,
    /// Resident bytes (LIR + resident HIR).
    resident_used: u64,
    /// Recency stack; head = most recent.
    s: DList<ObjId>,
    /// Resident HIR queue; head = most recent, tail = next eviction.
    q: DList<ObjId>,
    table: IdMap<Node>,
    /// Bound on stack entries, to keep ghost memory proportional to the
    /// cache size.
    max_stack_entries: usize,
    stats: PolicyStats,
}

impl Lirs {
    /// Creates a LIRS cache giving `hir_ratio` of the capacity to resident
    /// HIR blocks (paper: 0.01).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] for a zero capacity or a ratio outside (0,1).
    pub fn with_ratio(capacity: u64, hir_ratio: f64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(hir_ratio > 0.0 && hir_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "hir_ratio must be in (0,1), got {hir_ratio}"
            )));
        }
        let hir_cap = ((capacity as f64 * hir_ratio).round() as u64).max(1);
        Ok(Lirs {
            capacity,
            lir_capacity: capacity.saturating_sub(hir_cap).max(1),
            lir_used: 0,
            resident_used: 0,
            s: DList::new(),
            q: DList::new(),
            table: IdMap::default(),
            max_stack_entries: ((capacity as usize).saturating_mul(3)).max(16),
            stats: PolicyStats::default(),
        })
    }

    /// Creates a LIRS cache with the paper's default 1 % HIR allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        Self::with_ratio(capacity, 0.01)
    }

    /// Stack pruning: remove HIR entries from the stack bottom until a LIR
    /// block anchors it.
    fn prune(&mut self) {
        while let Some(&bottom) = self.s.back() {
            let node = self.table.get_mut(&bottom).expect("stack id in table");
            if node.state == State::Lir {
                break;
            }
            // Invariant: ids resident in the stack hold a stack handle.
            let h = node.s_handle.take().expect("bottom has stack handle");
            self.s.remove(h);
            if node.state == State::HirGhost {
                // A pruned ghost is forgotten entirely.
                self.table.remove(&bottom);
            }
        }
    }

    /// Bounds the stack size by dropping ghosts from the bottom region.
    fn bound_stack(&mut self) {
        while self.s.len() > self.max_stack_entries {
            let Some(&bottom) = self.s.back() else { break };
            let node = self.table.get_mut(&bottom).expect("stack id in table");
            // Invariant: ids resident in the stack hold a stack handle.
            let h = node.s_handle.take().expect("bottom has stack handle");
            self.s.remove(h);
            match node.state {
                State::HirGhost => {
                    self.table.remove(&bottom);
                }
                State::Lir => {
                    // Demote the bottom LIR into Q so residency is preserved.
                    node.state = State::HirResident;
                    let size = node.meta.size;
                    node.q_handle = Some(self.q.push_front(bottom));
                    self.lir_used -= u64::from(size);
                    self.prune();
                }
                State::HirResident => {}
            }
        }
    }

    /// Demotes the LIR block at the stack bottom to resident HIR (front of
    /// Q), then prunes.
    fn demote_bottom_lir(&mut self) {
        // After pruning, the bottom is LIR by invariant.
        self.prune();
        let Some(&bottom) = self.s.back() else { return };
        let node = self.table.get_mut(&bottom).expect("stack id in table");
        debug_assert_eq!(node.state, State::Lir);
        node.state = State::HirResident;
        // Invariant: a LIR bottom always holds a stack handle.
        let h = node.s_handle.take().expect("bottom has stack handle");
        node.q_handle = Some(self.q.push_front(bottom));
        self.lir_used -= u64::from(node.meta.size);
        self.s.remove(h);
        self.prune();
    }

    /// Promotes a block to LIR, demoting bottom LIR blocks while the LIR
    /// region overflows.
    fn make_lir(&mut self, id: ObjId) {
        let node = self.table.get_mut(&id).expect("promoted id in table");
        debug_assert_ne!(node.state, State::Lir);
        if let Some(qh) = node.q_handle.take() {
            self.q.remove(qh);
        }
        node.state = State::Lir;
        self.lir_used += u64::from(node.meta.size);
        while self.lir_used > self.lir_capacity {
            self.demote_bottom_lir();
        }
    }

    fn push_stack_top(&mut self, id: ObjId) {
        // Invariant: callers pass tabled ids.
        let node = self.table.get_mut(&id).expect("id in table");
        if let Some(h) = node.s_handle.take() {
            self.s.remove(h);
        }
        let h = self.s.push_front(id);
        // Invariant: the same tabled id as above.
        self.table.get_mut(&id).expect("id in table").s_handle = Some(h);
    }

    /// Evicts the resident HIR block at the tail of Q, leaving a ghost in S
    /// when the block is still on the stack.
    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(id) = self.q.pop_back() {
            let node = self.table.get_mut(&id).expect("q id in table");
            debug_assert_eq!(node.state, State::HirResident);
            node.q_handle = None;
            self.resident_used -= u64::from(node.meta.size);
            self.stats.evictions += 1;
            evicted.push(node.meta.eviction(id, true));
            if node.s_handle.is_some() {
                node.state = State::HirGhost;
            } else {
                self.table.remove(&id);
            }
            return;
        }
        // Q empty: demote a LIR block and retry once.
        if self.lir_used > 0 {
            self.demote_bottom_lir();
            if let Some(id) = self.q.pop_back() {
                let node = self.table.get_mut(&id).expect("q id in table");
                node.q_handle = None;
                self.resident_used -= u64::from(node.meta.size);
                self.stats.evictions += 1;
                evicted.push(node.meta.eviction(id, false));
                if node.s_handle.is_some() {
                    node.state = State::HirGhost;
                } else {
                    self.table.remove(&id);
                }
            }
        }
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let state = {
            // Invariant: on_hit fires only after a successful lookup.
            let node = self.table.get_mut(&id).expect("hit id in table");
            node.meta.touch(now);
            node.state
        };
        match state {
            State::Lir => {
                let was_bottom = self.s.back() == Some(&id);
                self.push_stack_top(id);
                if was_bottom {
                    self.prune();
                }
            }
            State::HirResident => {
                let in_stack = self.table[&id].s_handle.is_some();
                if in_stack {
                    // Low IRR proven: promote to LIR.
                    self.push_stack_top(id);
                    self.make_lir(id);
                } else {
                    // Not in S: stay HIR, refresh position in both.
                    self.push_stack_top(id);
                    let node = self.table.get_mut(&id).expect("id in table");
                    if let Some(qh) = node.q_handle {
                        self.q.move_to_front(qh);
                    }
                }
            }
            State::HirGhost => unreachable!("ghosts are not resident"),
        }
    }

    fn miss_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        let size = u64::from(req.size);
        while self.resident_used + size > self.capacity && self.resident_used > 0 {
            self.evict_one(evicted);
        }
        let ghost_hit = matches!(
            self.table.get(&req.id).map(|n| n.state),
            Some(State::HirGhost)
        );
        if ghost_hit {
            // Non-resident HIR in the stack: becomes LIR.
            {
                let node = self.table.get_mut(&req.id).expect("ghost in table");
                node.meta = Meta::new(req.size, req.time);
                node.state = State::HirResident; // transitional; make_lir flips it
            }
            self.resident_used += size;
            self.push_stack_top(req.id);
            self.make_lir(req.id);
        } else {
            debug_assert!(!self.table.contains_key(&req.id));
            self.table.insert(
                req.id,
                Node {
                    state: State::HirResident,
                    s_handle: None,
                    q_handle: None,
                    meta: Meta::new(req.size, req.time),
                },
            );
            self.resident_used += size;
            self.push_stack_top(req.id);
            // While the LIR region is not yet full, new blocks become LIR
            // directly (cold-start rule of the paper).
            if self.lir_used + size <= self.lir_capacity {
                self.make_lir(req.id);
            } else {
                let node = self.table.get_mut(&req.id).expect("id in table");
                node.q_handle = Some(self.q.push_front(req.id));
            }
        }
        self.bound_stack();
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(node) = self.table.get_mut(&id) {
            match node.state {
                State::HirGhost => {
                    if let Some(h) = node.s_handle.take() {
                        self.s.remove(h);
                    }
                    self.table.remove(&id);
                }
                State::HirResident => {
                    let (sh, qh, size) =
                        (node.s_handle.take(), node.q_handle.take(), node.meta.size);
                    if let Some(h) = sh {
                        self.s.remove(h);
                    }
                    if let Some(h) = qh {
                        self.q.remove(h);
                    }
                    self.resident_used -= u64::from(size);
                    self.table.remove(&id);
                    self.prune();
                }
                State::Lir => {
                    let (sh, size) = (node.s_handle.take(), node.meta.size);
                    if let Some(h) = sh {
                        self.s.remove(h);
                    }
                    self.lir_used -= u64::from(size);
                    self.resident_used -= u64::from(size);
                    self.table.remove(&id);
                    self.prune();
                }
            }
        }
    }
}

impl Policy for Lirs {
    fn name(&self) -> String {
        "LIRS".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.resident_used
    }

    fn len(&self) -> usize {
        self.table
            .values()
            .filter(|n| n.state != State::HirGhost)
            .count()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table
            .get(&id)
            .map(|n| n.state != State::HirGhost)
            .unwrap_or(false)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.contains(req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.miss_insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.miss_insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        let mut lir_bytes = 0u64;
        let mut resident_bytes = 0u64;
        let mut n_hir_res = 0usize;
        let mut s_handles = 0usize;
        let mut q_handles = 0usize;
        for (id, n) in self.table.iter() {
            if n.s_handle.is_some() {
                s_handles += 1;
            }
            if n.q_handle.is_some() {
                q_handles += 1;
            }
            match n.state {
                State::Lir => {
                    lir_bytes += u64::from(n.meta.size);
                    resident_bytes += u64::from(n.meta.size);
                    if n.s_handle.is_none() {
                        return Err(format!("LIR block {id} is not on stack S"));
                    }
                    if n.q_handle.is_some() {
                        return Err(format!("LIR block {id} holds a Q handle"));
                    }
                }
                State::HirResident => {
                    n_hir_res += 1;
                    resident_bytes += u64::from(n.meta.size);
                    if n.q_handle.is_none() {
                        return Err(format!("resident HIR block {id} is not in Q"));
                    }
                }
                State::HirGhost => {
                    if n.s_handle.is_none() {
                        return Err(format!("ghost {id} survived off-stack (pruning failed)"));
                    }
                    if n.q_handle.is_some() {
                        return Err(format!("ghost {id} holds a Q handle"));
                    }
                }
            }
        }
        if resident_bytes != self.resident_used {
            return Err(format!(
                "resident bytes {} != accounted {}",
                resident_bytes, self.resident_used
            ));
        }
        if lir_bytes != self.lir_used {
            return Err(format!(
                "LIR bytes {} != accounted {}",
                lir_bytes, self.lir_used
            ));
        }
        if self.resident_used > self.capacity {
            return Err(format!(
                "resident {} > capacity {}",
                self.resident_used, self.capacity
            ));
        }
        if self.lir_used > self.lir_capacity {
            return Err(format!(
                "LIR bytes {} > LIR budget {}",
                self.lir_used, self.lir_capacity
            ));
        }
        if self.s.len() != s_handles {
            return Err(format!(
                "stack holds {} entries but {} nodes hold stack handles",
                self.s.len(),
                s_handles
            ));
        }
        if self.q.len() != q_handles {
            return Err(format!(
                "Q holds {} entries but {} nodes hold Q handles",
                self.q.len(),
                q_handles
            ));
        }
        if self.q.len() != n_hir_res {
            return Err(format!(
                "Q holds {} entries but {} resident HIR nodes exist",
                self.q.len(),
                n_hir_res
            ));
        }
        // `bound_stack` runs on misses; hits on off-stack resident HIR blocks
        // (all of which sit in Q) may each add one stack entry in between.
        if self.s.len() > self.max_stack_entries + self.q.len() {
            return Err(format!(
                "stack grew to {} (bound {} + {} queued)",
                self.s.len(),
                self.max_stack_entries,
                self.q.len()
            ));
        }
        for id in self.s.iter() {
            if !self.table.contains_key(id) {
                return Err(format!("stack id {id} missing from table"));
            }
        }
        for id in self.q.iter() {
            match self.table.get(id).map(|n| n.state) {
                Some(State::HirResident) => {}
                other => {
                    return Err(format!("Q id {id} is {other:?}, expected resident HIR"));
                }
            }
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn cold_start_fills_lir() {
        let mut p = Lirs::new(100).unwrap();
        let mut evs = Vec::new();
        for id in 0..50u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        assert!(p.lir_used > 0);
        assert!(p.used() <= 100);
    }

    #[test]
    fn resident_bytes_bounded() {
        let mut p = Lirs::new(50).unwrap();
        let trace = test_trace(20_000, 1000, 31);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 50, "resident {} > 50", p.used());
        }
    }

    #[test]
    fn ghost_hit_promotes_to_lir() {
        let mut p = Lirs::new(20).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        for id in 0..100u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        // Find a ghost (evicted but still on the stack).
        let ghost = (0..100u64)
            .rev()
            .find(|id| matches!(p.table.get(id).map(|n| n.state), Some(State::HirGhost)));
        if let Some(g) = ghost {
            evs.clear();
            let out = p.request(&Request::get(g, t), &mut evs);
            assert!(out.is_miss());
            assert_eq!(p.table[&g].state, State::Lir);
        }
    }

    #[test]
    fn loop_workload_beats_lru() {
        // LIRS's claim to fame: loops larger than the cache.
        let mut reqs = Vec::new();
        let mut t = 0u64;
        for _ in 0..30 {
            for id in 0..30u64 {
                reqs.push(Request::get(id, t));
                t += 1;
            }
        }
        let mut lirs = Lirs::new(20).unwrap();
        let mut lru = crate::lru::Lru::new(20).unwrap();
        let mr_lirs = miss_ratio_of(&mut lirs, &reqs);
        let mr_lru = miss_ratio_of(&mut lru, &reqs);
        assert!(
            mr_lirs < mr_lru - 0.2,
            "LIRS {mr_lirs:.3} must crush LRU {mr_lru:.3} on loops"
        );
    }

    #[test]
    fn skewed_workload_reasonable() {
        let trace = test_trace(30_000, 2000, 37);
        let mut lirs = Lirs::new(64).unwrap();
        let mut fifo = crate::fifo::Fifo::new(64).unwrap();
        let mr_lirs = miss_ratio_of(&mut lirs, &trace);
        let mr_fifo = miss_ratio_of(&mut fifo, &trace);
        assert!(
            mr_lirs < mr_fifo,
            "LIRS {mr_lirs:.4} should beat FIFO {mr_fifo:.4}"
        );
    }

    #[test]
    fn stack_is_bounded() {
        let mut p = Lirs::new(50).unwrap();
        let mut evs = Vec::new();
        for id in 0..100_000u64 {
            evs.clear();
            p.request(&Request::get(id, id), &mut evs);
        }
        assert!(
            p.s.len() <= p.max_stack_entries,
            "stack grew to {}",
            p.s.len()
        );
        assert!(p.table.len() <= p.max_stack_entries + p.q.len() + 1);
    }

    #[test]
    fn basics() {
        let mut p = Lirs::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Lirs::new(0).is_err());
        assert!(Lirs::with_ratio(10, 0.0).is_err());
        assert!(Lirs::with_ratio(10, 1.0).is_err());
    }
}

//! Segmented LRU with four equal segments (§5.2).
//!
//! "SLRU uses four equal-sized LRU queues. Objects are first inserted into
//! the lowest-level LRU queue and promoted to higher-level queues upon cache
//! hits. An inserted object is evicted if not reused in the lowest LRU queue,
//! which performs quick demotion … However, unlike other schemes, SLRU does
//! not use a ghost queue, making it not scan-tolerant."

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

const SEGMENTS: usize = 4;

struct Entry {
    handle: Handle,
    seg: usize,
    meta: Meta,
}

/// Segmented LRU with four segments.
pub struct Slru {
    capacity: u64,
    seg_capacity: u64,
    seg_used: [u64; SEGMENTS],
    table: IdMap<Entry>,
    /// `segs[0]` is the probationary segment; `segs[3]` the most protected.
    segs: [DList<ObjId>; SEGMENTS],
    stats: PolicyStats,
}

impl Slru {
    /// Creates a 4-segment SLRU of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Slru {
            capacity,
            seg_capacity: (capacity / SEGMENTS as u64).max(1),
            seg_used: [0; SEGMENTS],
            table: IdMap::default(),
            segs: std::array::from_fn(|_| DList::new()),
            stats: PolicyStats::default(),
        })
    }

    fn used_total(&self) -> u64 {
        self.seg_used.iter().sum()
    }

    /// Demotes tails of segment `seg` into segment `seg - 1` until the
    /// segment fits its share; cascades down to segment 0.
    fn rebalance_from(&mut self, seg: usize) {
        for s in (1..=seg).rev() {
            while self.seg_used[s] > self.seg_capacity {
                let Some(id) = self.segs[s].pop_back() else {
                    break;
                };
                // Invariant: segment ids are always tabled.
                let e = self.table.get_mut(&id).expect("segment id in table");
                self.seg_used[s] -= u64::from(e.meta.size);
                e.seg = s - 1;
                e.handle = self.segs[s - 1].push_front(id);
                self.seg_used[s - 1] += u64::from(e.meta.size);
            }
        }
    }

    /// Evicts one object from the lowest non-empty segment.
    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        for s in 0..SEGMENTS {
            if let Some(id) = self.segs[s].pop_back() {
                let entry = self.table.remove(&id).expect("entry exists");
                self.seg_used[s] -= u64::from(entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(id, s == 0));
                return;
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used_total() + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.segs[0].push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                seg: 0,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.seg_used[0] += u64::from(req.size);
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let (seg, size, handle) = {
            // Invariant: on_hit fires only after a successful lookup.
            let e = self.table.get_mut(&id).expect("hit entry exists");
            e.meta.touch(now);
            (e.seg, e.meta.size, e.handle)
        };
        let target = (seg + 1).min(SEGMENTS - 1);
        if target == seg {
            self.segs[seg].move_to_front(handle);
            return;
        }
        self.segs[seg].remove(handle);
        self.seg_used[seg] -= u64::from(size);
        let h = self.segs[target].push_front(id);
        self.seg_used[target] += u64::from(size);
        // Invariant: still tabled — only the segment handle changed.
        let e = self.table.get_mut(&id).expect("entry exists");
        e.seg = target;
        e.handle = h;
        self.rebalance_from(target);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.segs[e.seg].remove(e.handle);
            self.seg_used[e.seg] -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Slru {
    fn name(&self) -> String {
        "SLRU".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "SLRU: used {} > capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        let mut seg_counts = 0usize;
        for (s, seg) in self.segs.iter().enumerate() {
            let mut bytes = 0u64;
            for &id in seg.iter() {
                let Some(e) = self.table.get(&id) else {
                    return Err(format!("SLRU: segment {s} id {id} missing from table"));
                };
                if e.seg != s {
                    return Err(format!(
                        "SLRU: id {id} sits in segment {s} but is tagged {}",
                        e.seg
                    ));
                }
                bytes += u64::from(e.meta.size);
                seg_counts += 1;
            }
            if bytes != self.seg_used[s] {
                return Err(format!(
                    "SLRU: segment {s} bytes {bytes} != accounted {}",
                    self.seg_used[s]
                ));
            }
            // Segment 0 absorbs cascaded demotions; the others must respect
            // their share after every rebalance.
            if s > 0 && self.seg_used[s] > self.seg_capacity {
                return Err(format!(
                    "SLRU: segment {s} holds {} > share {}",
                    self.seg_used[s], self.seg_capacity
                ));
            }
        }
        if seg_counts != self.table.len() {
            return Err(format!(
                "SLRU: segments hold {seg_counts} ids but table holds {}",
                self.table.len()
            ));
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn new_objects_evicted_before_promoted_ones() {
        let mut p = Slru::new(8).unwrap();
        let mut evs = Vec::new();
        // Promote 1 and 2 out of the probationary segment.
        for id in [1u64, 2] {
            p.request(&Request::get(id, 0), &mut evs);
            p.request(&Request::get(id, 1), &mut evs);
        }
        // Fill with one-hit objects, overflowing the cache.
        for id in 10..30u64 {
            evs.clear();
            p.request(&Request::get(id, id), &mut evs);
        }
        assert!(p.contains(1) && p.contains(2), "promoted objects survive");
    }

    #[test]
    fn probationary_evictions_flagged() {
        let mut p = Slru::new(4).unwrap();
        let mut evs = Vec::new();
        for id in 0..20u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        assert!(!evs.is_empty());
        assert!(evs.iter().all(|e| e.from_probationary));
    }

    #[test]
    fn hits_climb_segments() {
        let mut p = Slru::new(40).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        assert_eq!(p.table[&1].seg, 0);
        p.request(&Request::get(1, 1), &mut evs);
        assert_eq!(p.table[&1].seg, 1);
        p.request(&Request::get(1, 2), &mut evs);
        assert_eq!(p.table[&1].seg, 2);
        p.request(&Request::get(1, 3), &mut evs);
        assert_eq!(p.table[&1].seg, 3);
        p.request(&Request::get(1, 4), &mut evs);
        assert_eq!(p.table[&1].seg, 3, "top segment is terminal");
    }

    #[test]
    fn segment_overflow_demotes() {
        let mut p = Slru::new(8).unwrap(); // seg capacity = 2
        let mut evs = Vec::new();
        // Promote three objects into segment 1 (capacity 2).
        for id in [1u64, 2, 3] {
            p.request(&Request::get(id, id * 2), &mut evs);
            p.request(&Request::get(id, id * 2 + 1), &mut evs);
        }
        // One of them must have been demoted back to segment 0.
        let seg0_count = [1u64, 2, 3]
            .iter()
            .filter(|id| p.table[id].seg == 0)
            .count();
        assert_eq!(seg0_count, 1);
        assert!(p.seg_used[1] <= p.seg_capacity);
    }

    #[test]
    fn better_than_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 3);
        let mut slru = Slru::new(64).unwrap();
        let mut fifo = crate::fifo::Fifo::new(64).unwrap();
        assert!(miss_ratio_of(&mut slru, &trace) < miss_ratio_of(&mut fifo, &trace));
    }

    #[test]
    fn basics() {
        let mut p = Slru::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Slru::new(0).is_err());
    }
}

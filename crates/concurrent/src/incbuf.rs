//! Batched hit-path bookkeeping for the concurrent S3-FIFO.
//!
//! The direct hit path of a CLOCK-family cache performs two contended
//! writes per hit besides the shard lock word: the per-shard hit counter
//! RMW and (until the two-bit counter saturates) the entry frequency
//! store. Under multicore contention each is a potential cache-line ping,
//! so the paper's "lock-free hit path" can still bottleneck on coherence
//! traffic. This module amortizes both through a pool of claimable,
//! thread-sticky slots:
//!
//! - **Stat credits**: each hit bumps a slot-local per-shard count (a line
//!   only this slot's holder touches) and the real shard counters are
//!   credited once per [`STATS_FLUSH_THRESHOLD`] hits — two orders of
//!   magnitude fewer contended RMWs than one per hit.
//! - **Frequency increments**: hits whose entry was observed *below*
//!   [`MAX_FREQ`](crate::s3fifo) accumulate per-key in the slot's pair
//!   table and are applied — one shard-lock lookup plus one store per
//!   distinct key — when a slot crosses [`FLUSH_THRESHOLD`] pending hits.
//!   Hits on already-saturated entries skip recording entirely: the
//!   direct path's `if f < MAX_FREQ` check would skip the store at the
//!   same moment, so eviction quality is unchanged.
//!
//! Design constraints:
//!
//! - The crate forbids `unsafe`, so slots hold plain atomics rather than
//!   `UnsafeCell` payloads. Exclusivity still comes from the `claimed`
//!   flag: payload atomics are only touched between a successful
//!   claim-CAS and the release store, so they can all be `Relaxed`.
//! - The claim CAS uses `Acquire` on success and the release uses
//!   `Release`. This is a *quality* edge, not a safety edge — everything
//!   is atomic — but without it the next claimer may observe a stale
//!   payload snapshot and attribute pending counts to the wrong keys or
//!   shards. The loom-lite model in `cache-lint` (`models/incbuf.rs`)
//!   plants exactly those two weakenings as mutants the gate must catch.
//! - Deferred bookkeeping changes *eviction quality and stat freshness
//!   only*: gets/inserts still see fully linearizable values, and because
//!   both halves flush with their accumulated counts, per-shard stats and
//!   frequency state are exact again at quiescence once
//!   [`IncBuffers::drain`] runs.
//!
//! If every probe finds the slot claimed (possible but rare: slots far
//! outnumber threads), `record` returns `false` and the caller falls back
//! to direct increments — the buffer is an optimization, never a queue
//! that can block or drop.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Number of slots in the pool. Power of two (masked indexing); far more
/// slots than plausible thread counts so claim collisions stay rare.
pub const SLOTS: usize = 32;

/// Distinct keys a slot's frequency half can hold before a flush is
/// forced by capacity.
pub const SLOT_PAIRS: usize = 8;

/// Pending frequency hits (summed across a slot's pairs) that trigger a
/// frequency flush. Small enough that frequency state lags by at most a
/// few dozen hits per slot — see the miss-ratio-delta bound in
/// `tests/miss_ratio.rs` — large enough to amortize the entry-line writes
/// it exists to batch.
pub const FLUSH_THRESHOLD: u32 = 32;

/// Pending stat credits that trigger a stats flush. Stats tolerate much
/// deeper deferral than frequency state (they steer nothing; they are
/// only read via snapshots, which drain first), so the threshold is
/// sized for amortization: at most one contended counter RMW per shard
/// per this many hits.
pub const STATS_FLUSH_THRESHOLD: u32 = 1024;

/// One claimable batch of pending bookkeeping. Padded to two cache lines
/// so concurrent holders of neighboring slots never false-share.
#[repr(align(128))]
struct IncSlot {
    /// Slot ownership flag; see the module docs for the handoff protocol.
    claimed: AtomicBool,
    /// Total pending frequency hits across all pairs (freq-flush trigger).
    total: AtomicU32,
    /// Keys with pending frequency increments; meaningful only where the
    /// matching count is non-zero.
    keys: [AtomicU64; SLOT_PAIRS],
    /// Pending frequency hits per key; zero marks a free pair.
    counts: [AtomicU32; SLOT_PAIRS],
    /// Total pending stat credits (stats-flush trigger).
    stat_total: AtomicU32,
    /// Pending hit-counter credits per shard index.
    stats: Box<[AtomicU32]>,
}

impl IncSlot {
    fn new(shards: usize) -> Self {
        IncSlot {
            claimed: AtomicBool::new(false),
            total: AtomicU32::new(0),
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU32::new(0)),
            stat_total: AtomicU32::new(0),
            stats: (0..shards).map(|_| AtomicU32::new(0)).collect(),
        }
    }
}

/// A fixed pool of [`SLOTS`] bookkeeping slots shared by all threads
/// using one cache instance.
pub(crate) struct IncBuffers {
    slots: Box<[IncSlot]>,
}

/// Monotone counter handing out starting slots so threads spread across
/// the pool instead of all probing from slot 0.
static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's preferred slot, initialized lazily from `NEXT_HINT`.
    static SLOT_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns this thread's sticky starting slot index.
// ORDERING: Relaxed fetch_add — `NEXT_HINT` only spreads threads across
// slots; no data is published through it.
pub(crate) fn slot_hint() -> usize {
    SLOT_HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT_HINT.fetch_add(1, Ordering::Relaxed) & (SLOTS - 1);
            h.set(v);
        }
        v
    })
}

impl IncBuffers {
    /// A pool whose per-slot stat arrays cover `shards` shard indices.
    pub(crate) fn new(shards: usize) -> Self {
        IncBuffers {
            slots: (0..SLOTS).map(|_| IncSlot::new(shards)).collect(),
        }
    }

    /// Tries to claim the slot at `idx`.
    // ORDERING: Acquire on success pairs with the Release store in
    // `release` so the payload written by the previous holder is visible
    // before we read or extend it; Relaxed on failure — a failed claim
    // publishes nothing and reads nothing.
    fn try_claim(&self, idx: usize) -> bool {
        self.slots[idx]
            .claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the slot at `idx` after the payload writes are done.
    // ORDERING: Release pairs with the Acquire claim-CAS in `try_claim`;
    // downgrading it lets the next claimer see a stale payload snapshot
    // and misattribute pending counts (the loom mutant for this edge).
    fn release(&self, idx: usize) {
        self.slots[idx].claimed.store(false, Ordering::Release);
    }

    /// Records one hit homed in `shard`, deferring the stat credit and —
    /// when `bump_freq` is set (the entry was observed unsaturated) — the
    /// frequency increment for `key`. Returns `false` (caller must apply
    /// directly) if no slot could be claimed within a short probe window.
    /// Either half flushes through its callback when it crosses its
    /// threshold; the frequency half also flushes when a new key finds no
    /// free pair.
    // ORDERING: all payload accesses are Relaxed — they happen strictly
    // between a successful Acquire claim and the Release release, which
    // hand exclusive ownership of the slot from holder to holder.
    pub(crate) fn record(
        &self,
        hint: usize,
        key: u64,
        shard: usize,
        bump_freq: bool,
        apply_freq: &mut dyn FnMut(u64, u32),
        apply_stat: &mut dyn FnMut(usize, u32),
    ) -> bool {
        let mut idx = hint & (SLOTS - 1);
        let mut claimed = false;
        // Probe a handful of slots; with SLOTS >> threads, the first
        // probe succeeds except under adversarial scheduling.
        for _ in 0..4 {
            if self.try_claim(idx) {
                claimed = true;
                break;
            }
            idx = (idx + 1) & (SLOTS - 1);
        }
        if !claimed {
            return false;
        }
        let slot = &self.slots[idx];

        // Stat half: slot-local line, one contended RMW per shard per
        // flush instead of one per hit.
        let s = slot.stats[shard].load(Ordering::Relaxed);
        slot.stats[shard].store(s + 1, Ordering::Relaxed);
        let stat_total = slot.stat_total.load(Ordering::Relaxed) + 1;
        if stat_total >= STATS_FLUSH_THRESHOLD {
            Self::flush_stats(slot, apply_stat);
        } else {
            slot.stat_total.store(stat_total, Ordering::Relaxed);
        }

        if bump_freq {
            // Dedup: a hot key accumulates in one pair.
            let mut free = SLOT_PAIRS;
            let mut merged = false;
            for i in 0..SLOT_PAIRS {
                let c = slot.counts[i].load(Ordering::Relaxed);
                if c == 0 {
                    if free == SLOT_PAIRS {
                        free = i;
                    }
                } else if slot.keys[i].load(Ordering::Relaxed) == key {
                    slot.counts[i].store(c + 1, Ordering::Relaxed);
                    merged = true;
                    break;
                }
            }
            if !merged {
                if free == SLOT_PAIRS {
                    // No room for a new key: flush everything, then seed
                    // the now-empty slot with this hit.
                    Self::flush_freq(slot, apply_freq);
                    free = 0;
                }
                slot.keys[free].store(key, Ordering::Relaxed);
                slot.counts[free].store(1, Ordering::Relaxed);
            }

            let total = slot.total.load(Ordering::Relaxed) + 1;
            if total >= FLUSH_THRESHOLD {
                Self::flush_freq(slot, apply_freq);
            } else {
                slot.total.store(total, Ordering::Relaxed);
            }
        }
        self.release(idx);
        true
    }

    /// Applies and clears every pending frequency pair of `slot`. Caller
    /// must hold the claim.
    // ORDERING: Relaxed payload accesses under the claim, as in `record`.
    fn flush_freq(slot: &IncSlot, apply_freq: &mut dyn FnMut(u64, u32)) {
        for i in 0..SLOT_PAIRS {
            let c = slot.counts[i].load(Ordering::Relaxed);
            if c > 0 {
                apply_freq(slot.keys[i].load(Ordering::Relaxed), c);
                slot.counts[i].store(0, Ordering::Relaxed);
            }
        }
        slot.total.store(0, Ordering::Relaxed);
    }

    /// Applies and clears every pending stat credit of `slot`. Caller
    /// must hold the claim.
    // ORDERING: Relaxed payload accesses under the claim, as in `record`.
    fn flush_stats(slot: &IncSlot, apply_stat: &mut dyn FnMut(usize, u32)) {
        for (shard, count) in slot.stats.iter().enumerate() {
            let c = count.load(Ordering::Relaxed);
            if c > 0 {
                apply_stat(shard, c);
                count.store(0, Ordering::Relaxed);
            }
        }
        slot.stat_total.store(0, Ordering::Relaxed);
    }

    /// Flushes every slot, both halves. Blocks (spinning) on slots
    /// currently claimed by other threads, so this is meant for quiescent
    /// points: stats snapshots, audits, and end-of-run drains.
    // ORDERING: Acquire/Release claim handoff as in `record`; the spin
    // re-CAS is bounded in practice because holders release within a few
    // dozen instructions and never block while holding a slot.
    pub(crate) fn drain(
        &self,
        apply_freq: &mut dyn FnMut(u64, u32),
        apply_stat: &mut dyn FnMut(usize, u32),
    ) {
        for idx in 0..SLOTS {
            while !self.try_claim(idx) {
                std::hint::spin_loop();
            }
            Self::flush_freq(&self.slots[idx], apply_freq);
            Self::flush_stats(&self.slots[idx], apply_stat);
            self.release(idx);
        }
    }

    /// Sum of pending (unapplied) frequency hits across all slots.
    /// Advisory: only exact at quiescence.
    // ORDERING: Relaxed — diagnostic read, exactness only claimed when
    // no thread holds a slot.
    #[cfg(test)]
    pub(crate) fn pending(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| u64::from(s.total.load(Ordering::Relaxed)))
            .sum()
    }

    /// Sum of pending (uncredited) stat hits across all slots. Advisory:
    /// only exact at quiescence.
    // ORDERING: Relaxed — diagnostic read, see `pending`.
    #[cfg(test)]
    pub(crate) fn pending_stats(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| u64::from(s.stat_total.load(Ordering::Relaxed)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Records a freq-bumping hit for `key` homed in shard 0, tallying
    /// both flush halves.
    fn record_hit(
        buf: &IncBuffers,
        hint: usize,
        key: u64,
        freq: &mut HashMap<u64, u64>,
        stats: &mut HashMap<usize, u64>,
    ) -> bool {
        let mut apply_freq = |k: u64, c: u32| {
            *freq.entry(k).or_insert(0) += u64::from(c);
        };
        let mut apply_stat = |s: usize, c: u32| {
            *stats.entry(s).or_insert(0) += u64::from(c);
        };
        buf.record(hint, key, 0, true, &mut apply_freq, &mut apply_stat)
    }

    #[test]
    fn freq_records_are_deferred_until_threshold() {
        let buf = IncBuffers::new(4);
        let mut freq = HashMap::new();
        let mut stats = HashMap::new();
        for _ in 0..u64::from(FLUSH_THRESHOLD) - 1 {
            assert!(record_hit(&buf, 0, 42, &mut freq, &mut stats));
        }
        assert!(freq.is_empty(), "freq flushed before threshold");
        assert_eq!(buf.pending(), u64::from(FLUSH_THRESHOLD) - 1);
        assert!(record_hit(&buf, 0, 42, &mut freq, &mut stats));
        assert_eq!(freq.get(&42), Some(&u64::from(FLUSH_THRESHOLD)));
        assert_eq!(buf.pending(), 0);
        // Stats defer much deeper: nothing credited yet.
        assert!(stats.is_empty());
        assert_eq!(buf.pending_stats(), u64::from(FLUSH_THRESHOLD));
    }

    #[test]
    fn saturated_hits_skip_the_pair_table() {
        let buf = IncBuffers::new(4);
        let mut credited = 0u64;
        for _ in 0..10 {
            let mut apply_freq = |_k: u64, _c: u32| panic!("no freq pending");
            let mut apply_stat = |_s: usize, c: u32| credited += u64::from(c);
            assert!(buf.record(0, 7, 1, false, &mut apply_freq, &mut apply_stat));
        }
        assert_eq!(buf.pending(), 0, "saturated hits must not occupy pairs");
        assert_eq!(buf.pending_stats(), 10);
        assert_eq!(credited, 0);
    }

    #[test]
    fn distinct_keys_force_flush_when_pairs_exhausted() {
        let buf = IncBuffers::new(4);
        let mut freq = HashMap::new();
        let mut stats = HashMap::new();
        for k in 0..SLOT_PAIRS as u64 {
            assert!(record_hit(&buf, 0, k, &mut freq, &mut stats));
        }
        assert!(freq.is_empty());
        // A ninth distinct key overflows the pair array: the eight
        // pending keys flush, the new one is seeded.
        assert!(record_hit(&buf, 0, 999, &mut freq, &mut stats));
        assert_eq!(freq.len(), SLOT_PAIRS);
        assert!(freq.values().all(|&v| v == 1));
        assert_eq!(buf.pending(), 1);
    }

    #[test]
    fn stats_flush_at_their_own_threshold() {
        let buf = IncBuffers::new(4);
        let mut credited: HashMap<usize, u64> = HashMap::new();
        for i in 0..u64::from(STATS_FLUSH_THRESHOLD) {
            let mut apply_freq = |_k: u64, _c: u32| {};
            let mut apply_stat = |s: usize, c: u32| {
                *credited.entry(s).or_insert(0) += u64::from(c);
            };
            // Alternate shards; saturated hits so only the stat half runs.
            assert!(buf.record(0, i, (i % 4) as usize, false, &mut apply_freq, &mut apply_stat));
        }
        let total: u64 = credited.values().sum();
        assert_eq!(total, u64::from(STATS_FLUSH_THRESHOLD));
        assert_eq!(credited.len(), 4, "every shard credited");
        assert_eq!(buf.pending_stats(), 0);
    }

    #[test]
    fn drain_applies_every_pending_increment() {
        let buf = IncBuffers::new(SLOTS);
        let mut freq = HashMap::new();
        let mut stats = HashMap::new();
        for hint in 0..SLOTS {
            for _ in 0..3 {
                let mut apply_freq = |k: u64, c: u32| {
                    *freq.entry(k).or_insert(0) += u64::from(c);
                };
                let mut apply_stat = |s: usize, c: u32| {
                    *stats.entry(s).or_insert(0) += u64::from(c);
                };
                assert!(buf.record(hint, hint as u64, hint, true, &mut apply_freq, &mut apply_stat));
            }
        }
        assert!(freq.is_empty());
        assert!(stats.is_empty());
        {
            let mut apply_freq = |k: u64, c: u32| {
                *freq.entry(k).or_insert(0) += u64::from(c);
            };
            let mut apply_stat = |s: usize, c: u32| {
                *stats.entry(s).or_insert(0) += u64::from(c);
            };
            buf.drain(&mut apply_freq, &mut apply_stat);
        }
        assert_eq!(freq.len(), SLOTS);
        assert!(freq.values().all(|&v| v == 3));
        assert_eq!(stats.len(), SLOTS);
        assert!(stats.values().all(|&v| v == 3));
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.pending_stats(), 0);
    }

    #[test]
    fn conservation_across_concurrent_recorders() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let buf = Arc::new(IncBuffers::new(8));
        let freq_applied = Arc::new(AtomicU64::new(0));
        let stat_applied = Arc::new(AtomicU64::new(0));
        let direct = Arc::new(AtomicU64::new(0));
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let buf = Arc::clone(&buf);
                let freq_applied = Arc::clone(&freq_applied);
                let stat_applied = Arc::clone(&stat_applied);
                let direct = Arc::clone(&direct);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // ORDERING: Relaxed — test-only tallies, read
                        // after join.
                        let mut apply_freq = |_k: u64, c: u32| {
                            freq_applied.fetch_add(u64::from(c), Ordering::Relaxed);
                        };
                        let mut apply_stat = |_s: usize, c: u32| {
                            stat_applied.fetch_add(u64::from(c), Ordering::Relaxed);
                        };
                        if !buf.record(
                            t as usize,
                            i % 7,
                            (i % 8) as usize,
                            true,
                            &mut apply_freq,
                            &mut apply_stat,
                        ) {
                            direct.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread panicked: test invariant");
        }
        let mut apply_freq = |_k: u64, c: u32| {
            freq_applied.fetch_add(u64::from(c), Ordering::Relaxed);
        };
        let mut apply_stat = |_s: usize, c: u32| {
            stat_applied.fetch_add(u64::from(c), Ordering::Relaxed);
        };
        buf.drain(&mut apply_freq, &mut apply_stat);
        // Every recorded hit is applied exactly once per half, via buffer
        // or direct fallback.
        let recorded = THREADS * PER_THREAD - direct.load(Ordering::Relaxed);
        assert_eq!(freq_applied.load(Ordering::Relaxed), recorded);
        assert_eq!(stat_applied.load(Ordering::Relaxed), recorded);
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.pending_stats(), 0);
    }
}

//! Closed-loop multi-threaded replay harness (Fig. 8's methodology).
//!
//! §5.3: "The Zipf workload contains 100·n_thread million requests for
//! n_thread million 4 KB objects" (scaled down here), replayed in a closed
//! loop; misses are filled on demand with pre-generated data. Each thread
//! replays its own slice of a pre-generated key sequence; throughput is
//! total requests divided by wall time.

use crate::ConcurrentCache;
use bytes::Bytes;
use cache_ds::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Workload parameters for one throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Requests per thread.
    pub requests_per_thread: usize,
    /// Distinct objects.
    pub objects: u64,
    /// Zipf skew (paper: 1.0).
    pub alpha: f64,
    /// Payload size in bytes (paper: 4 KB).
    pub value_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            requests_per_thread: 1_000_000,
            objects: 1_000_000,
            alpha: 1.0,
            value_size: 4096,
            seed: 0xF16_8,
        }
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Threads used.
    pub threads: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Cache hits observed.
    pub hits: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Million operations per second.
    pub mops: f64,
}

impl ThroughputResult {
    /// Hit ratio of the run.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Pre-generates per-thread Zipf key sequences (kept out of the timed
/// region).
pub fn generate_keys(cfg: &ThroughputConfig, threads: usize) -> Vec<Vec<u64>> {
    let zipf = cache_trace_zipf(cfg.objects, cfg.alpha);
    (0..threads)
        .map(|t| {
            let mut rng = SplitMix64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            (0..cfg.requests_per_thread)
                .map(|_| sample_zipf(&zipf, &mut rng))
                .collect()
        })
        .collect()
}

// A minimal local Zipf CDF (cache-trace is not a dependency of this crate
// to keep the prototype layer freestanding).
fn cache_trace_zipf(n: u64, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / (i as f64).powf(alpha);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut SplitMix64) -> u64 {
    let u = rng.next_f64();
    let idx = cdf.partition_point(|&c| c < u);
    (idx.min(cdf.len() - 1) + 1) as u64
}

/// Runs a closed-loop throughput measurement with `threads` threads.
///
/// Threads spin on a barrier, then replay their key slice: `get`, and on a
/// miss, `insert` a clone of the pre-generated payload.
pub fn run_throughput(
    cache: Arc<dyn ConcurrentCache>,
    keys: &[Vec<u64>],
    value_size: usize,
) -> ThroughputResult {
    let threads = keys.len();
    let payload = Bytes::from(vec![0xABu8; value_size]);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let hits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for thread_keys in keys {
        let cache = cache.clone();
        let barrier = barrier.clone();
        let hits = hits.clone();
        let payload = payload.clone();
        let thread_keys = thread_keys.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut local_hits = 0u64;
            for &k in &thread_keys {
                match cache.get(k) {
                    Some(_) => local_hits += 1,
                    None => cache.insert(k, payload.clone()),
                }
            }
            hits.fetch_add(local_hits, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let seconds = start.elapsed().as_secs_f64();
    let requests: u64 = keys.iter().map(|k| k.len() as u64).sum();
    ThroughputResult {
        threads,
        requests,
        hits: hits.load(Ordering::Relaxed),
        seconds,
        mops: requests as f64 / seconds / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3fifo::ConcurrentS3Fifo;

    #[test]
    fn keys_follow_zipf_shape() {
        let cfg = ThroughputConfig {
            requests_per_thread: 50_000,
            objects: 10_000,
            alpha: 1.0,
            value_size: 8,
            seed: 1,
        };
        let keys = generate_keys(&cfg, 2);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].len(), 50_000);
        // Rank 1 must be the most frequent key.
        let count = |ks: &Vec<u64>, k| ks.iter().filter(|&&x| x == k).count();
        assert!(count(&keys[0], 1) > count(&keys[0], 100));
        // Per-thread streams differ.
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn throughput_run_reports_sane_numbers() {
        let cfg = ThroughputConfig {
            requests_per_thread: 20_000,
            objects: 1000,
            alpha: 1.0,
            value_size: 64,
            seed: 2,
        };
        let keys = generate_keys(&cfg, 2);
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(500));
        let r = run_throughput(cache, &keys, cfg.value_size);
        assert_eq!(r.requests, 40_000);
        assert!(r.mops > 0.0);
        assert!(r.hit_ratio() > 0.3, "hit ratio {}", r.hit_ratio());
        assert!(r.seconds > 0.0);
    }
}

//! Closed-loop multi-threaded replay harness (Fig. 8's methodology).
//!
//! §5.3: "The Zipf workload contains 100·n_thread million requests for
//! n_thread million 4 KB objects" (scaled down here), replayed in a closed
//! loop; misses are filled on demand with pre-generated data. Each thread
//! replays its own slice of a pre-generated key sequence; throughput is
//! total requests divided by wall time.

use crate::ConcurrentCache;
use bytes::Bytes;
use cache_ds::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Workload parameters for one throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Requests per thread.
    pub requests_per_thread: usize,
    /// Distinct objects.
    pub objects: u64,
    /// Zipf skew (paper: 1.0).
    pub alpha: f64,
    /// Payload size in bytes (paper: 4 KB).
    pub value_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            requests_per_thread: 1_000_000,
            objects: 1_000_000,
            alpha: 1.0,
            value_size: 4096,
            seed: 0xF168,
        }
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Threads used.
    pub threads: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Cache hits observed.
    pub hits: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Million operations per second.
    pub mops: f64,
}

impl ThroughputResult {
    /// Hit ratio of the run.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Pre-generates per-thread Zipf key sequences (kept out of the timed
/// region).
pub fn generate_keys(cfg: &ThroughputConfig, threads: usize) -> Vec<Vec<u64>> {
    let zipf = cache_trace_zipf(cfg.objects, cfg.alpha);
    (0..threads)
        .map(|t| {
            let mut rng = SplitMix64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            (0..cfg.requests_per_thread)
                .map(|_| sample_zipf(&zipf, &mut rng))
                .collect()
        })
        .collect()
}

// A minimal local Zipf CDF (cache-trace is not a dependency of this crate
// to keep the prototype layer freestanding). Shared with `oplog` so logged
// histories can use the same skew as the throughput harness.
pub(crate) fn cache_trace_zipf(n: u64, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / (i as f64).powf(alpha);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

pub(crate) fn sample_zipf(cdf: &[f64], rng: &mut SplitMix64) -> u64 {
    let u = rng.next_f64();
    let idx = cdf.partition_point(|&c| c < u);
    (idx.min(cdf.len() - 1) + 1) as u64
}

/// Runs a closed-loop throughput measurement with `threads` threads.
///
/// Threads spin on a barrier, then replay their key slice: `get`, and on a
/// miss, `insert` a clone of the pre-generated payload.
// ORDERING: Relaxed hit counter — aggregated after `join`, which already
// orders every worker's adds before the final load.
pub fn run_throughput(
    cache: Arc<dyn ConcurrentCache>,
    keys: &[Vec<u64>],
    value_size: usize,
) -> ThroughputResult {
    let threads = keys.len();
    let payload = Bytes::from(vec![0xABu8; value_size]);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let hits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for thread_keys in keys {
        let cache = cache.clone();
        let barrier = barrier.clone();
        let hits = hits.clone();
        let payload = payload.clone();
        let thread_keys = thread_keys.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut local_hits = 0u64;
            for &k in &thread_keys {
                match cache.get(k) {
                    Some(_) => local_hits += 1,
                    None => cache.insert(k, payload.clone()),
                }
            }
            hits.fetch_add(local_hits, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        // Invariant: worker closures contain no panicking operations of
        // their own; a panic here means the cache under test is broken,
        // which must abort the measurement loudly.
        h.join().expect("worker panicked");
    }
    let seconds = start.elapsed().as_secs_f64();
    let requests: u64 = keys.iter().map(|k| k.len() as u64).sum();
    ThroughputResult {
        threads,
        requests,
        hits: hits.load(Ordering::Relaxed),
        seconds,
        mops: requests as f64 / seconds / 1e6,
    }
}

// ---------------------------------------------------------------------------
// Seeded multi-threaded torture harness
// ---------------------------------------------------------------------------

/// Parameters of a torture run.
///
/// Each thread owns a private key range (for invariants that need exclusive
/// writers: version monotonicity, remove-visibility) and shares a contended
/// range with every other thread (for raw interleaving pressure). Inserts
/// pass through a seeded fault injector; a faulted insert is *dropped*,
/// modelling a tier that refused the write — correctness must be unaffected.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Worker threads (the acceptance bar is >= 4).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Keys in the shared, contended range.
    pub shared_keys: u64,
    /// Keys in each thread's private range.
    pub owned_keys: u64,
    /// Payload size in bytes (min 16; payloads encode key + version).
    pub value_size: usize,
    /// Seed for all per-thread RNG and fault streams.
    pub seed: u64,
    /// Fault plan applied to inserts (write-class faults drop the insert).
    pub fault_plan: cache_faults::FaultPlan,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            threads: 4,
            ops_per_thread: 25_000,
            shared_keys: 512,
            owned_keys: 256,
            value_size: 32,
            seed: 0x7011_7011,
            fault_plan: cache_faults::FaultPlan::none(),
        }
    }
}

/// Outcome of a torture run. All `*_violations` counters must be zero for
/// a correct cache; [`TortureReport::assert_clean`] checks them.
#[derive(Debug, Clone, Default)]
pub struct TortureReport {
    /// Total operations executed.
    pub ops: u64,
    /// Get operations.
    pub gets: u64,
    /// Hits among the gets.
    pub hits: u64,
    /// Inserts that reached the cache.
    pub inserts: u64,
    /// Inserts dropped by the fault injector.
    pub dropped_inserts: u64,
    /// Remove operations.
    pub removes: u64,
    /// Hits whose payload did not decode to the requested key (lost or
    /// torn update, or cross-key aliasing).
    pub integrity_violations: u64,
    /// Hits on an owned key that returned a superseded version (duplicate
    /// residency: a stale copy resurfaced after an overwrite).
    pub stale_version_violations: u64,
    /// Owned keys visible again right after their exclusive owner removed
    /// them.
    pub resurrection_violations: u64,
    /// Keys the quiescent audit found both live and ghosted (informational;
    /// bounded races legally leave a few — see [`crate::AuditReport`]).
    pub live_ghosted: u64,
    /// Set when the quiescent full-table audit run after joining the
    /// workers found more violations than the per-thread race budget
    /// allows. Unlike the statistical mid-run thresholds this check is
    /// deterministic: at quiescence every structure is walked exactly.
    pub audit_error: Option<String>,
}

impl TortureReport {
    /// Panics if any invariant was violated.
    pub fn assert_clean(&self) {
        assert_eq!(
            self.integrity_violations, 0,
            "payload integrity violated: {self:?}"
        );
        assert_eq!(
            self.stale_version_violations, 0,
            "duplicate residency (stale version) observed: {self:?}"
        );
        assert_eq!(
            self.resurrection_violations, 0,
            "removed keys resurfaced: {self:?}"
        );
        assert!(
            self.audit_error.is_none(),
            "quiescent audit failed: {self:?}"
        );
    }
}

/// Payloads encode `(key, version)` so every hit can be verified.
fn encode_payload(key: u64, version: u64, size: usize) -> Bytes {
    let size = size.max(16);
    let mut v = vec![0u8; size];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    Bytes::from(v)
}

fn decode_payload(b: &Bytes) -> Option<(u64, u64)> {
    if b.len() < 16 {
        return None;
    }
    let key = u64::from_le_bytes(b[..8].try_into().ok()?);
    let version = u64::from_le_bytes(b[8..16].try_into().ok()?);
    Some((key, version))
}

/// Runs the seeded torture interleaving: concurrent gets, inserts (through
/// the fault injector), and removes across shared and thread-owned key
/// ranges, with invariant counters collected on every hit.
///
/// Determinism note: each thread's *operation stream* is a pure function of
/// `(cfg.seed, thread index)`; the cross-thread interleaving is whatever
/// the scheduler produces, which is exactly the point.
// ORDERING: Relaxed counters only — the scope join orders them before the
// snapshot; no counter gates any control decision mid-run.
pub fn run_torture(cache: Arc<dyn ConcurrentCache>, cfg: &TortureConfig) -> TortureReport {
    use cache_faults::{FaultInjector, FaultKind, OpClass};

    let report = Arc::new(TortureCounters::default());
    let capacity = cache.capacity();
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let cache = Arc::clone(&cache);
            let report = Arc::clone(&report);
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut rng =
                    SplitMix64::new(cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut plan = cfg.fault_plan.clone();
                plan.seed ^= t as u64;
                let mut injector = FaultInjector::new(plan);
                // The owner's source of truth for its private keys:
                // version inserted last, or None when removed/never inserted.
                let mut owned_state: Vec<Option<u64>> = vec![None; cfg.owned_keys as usize];
                let mut next_version = 1u64;
                let owned_base = cfg.shared_keys + t as u64 * cfg.owned_keys;
                for _ in 0..cfg.ops_per_thread {
                    report.ops.fetch_add(1, Ordering::Relaxed);
                    match rng.next_below(10) {
                        // 0-4: get a random key (shared or owned).
                        0..=4 => {
                            let (key, owned_idx) = if rng.next_below(2) == 0 {
                                (rng.next_below(cfg.shared_keys.max(1)), None)
                            } else {
                                let i = rng.next_below(cfg.owned_keys.max(1));
                                (owned_base + i, Some(i as usize))
                            };
                            report.gets.fetch_add(1, Ordering::Relaxed);
                            if let Some(value) = cache.get(key) {
                                report.hits.fetch_add(1, Ordering::Relaxed);
                                match decode_payload(&value) {
                                    Some((k, ver)) if k == key => {
                                        if let Some(i) = owned_idx {
                                            // Only this thread writes this key,
                                            // so a hit must be the live version.
                                            match owned_state[i] {
                                                Some(live) if ver == live => {}
                                                Some(_) => {
                                                    report
                                                        .stale
                                                        .fetch_add(1, Ordering::Relaxed);
                                                }
                                                None => {
                                                    report
                                                        .resurrections
                                                        .fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                        }
                                    }
                                    _ => {
                                        report.integrity.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        // 5-7: insert (through the fault injector).
                        5..=7 => {
                            let (key, owned_idx) = if rng.next_below(2) == 0 {
                                (rng.next_below(cfg.shared_keys.max(1)), None)
                            } else {
                                let i = rng.next_below(cfg.owned_keys.max(1));
                                (owned_base + i, Some(i as usize))
                            };
                            let version = next_version;
                            next_version += 1;
                            let dropped = matches!(
                                injector.next_fault(OpClass::Write),
                                Some(f) if f.kind != FaultKind::LatencySpike
                            );
                            if dropped {
                                report.dropped.fetch_add(1, Ordering::Relaxed);
                                // The tier refused the write: for an owned key
                                // the previous version (if any) is still live.
                            } else {
                                cache.insert(
                                    key,
                                    encode_payload(key, version, cfg.value_size),
                                );
                                report.inserts.fetch_add(1, Ordering::Relaxed);
                                if let Some(i) = owned_idx {
                                    owned_state[i] = Some(version);
                                }
                            }
                        }
                        // 8: remove an owned key and check it stays gone.
                        8 => {
                            let i = rng.next_below(cfg.owned_keys.max(1)) as usize;
                            let key = owned_base + i as u64;
                            cache.remove(key);
                            owned_state[i] = None;
                            report.removes.fetch_add(1, Ordering::Relaxed);
                            if cache.get(key).is_some() {
                                report.resurrections.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // 9: occupancy must stay bounded at all times.
                        _ => {
                            let len = cache.len();
                            // Small slack: sharded implementations may be
                            // momentarily over while an eviction is in flight.
                            if len > capacity + cfg.threads * 8 {
                                report.integrity.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let mut report = report.snapshot();
    // Quiescent full-table audit: the scope join above guarantees no
    // mutator is live, so every structure can be walked exactly. Lock-free
    // designs legally leave a bounded number of transient artifacts per
    // racing thread (orphaned CLOCK slots, ghosted re-inserts); the budget
    // is per-thread, never proportional to the op count.
    let audit = cache.audit_quiescent();
    report.live_ghosted = audit.live_ghosted as u64;
    let slack = cfg.threads * 8;
    if !audit.is_clean(slack) {
        report.audit_error = Some(format!(
            "{}: {audit:?} exceeds slack {slack}",
            cache.name()
        ));
    }
    report
}

#[derive(Default)]
struct TortureCounters {
    ops: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
    dropped: AtomicU64,
    removes: AtomicU64,
    integrity: AtomicU64,
    stale: AtomicU64,
    resurrections: AtomicU64,
}

impl TortureCounters {
    // ORDERING: Relaxed — called after the thread scope exits, so all
    // worker increments happen-before these loads via the joins.
    fn snapshot(&self) -> TortureReport {
        TortureReport {
            ops: self.ops.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            dropped_inserts: self.dropped.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            integrity_violations: self.integrity.load(Ordering::Relaxed),
            stale_version_violations: self.stale.load(Ordering::Relaxed),
            resurrection_violations: self.resurrections.load(Ordering::Relaxed),
            live_ghosted: 0,
            audit_error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3fifo::ConcurrentS3Fifo;

    #[test]
    fn keys_follow_zipf_shape() {
        let cfg = ThroughputConfig {
            requests_per_thread: 50_000,
            objects: 10_000,
            alpha: 1.0,
            value_size: 8,
            seed: 1,
        };
        let keys = generate_keys(&cfg, 2);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].len(), 50_000);
        // Rank 1 must be the most frequent key.
        let count = |ks: &Vec<u64>, k| ks.iter().filter(|&&x| x == k).count();
        assert!(count(&keys[0], 1) > count(&keys[0], 100));
        // Per-thread streams differ.
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn payload_roundtrip() {
        let p = encode_payload(0xDEAD_BEEF, 42, 32);
        assert_eq!(p.len(), 32);
        assert_eq!(decode_payload(&p), Some((0xDEAD_BEEF, 42)));
        assert_eq!(decode_payload(&Bytes::from_static(b"short")), None);
    }

    #[test]
    fn torture_all_caches_fault_free() {
        // 4 threads x 25k ops = 100k ops per implementation.
        let cfg = TortureConfig::default();
        for cache in crate::test_caches(1024) {
            let name = cache.name();
            let r = run_torture(cache, &cfg);
            assert_eq!(r.ops, 100_000, "{name}");
            assert!(r.hits > 0, "{name}: no hits in torture run");
            r.assert_clean();
        }
    }

    #[test]
    fn torture_s3fifo_under_bursty_insert_faults() {
        // Ramping write faults up to 20%, with bursts: dropped inserts must
        // never corrupt what *is* cached.
        let mut cfg = TortureConfig::default();
        cfg.fault_plan = cache_faults::FaultPlan::new(33)
            .with(
                cache_faults::FaultKind::TransientWrite,
                cache_faults::Schedule::Ramp {
                    start: 0.0,
                    end: 0.2,
                    over_ops: 5_000,
                },
            )
            .with(
                cache_faults::FaultKind::DeviceFull,
                cache_faults::Schedule::Burst {
                    period: 1000,
                    burst_len: 100,
                    inside: 0.5,
                    outside: 0.0,
                },
            );
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(1024));
        let r = run_torture(Arc::clone(&cache), &cfg);
        assert_eq!(r.ops, 100_000);
        assert!(r.dropped_inserts > 0, "faults must actually drop inserts");
        assert!(r.hits > 0);
        r.assert_clean();
        assert!(cache.len() <= cache.capacity() + 32);
    }

    #[test]
    fn torture_streams_are_seed_deterministic() {
        // Same seed => same per-thread op streams => identical drop counts
        // (interleaving varies, but injector decisions do not).
        let mut cfg = TortureConfig::default();
        cfg.threads = 2;
        cfg.ops_per_thread = 10_000;
        cfg.fault_plan = cache_faults::FaultPlan::new(7).with_transient_writes(0.1);
        let run = || {
            let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(256));
            run_torture(cache, &cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.dropped_inserts, b.dropped_inserts);
        assert_eq!(a.removes, b.removes);
        assert_eq!(a.gets, b.gets);
    }

    #[test]
    fn throughput_run_reports_sane_numbers() {
        let cfg = ThroughputConfig {
            requests_per_thread: 20_000,
            objects: 1000,
            alpha: 1.0,
            value_size: 64,
            seed: 2,
        };
        let keys = generate_keys(&cfg, 2);
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(500));
        let r = run_throughput(cache, &keys, cfg.value_size);
        assert_eq!(r.requests, 40_000);
        assert!(r.mops > 0.0);
        assert!(r.hit_ratio() > 0.3, "hit ratio {}", r.hit_ratio());
        assert!(r.seconds > 0.0);
    }
}

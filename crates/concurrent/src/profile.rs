//! Measured-cost synchronization profiling for the contention model.
//!
//! The thread-sweep benchmark (`bench/src/bin/concurrent_throughput.rs`)
//! cannot observe real multi-core contention on a single-vCPU host, so it
//! *measures the ingredients* instead: how many nanoseconds each operation
//! spends holding a **global** lock, and how many times it writes a shared
//! cache line. Each concurrent cache owns a [`SyncProfile`]; when profiling
//! is enabled (single-threaded calibration passes only), the hot paths
//! report:
//!
//! - **global lock sections** (`section_start`/`section_end`): wall time
//!   spent *holding* a lock every thread must pass through — the LRU list
//!   mutex, the Segcache segment mutex, the `GlobalLock` policy mutex.
//!   Sharded locks are deliberately *not* timed: with `shards >=
//!   8 x threads` they serialize only on (rare) same-shard collisions,
//!   which the model covers through the entry-line counter below.
//! - **shared-line writes** (`shared_write`): atomic RMWs/stores on lines
//!   written by *every* thread regardless of key — ring head/tail,
//!   `s_count`/`m_count`, the CLOCK hand, global `len` counters. Each one
//!   costs a cross-core cache-line transfer under contention.
//! - **entry-line writes** (`entry_write`): atomic writes to per-entry or
//!   per-shard lines (freq counters, reference bits, sharded stat
//!   counters, sharded lock words). These contend only when two threads
//!   collide on the same key/shard, so the model weights them by the
//!   workload's key-collision probability.
//!
//! When disabled (the default, and always during real measured runs) every
//! hook is a single relaxed load — no timing syscalls, no RMWs — so the
//! instrumentation cannot distort the numbers it feeds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Synchronization-cost counters for one cache instance. See the module
/// docs for what the three classes mean and why they are separated.
#[derive(Debug, Default)]
pub struct SyncProfile {
    enabled: AtomicBool,
    lock_ns: AtomicU64,
    lock_sections: AtomicU64,
    shared_writes: AtomicU64,
    entry_writes: AtomicU64,
}

/// A point-in-time copy of a [`SyncProfile`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncSnapshot {
    /// Nanoseconds spent holding global locks.
    pub lock_ns: u64,
    /// Number of timed global-lock sections.
    pub lock_sections: u64,
    /// Atomic writes to globally shared cache lines.
    pub shared_writes: u64,
    /// Atomic writes to per-entry / per-shard cache lines.
    pub entry_writes: u64,
}

impl SyncProfile {
    /// A fresh, disabled profile (`const` so trait defaults can keep a
    /// shared static stub).
    pub const fn new() -> Self {
        SyncProfile {
            enabled: AtomicBool::new(false),
            lock_ns: AtomicU64::new(0),
            lock_sections: AtomicU64::new(0),
            shared_writes: AtomicU64::new(0),
            entry_writes: AtomicU64::new(0),
        }
    }

    /// Turns profiling on or off. Callers must be quiesced: the flag is a
    /// calibration switch, not a synchronization point.
    // ORDERING: Relaxed — the benchmark toggles this from the only running
    // thread before/after single-threaded calibration passes.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether profiling is currently enabled.
    // ORDERING: Relaxed — advisory gate, see `set_enabled`.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts timing a global-lock section; returns `None` (free) when
    /// profiling is off. Call *after* acquiring the lock so queueing time
    /// is excluded and only hold time is measured.
    pub fn section_start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a global-lock section started by [`SyncProfile::section_start`].
    /// Call just before releasing the lock.
    // ORDERING: Relaxed counter adds — profiling runs single-threaded, and
    // the snapshot happens after quiescence.
    pub fn section_end(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos() as u64;
            self.lock_ns.fetch_add(ns, Ordering::Relaxed);
            self.lock_sections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `n` shared-line atomic writes (globally contended lines).
    // ORDERING: Relaxed — see `section_end`.
    #[inline]
    pub fn shared_write(&self, n: u64) {
        if self.is_enabled() {
            self.shared_writes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` entry-line atomic writes (per-key / per-shard lines).
    // ORDERING: Relaxed — see `section_end`.
    #[inline]
    pub fn entry_write(&self, n: u64) {
        if self.is_enabled() {
            self.entry_writes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Copies the counters out.
    // ORDERING: Relaxed loads — read at quiescence after the profiled pass.
    pub fn snapshot(&self) -> SyncSnapshot {
        SyncSnapshot {
            lock_ns: self.lock_ns.load(Ordering::Relaxed),
            lock_sections: self.lock_sections.load(Ordering::Relaxed),
            shared_writes: self.shared_writes.load(Ordering::Relaxed),
            entry_writes: self.entry_writes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (the enabled flag is left unchanged).
    // ORDERING: Relaxed stores — calibration-only, single-threaded.
    pub fn reset(&self) {
        self.lock_ns.store(0, Ordering::Relaxed);
        self.lock_sections.store(0, Ordering::Relaxed);
        self.shared_writes.store(0, Ordering::Relaxed);
        self.entry_writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let p = SyncProfile::new();
        assert!(p.section_start().is_none());
        p.section_end(None);
        p.shared_write(5);
        p.entry_write(7);
        assert_eq!(p.snapshot(), SyncSnapshot::default());
    }

    #[test]
    fn enabled_profile_accumulates_and_resets() {
        let p = SyncProfile::new();
        p.set_enabled(true);
        let t = p.section_start();
        assert!(t.is_some());
        p.section_end(t);
        p.shared_write(3);
        p.entry_write(2);
        let s = p.snapshot();
        assert_eq!(s.lock_sections, 1);
        assert_eq!(s.shared_writes, 3);
        assert_eq!(s.entry_writes, 2);
        p.reset();
        assert_eq!(p.snapshot(), SyncSnapshot::default());
        assert!(p.is_enabled(), "reset must not clear the enabled flag");
    }
}

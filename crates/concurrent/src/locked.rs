//! A global-mutex adapter turning any single-threaded [`Policy`] into a
//! [`ConcurrentCache`].
//!
//! This is how Fig. 8's "advanced algorithm" lines are produced: TinyLFU and
//! 2Q "require locking on both cache hits and cache misses" (§5.3) — wrap
//! the single-threaded implementation behind one mutex and the scalability
//! ceiling follows.

use crate::profile::SyncProfile;
use crate::{AuditReport, ConcurrentCache};
use bytes::Bytes;
use cache_types::{Eviction, Policy, Request};
use parking_lot::Mutex;
use cache_ds::IdMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct Core<P: Policy> {
    policy: P,
    store: IdMap<Bytes>,
    scratch: Vec<Eviction>,
}

/// `Mutex<policy + value store>` — every operation takes the global lock.
pub struct GlobalLock<P: Policy> {
    core: Mutex<Core<P>>,
    name: String,
    profile: SyncProfile,
    clock: AtomicU64,
    capacity: usize,
}

impl<P: Policy> GlobalLock<P> {
    /// Wraps `policy` (whose capacity should be `capacity` entries with
    /// unit sizes) under a global mutex.
    pub fn new(policy: P, capacity: usize) -> Self {
        let name = policy.name();
        GlobalLock {
            core: Mutex::new(Core {
                policy,
                store: IdMap::with_capacity_and_hasher(capacity + 1, Default::default()),
                scratch: Vec::new(),
            }),
            name: format!("{name}-locked"),
            profile: SyncProfile::new(),
            clock: AtomicU64::new(0),
            capacity,
        }
    }
}

impl<P: Policy + Send> ConcurrentCache for GlobalLock<P> {
    fn name(&self) -> String {
        self.name.clone()
    }

    // ORDERING: Relaxed logical-clock tick — the policy only needs a
    // unique monotonic-ish timestamp; real ordering comes from the lock.
    fn get(&self, key: u64) -> Option<Bytes> {
        self.profile.shared_write(1); // global clock line
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        let t0 = self.profile.section_start();
        let out = if let Some(v) = core.store.get(&key).cloned() {
            // Drive the policy's hit path (metadata update under the lock).
            let mut evs = std::mem::take(&mut core.scratch);
            evs.clear();
            core.policy.request(&Request::get(key, t), &mut evs);
            core.scratch = evs;
            Some(v)
        } else {
            None
        };
        self.profile.section_end(t0);
        out
    }

    // ORDERING: Relaxed clock tick, as in `get` — the global lock below
    // serializes all policy and store mutation.
    fn insert(&self, key: u64, value: Bytes) {
        self.profile.shared_write(1); // global clock line
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        let t0 = self.profile.section_start();
        let mut evs = std::mem::take(&mut core.scratch);
        evs.clear();
        core.policy.request(&Request::get(key, t), &mut evs);
        core.store.insert(key, value);
        for e in &evs {
            core.store.remove(&e.id);
        }
        core.scratch = evs;
        self.profile.section_end(t0);
    }

    // ORDERING: Relaxed clock tick, as in `get`.
    fn remove(&self, key: u64) -> bool {
        self.profile.shared_write(1); // global clock line
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        let t0 = self.profile.section_start();
        let existed = core.store.remove(&key).is_some();
        if existed {
            let mut evs = std::mem::take(&mut core.scratch);
            evs.clear();
            core.policy.request(&Request::delete(key, t), &mut evs);
            core.scratch = evs;
        }
        self.profile.section_end(t0);
        existed
    }

    fn len(&self) -> usize {
        self.core.lock().store.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sync_profile(&self) -> &SyncProfile {
        &self.profile
    }

    // The policy's own `validate()` is the deep structural check here; on
    // top of it the audit asserts the value store respects capacity
    // (every policy eviction was applied to the store).
    fn audit_quiescent(&self) -> AuditReport {
        let core = self.core.lock();
        let mut report = AuditReport {
            resident: core.store.len(),
            ..AuditReport::default()
        };
        if core.policy.validate().is_err() {
            report.stale_handles += 1;
        }
        if core.store.len() > self.capacity {
            // Missed evictions leave the store larger than the policy's
            // universe — count the excess as stale handles.
            report.stale_handles += core.store.len() - self.capacity;
        }
        report
    }
}

/// Builds the locked TinyLFU used in Fig. 8.
pub fn locked_tinylfu(capacity: usize) -> GlobalLock<cache_policies::TinyLfu> {
    GlobalLock::new(
        cache_policies::TinyLfu::with_window(capacity as u64, 0.1).expect("capacity > 0"),
        capacity,
    )
}

/// Builds the locked 2Q used in Fig. 8.
pub fn locked_twoq(capacity: usize) -> GlobalLock<cache_policies::TwoQ> {
    GlobalLock::new(
        cache_policies::TwoQ::new(capacity as u64).expect("capacity > 0"),
        capacity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn behaves_like_a_cache() {
        let c = locked_tinylfu(100);
        assert_eq!(c.get(1), None);
        c.insert(1, Bytes::from_static(b"v"));
        assert_eq!(c.get(1), Some(Bytes::from_static(b"v")));
        assert!(c.name().contains("TinyLFU"));
    }

    #[test]
    fn store_tracks_policy_evictions() {
        let c = locked_twoq(32);
        for k in 0..1000u64 {
            c.insert(k, Bytes::from_static(b"v"));
        }
        assert!(c.len() <= 32, "store leaked: {}", c.len());
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = Arc::new(locked_tinylfu(200));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 7;
                for _ in 0..10_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 500;
                    if c.get(key).is_none() {
                        c.insert(key, Bytes::from_static(b"v"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 200);
    }
}

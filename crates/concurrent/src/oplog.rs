//! Operation-log recording for the linearizability-lite checker.
//!
//! [`crate::harness::run_torture`] verifies *heuristic* invariants on line
//! (version monotonicity on exclusively-owned keys). This module records a
//! complete timed history instead — every get/insert/remove with a global
//! logical interval `[start, end]` and globally-unique insert values — so
//! `cache-check`'s sequential-witness search can verify after the fact that
//! the observed history admits a legal ordering, shared keys included.
//!
//! Timestamps come from one global atomic counter: `start` is drawn
//! immediately before the cache call and `end` immediately after, so if
//! `a.end < b.start` then operation `a` really completed before `b` began
//! (single-process real-time order). Insert values are unique across the
//! whole run (thread index in the high bits), which is what lets the checker
//! match a get to the exact insert that produced its payload.

use crate::ConcurrentCache;
use bytes::Bytes;
use cache_ds::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one logged operation did and what it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A lookup; `Some(v)` is the decoded unique value of the payload it
    /// returned, `None` a miss. A hit whose payload decoded to the wrong key
    /// (or did not decode) is recorded as `Some(u64::MAX)`, a value no insert
    /// ever writes, so the checker flags it unconditionally.
    Get(Option<u64>),
    /// An insert of the globally-unique value.
    Insert(u64),
    /// A remove; the flag is the cache's "was present" return.
    Remove(bool),
}

/// One operation in the recorded history.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Worker thread that issued the operation.
    pub thread: u32,
    /// Key operated on.
    pub key: u64,
    /// Operation and observed result.
    pub kind: OpKind,
    /// Global logical time drawn immediately before the cache call.
    pub start: u64,
    /// Global logical time drawn immediately after the cache call returned.
    pub end: u64,
}

/// Parameters of a logged torture run. Smaller than
/// [`crate::harness::TortureConfig`] by design: the witness search is
/// super-linear in per-key history length.
#[derive(Debug, Clone, Copy)]
pub struct LoggedTortureConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Distinct keys, all shared by all threads.
    pub keys: u64,
    /// Payload size in bytes (min 16; payloads encode key + unique value).
    pub value_size: usize,
    /// Seed for the per-thread op streams.
    pub seed: u64,
    /// Zipf skew of the key popularity (0.0 = uniform). The thread-sweep
    /// benchmark replays skewed workloads, so the checker gate exercises
    /// the same shape: hot keys maximize cross-thread interleaving on one
    /// key, which is where stale reads would surface.
    pub alpha: f64,
    /// When set, insert values are per-key *versions* drawn from shared
    /// atomic counters (1, 2, 3, … per key, across all threads) instead of
    /// thread-tagged unique values. Per-key histories then carry enough
    /// order for `cache-check`'s monotonic rule: once a version's insert
    /// provably completed before another's began, a later get may never
    /// step back across that pair.
    pub monotonic_versions: bool,
}

impl Default for LoggedTortureConfig {
    fn default() -> Self {
        LoggedTortureConfig {
            threads: 4,
            ops_per_thread: 2_000,
            keys: 64,
            value_size: 32,
            seed: 0x10C4_10C4,
            alpha: 0.0,
            monotonic_versions: false,
        }
    }
}

/// Payloads encode `(key, unique value)` exactly like the torture harness
/// encodes `(key, version)`.
fn encode(key: u64, value: u64, size: usize) -> Bytes {
    let size = size.max(16);
    let mut v = vec![0u8; size];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&value.to_le_bytes());
    Bytes::from(v)
}

fn decode(b: &Bytes) -> Option<(u64, u64)> {
    if b.len() < 16 {
        return None;
    }
    let key = u64::from_le_bytes(b[..8].try_into().ok()?);
    let value = u64::from_le_bytes(b[8..16].try_into().ok()?);
    Some((key, value))
}

/// Runs a logged torture interleaving and returns the merged history,
/// sorted by `start` time.
///
/// Operation mix: 50 % gets, 40 % inserts, 10 % removes, all on keys shared
/// by every thread. Each thread's op stream is a pure function of
/// `(cfg.seed, thread index)`; the interleaving — and therefore the recorded
/// intervals — is whatever the scheduler produces.
// ORDERING: the interval clock ticks are SeqCst *on purpose* — the
// linearizability checker (cache-check) relies on the recorded start/end
// stamps forming one total order consistent with real time across all
// threads; Acquire/Release alone would not give unrelated ticks a single
// global order. Do not downgrade.
// ORDERING: the per-key version counters (monotonic mode) are Relaxed —
// the checker only needs each key's versions to be distinct and to reflect
// *some* total draw order per key, which a single atomic fetch_add gives
// regardless of fences; real-time reasoning comes from the SeqCst clock.
pub fn run_logged_torture(
    cache: Arc<dyn ConcurrentCache>,
    cfg: &LoggedTortureConfig,
) -> Vec<OpRecord> {
    let clock = AtomicU64::new(0);
    // Zipf CDF over ranks 1..=keys; alpha 0.0 degenerates to uniform.
    let zipf = crate::harness::cache_trace_zipf(cfg.keys.max(1), cfg.alpha);
    // Per-key version counters for monotonic mode (allocated either way;
    // `keys` is small by design — the witness search is super-linear).
    let versions: Vec<AtomicU64> = (0..cfg.keys.max(1) as usize + 1)
        .map(|_| AtomicU64::new(0))
        .collect();
    let mut logs: Vec<Vec<OpRecord>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let cache = Arc::clone(&cache);
            let clock = &clock;
            let zipf = &zipf;
            let versions = &versions;
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut rng =
                    SplitMix64::new(cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut log = Vec::with_capacity(cfg.ops_per_thread);
                // Globally-unique values: thread index in the high bits. The
                // torture harness's per-thread versions collide across
                // threads; a witness search needs to know exactly which
                // insert produced a payload. (Monotonic mode draws per-key
                // versions from the shared counters instead.)
                let mut next_value = (t as u64) << 48;
                for _ in 0..cfg.ops_per_thread {
                    let key = crate::harness::sample_zipf(zipf, &mut rng);
                    let roll = rng.next_below(10);
                    let start = clock.fetch_add(1, Ordering::SeqCst);
                    let kind = match roll {
                        0..=4 => {
                            let observed = cache.get(key).map(|payload| match decode(&payload) {
                                Some((k, v)) if k == key => v,
                                // Wrong-key or torn payload: a value no
                                // insert ever wrote, flagged unconditionally.
                                _ => u64::MAX,
                            });
                            OpKind::Get(observed)
                        }
                        5..=8 => {
                            let value = if cfg.monotonic_versions {
                                versions[key as usize].fetch_add(1, Ordering::Relaxed) + 1
                            } else {
                                next_value += 1;
                                next_value
                            };
                            cache.insert(key, encode(key, value, cfg.value_size));
                            OpKind::Insert(value)
                        }
                        _ => OpKind::Remove(cache.remove(key)),
                    };
                    let end = clock.fetch_add(1, Ordering::SeqCst);
                    log.push(OpRecord {
                        thread: t as u32,
                        key,
                        kind,
                        start,
                        end,
                    });
                }
                log
            }));
        }
        for h in handles {
            // Invariant: workers only touch the cache and their own log; a
            // panic means the cache under test blew up — propagate loudly.
            logs.push(h.join().expect("logged torture worker panicked"));
        }
    });
    let mut merged: Vec<OpRecord> = logs.into_iter().flatten().collect();
    merged.sort_by_key(|r| r.start);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3fifo::ConcurrentS3Fifo;

    #[test]
    fn payload_roundtrip() {
        let p = encode(7, (3u64 << 48) | 9, 32);
        assert_eq!(decode(&p), Some((7, (3 << 48) | 9)));
        assert_eq!(decode(&Bytes::from_static(b"tiny")), None);
    }

    #[test]
    fn history_is_complete_and_interval_ordered() {
        let cfg = LoggedTortureConfig {
            threads: 3,
            ops_per_thread: 500,
            ..LoggedTortureConfig::default()
        };
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(128));
        let log = run_logged_torture(cache, &cfg);
        assert_eq!(log.len(), 3 * 500);
        // Timestamps are unique and every interval is well-formed.
        let mut seen = std::collections::HashSet::new();
        for r in &log {
            assert!(r.start < r.end, "inverted interval {r:?}");
            assert!(seen.insert(r.start) && seen.insert(r.end));
        }
        // Merged log is sorted by start.
        assert!(log.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn monotonic_mode_versions_are_per_key_unique() {
        let cfg = LoggedTortureConfig {
            threads: 4,
            ops_per_thread: 1000,
            monotonic_versions: true,
            ..LoggedTortureConfig::default()
        };
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(128));
        let log = run_logged_torture(cache, &cfg);
        // Versions are unique per key and densely drawn from 1..=count.
        let mut per_key: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for r in &log {
            if let OpKind::Insert(v) = r.kind {
                per_key.entry(r.key).or_default().push(v);
            }
        }
        assert!(!per_key.is_empty());
        for (key, mut versions) in per_key {
            versions.sort_unstable();
            let n = versions.len() as u64;
            versions.dedup();
            assert_eq!(versions.len() as u64, n, "key {key}: duplicate versions");
            assert_eq!(versions.first(), Some(&1), "key {key}: versions not dense");
            assert_eq!(versions.last(), Some(&n), "key {key}: versions not dense");
        }
    }

    #[test]
    fn zipf_alpha_skews_key_popularity() {
        let run = |alpha: f64| {
            let cfg = LoggedTortureConfig {
                threads: 2,
                ops_per_thread: 2000,
                alpha,
                ..LoggedTortureConfig::default()
            };
            let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(128));
            run_logged_torture(cache, &cfg)
        };
        let count_rank1 = |log: &[OpRecord]| log.iter().filter(|r| r.key == 1).count();
        let uniform = count_rank1(&run(0.0));
        let skewed = count_rank1(&run(1.0));
        // Under Zipf(1.0) over 64 keys, rank 1 draws ~21% of requests vs
        // ~1.6% uniform.
        assert!(
            skewed > uniform * 4,
            "alpha had no effect: skewed {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn insert_values_are_globally_unique() {
        let cfg = LoggedTortureConfig {
            threads: 4,
            ops_per_thread: 1000,
            ..LoggedTortureConfig::default()
        };
        let cache: Arc<dyn ConcurrentCache> = Arc::new(ConcurrentS3Fifo::new(128));
        let log = run_logged_torture(cache, &cfg);
        let mut values = std::collections::HashSet::new();
        for r in &log {
            if let OpKind::Insert(v) = r.kind {
                assert!(values.insert(v), "duplicate insert value {v}");
            }
        }
        assert!(!values.is_empty());
    }
}

//! Lock-free-read concurrent S3-FIFO.
//!
//! The hit path performs one sharded read-lock acquisition (uncontended in
//! the common case because reads never mutate the shard) and one relaxed
//! atomic store of the entry's two-bit counter — no queue manipulation,
//! which is precisely the property §5.3 credits for S3-FIFO's 6× throughput
//! over optimized LRU at 16 threads.
//!
//! Misses push into the small FIFO ring and evict via lock-free pops, with
//! the same structure as Algorithm 1: evictions start only when the whole
//! cache is full, draining `S` when it is at or above its 10 % target and
//! `M` otherwise. The queues store `Arc<Entry>` handles; an entry popped
//! from a ring checks that it is still *current* in the index (an overwrite
//! may have replaced it) before acting.
//!
//! Consistency invariant: every current index entry is reachable from
//! exactly one ring. If a ring push fails under extreme contention the
//! entry is removed from the index rather than leaked.

use crate::{shard_of, ConcurrentCache, SHARDS};
use bytes::Bytes;
use cache_ds::{GhostTable, MpmcRing};
use cache_obs::Scope;
use parking_lot::{Mutex, RwLock};
use cache_ds::IdMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum capped frequency (two bits).
const MAX_FREQ: u8 = 3;

/// Per-shard operation counters, bumped with relaxed atomics so the hit
/// path stays a read-lock plus two relaxed stores.
#[derive(Debug, Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one shard's counters (or, via
/// [`ConcurrentS3Fifo::aggregate_stats`], of all shards summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Shard index ([`SHARDS`] for the aggregate).
    pub shard: usize,
    /// Lookups that found a current entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Inserts routed to this shard.
    pub inserts: u64,
    /// Evictions of objects homed in this shard (small-queue demotions to
    /// the ghost and main-queue evictions both count).
    pub evictions: u64,
}

impl ShardStatsSnapshot {
    /// Hit ratio of the shard (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: u64,
    value: Bytes,
    freq: AtomicU8,
}

/// Concurrent S3-FIFO cache.
pub struct ConcurrentS3Fifo {
    shards: Vec<RwLock<IdMap<Arc<Entry>>>>,
    small: MpmcRing<Arc<Entry>>,
    main: MpmcRing<Arc<Entry>>,
    ghosts: Vec<Mutex<GhostTable>>,
    counters: Vec<ShardCounters>,
    s_count: AtomicUsize,
    m_count: AtomicUsize,
    capacity: usize,
    s_capacity: usize,
}

impl ConcurrentS3Fifo {
    /// Creates a cache holding up to `capacity` entries, 10 % of which are
    /// the small queue's target share.
    ///
    /// # Panics
    ///
    /// Panics when `capacity < 10`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 10, "capacity must be at least 10 entries");
        let s_capacity = (capacity / 10).max(1);
        let m_capacity = capacity - s_capacity;
        ConcurrentS3Fifo {
            shards: (0..SHARDS).map(|_| RwLock::new(IdMap::default())).collect(),
            // Either queue can transiently hold the whole cache (S does on
            // pure-scan workloads, exactly as in the single-threaded
            // algorithm), so both rings are sized for it.
            small: MpmcRing::new(capacity * 2 + 64),
            main: MpmcRing::new(capacity * 2 + 64),
            ghosts: (0..SHARDS)
                .map(|_| Mutex::new(GhostTable::new((m_capacity / SHARDS).max(8))))
                .collect(),
            counters: (0..SHARDS).map(|_| ShardCounters::default()).collect(),
            s_count: AtomicUsize::new(0),
            m_count: AtomicUsize::new(0),
            capacity,
            s_capacity,
        }
    }

    /// Point-in-time counters of one shard.
    // ORDERING: Relaxed counter loads — statistics are advisory during a
    // run and exact only at quiescence (documented on aggregate_stats).
    fn snapshot_shard(&self, shard: usize) -> ShardStatsSnapshot {
        let c = &self.counters[shard];
        ShardStatsSnapshot {
            shard,
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            inserts: c.inserts.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
        }
    }

    /// Per-shard operation counters, one snapshot per shard in index order.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        (0..SHARDS).map(|s| self.snapshot_shard(s)).collect()
    }

    /// All shards summed; `shard` is set to [`SHARDS`] to mark the
    /// aggregate. Concurrent updates may be mid-flight, so the aggregate is
    /// a consistent *lower bound* during a run and exact at quiescence.
    pub fn aggregate_stats(&self) -> ShardStatsSnapshot {
        let mut total = ShardStatsSnapshot {
            shard: SHARDS,
            ..ShardStatsSnapshot::default()
        };
        for s in 0..SHARDS {
            let snap = self.snapshot_shard(s);
            total.hits += snap.hits;
            total.misses += snap.misses;
            total.inserts += snap.inserts;
            total.evictions += snap.evictions;
        }
        total
    }

    /// Publishes the aggregate and per-shard counters into a metrics scope
    /// as gauges (`hits`, `misses`, `inserts`, `evictions`, plus
    /// `shard-NN.*` for any shard that saw traffic).
    pub fn export_obs(&self, scope: &Scope) {
        let total = self.aggregate_stats();
        scope.gauge("hits").set(total.hits as i64);
        scope.gauge("misses").set(total.misses as i64);
        scope.gauge("inserts").set(total.inserts as i64);
        scope.gauge("evictions").set(total.evictions as i64);
        for snap in self.shard_stats() {
            if snap.hits + snap.misses + snap.inserts + snap.evictions == 0 {
                continue; // idle shard: keep the dump small
            }
            let shard_scope = scope.scope(format!("shard-{:02}", snap.shard));
            shard_scope.gauge("hits").set(snap.hits as i64);
            shard_scope.gauge("misses").set(snap.misses as i64);
            shard_scope.gauge("inserts").set(snap.inserts as i64);
            shard_scope.gauge("evictions").set(snap.evictions as i64);
        }
    }

    /// Diagnostic snapshot: (index len, s_count, m_count, small ring len,
    /// main ring len).
    // ORDERING: Relaxed — diagnostic reads, exact only at quiescence.
    pub fn debug_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.len(),
            self.s_count.load(Ordering::Relaxed),
            self.m_count.load(Ordering::Relaxed),
            self.small.len(),
            self.main.len(),
        )
    }

    // ORDERING: Relaxed — occupancy is a heuristic trigger for eviction;
    // over/undershoot by a few entries is tolerated by design (capacity is
    // enforced with slack, see make_room).
    #[inline]
    fn total(&self) -> usize {
        self.s_count.load(Ordering::Relaxed) + self.m_count.load(Ordering::Relaxed)
    }

    fn is_current(&self, entry: &Arc<Entry>) -> bool {
        let shard = &self.shards[shard_of(entry.key)];
        shard
            .read()
            .get(&entry.key)
            .map(|cur| Arc::ptr_eq(cur, entry))
            .unwrap_or(false)
    }

    fn remove_if_current(&self, entry: &Arc<Entry>) -> bool {
        let shard = &self.shards[shard_of(entry.key)];
        let mut guard = shard.write();
        if let Some(cur) = guard.get(&entry.key) {
            if Arc::ptr_eq(cur, entry) {
                guard.remove(&entry.key);
                return true;
            }
        }
        false
    }

    fn ghost_insert(&self, key: u64) {
        self.ghosts[shard_of(key)].lock().insert(key);
    }

    fn ghost_take(&self, key: u64) -> bool {
        self.ghosts[shard_of(key)].lock().remove(key)
    }

    /// Pushes an entry into the main ring, accounting for it; on ring
    /// overflow the entry is dropped from the index (no leak).
    // ORDERING: Relaxed m_count add/undo — the count is advisory (see
    // total); the ring itself synchronizes entry handoff.
    fn push_main(&self, entry: Arc<Entry>) {
        self.m_count.fetch_add(1, Ordering::Relaxed);
        if let Err(back) = self.main.push(entry) {
            self.m_count.fetch_sub(1, Ordering::Relaxed);
            self.remove_if_current(&back);
        }
    }

    /// Evicts (or promotes) one object from the small queue. Returns true
    /// when it made progress (popped anything).
    // ORDERING: Relaxed counters and freq bits — freq is a promotion
    // heuristic (a lost update costs at most one wrong promotion); entry
    // visibility is carried by the ring protocol and the shard lock.
    fn evict_small(&self) -> bool {
        let mut progress = false;
        // Bounded walk: promotions and stale handles keep the loop going;
        // one ghost eviction ends it.
        for _ in 0..self.capacity * 2 + 64 {
            let Some(entry) = self.small.pop() else {
                return progress;
            };
            progress = true;
            self.s_count.fetch_sub(1, Ordering::Relaxed);
            if !self.is_current(&entry) {
                // Stale handle (overwritten or deleted); space already freed.
                continue;
            }
            if entry.freq.load(Ordering::Relaxed) > 1 {
                // Accessed more than once: promote to M with cleared bits.
                entry.freq.store(0, Ordering::Relaxed);
                self.push_main(entry);
                continue;
            }
            // Ghost-insert only after the removal confirms this handle is
            // still current: ghosting first lets a racing overwrite leave a
            // *live* key in the ghost table, so its next insert would be
            // mis-classified as a ghost hit and jump straight to M. The
            // loom-lite shard model (crates/lint/src/models/shard.rs,
            // `GhostOrder::BeforeRemove`) reproduces that race and pins
            // this ordering.
            if self.remove_if_current(&entry) {
                self.ghost_insert(entry.key);
                self.counters[shard_of(entry.key)]
                    .evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        progress
    }

    /// Evicts one object from the main queue (two-bit reinsertion). Returns
    /// true when it made progress.
    // ORDERING: Relaxed, same rationale as evict_small.
    fn evict_main(&self) -> bool {
        let mut progress = false;
        for _ in 0..self.capacity * 2 + 64 {
            let Some(entry) = self.main.pop() else {
                return progress;
            };
            progress = true;
            self.m_count.fetch_sub(1, Ordering::Relaxed);
            if !self.is_current(&entry) {
                continue;
            }
            let f = entry.freq.load(Ordering::Relaxed);
            if f > 0 {
                // Reinsert with decremented frequency.
                entry.freq.store(f - 1, Ordering::Relaxed);
                self.m_count.fetch_add(1, Ordering::Relaxed);
                if let Err(back) = self.main.push(entry) {
                    self.m_count.fetch_sub(1, Ordering::Relaxed);
                    self.remove_if_current(&back);
                    return true;
                }
                continue;
            }
            if self.remove_if_current(&entry) {
                self.counters[shard_of(entry.key)]
                    .evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        progress
    }

    /// Frees space until the cache is under capacity (Algorithm 1's
    /// eviction rule). Bounded so a racing thread cannot spin forever.
    // ORDERING: Relaxed occupancy reads — stale values only mis-route one
    // iteration between the small and main queues, never corrupt state.
    fn make_room(&self) {
        for _ in 0..self.capacity + 64 {
            if self.total() < self.capacity {
                return;
            }
            let from_small = self.s_count.load(Ordering::Relaxed) >= self.s_capacity
                || self.m_count.load(Ordering::Relaxed) == 0;
            let progress = if from_small {
                self.evict_small()
            } else {
                self.evict_main()
            };
            if !progress {
                // Ring transiently empty (entries in flight on other
                // threads); give up — the next insert resumes eviction.
                return;
            }
        }
    }
}

impl ConcurrentCache for ConcurrentS3Fifo {
    fn name(&self) -> String {
        "S3-FIFO".into()
    }

    // ORDERING: Relaxed freq load/store (lazy promotion is lossy by
    // design, §3.3 — the two-bit counter tolerates racing updates) and
    // Relaxed stat counters; the shard read lock orders the value read.
    fn get(&self, key: u64) -> Option<Bytes> {
        let idx = shard_of(key);
        let shard = &self.shards[idx];
        let guard = shard.read();
        let Some(entry) = guard.get(&key) else {
            self.counters[idx].misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // Lazy promotion: a hit is one relaxed atomic bump, nothing else.
        let f = entry.freq.load(Ordering::Relaxed);
        if f < MAX_FREQ {
            entry.freq.store(f + 1, Ordering::Relaxed);
        }
        self.counters[idx].hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    // ORDERING: Relaxed s_count add/undo and stat counters — advisory
    // occupancy (see total); the shard write lock publishes the entry and
    // the ring push hands the Arc to future evictors.
    fn insert(&self, key: u64, value: Bytes) {
        let entry = Arc::new(Entry {
            key,
            value,
            freq: AtomicU8::new(0),
        });
        // Ghost membership is decided before eviction runs (the eviction
        // inserts into the ghost itself).
        self.counters[shard_of(key)]
            .inserts
            .fetch_add(1, Ordering::Relaxed);
        let ghost_hit = self.ghost_take(key);
        self.make_room();
        {
            let shard = &self.shards[shard_of(key)];
            let mut guard = shard.write();
            // An overwrite leaves the old Arc in its ring as a stale handle.
            guard.insert(key, entry.clone());
        }
        if ghost_hit {
            self.push_main(entry);
        } else {
            self.s_count.fetch_add(1, Ordering::Relaxed);
            if let Err(back) = self.small.push(entry) {
                self.s_count.fetch_sub(1, Ordering::Relaxed);
                self.remove_if_current(&back);
            }
        }
    }

    fn remove(&self, key: u64) -> bool {
        // The ring slot becomes a stale handle; its logical space is
        // reclaimed when an eviction pops it (sooner in the small queue —
        // exactly the §4.2 deletion argument).
        self.shards[shard_of(key)].write().remove(&key).is_some()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn payload() -> Bytes {
        Bytes::from_static(b"value")
    }

    #[test]
    fn get_after_insert() {
        let c = ConcurrentS3Fifo::new(100);
        c.insert(1, payload());
        assert_eq!(c.get(1), Some(payload()));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn scan_fills_and_bounds_the_cache() {
        let c = ConcurrentS3Fifo::new(100);
        for k in 0..10_000u64 {
            c.insert(k, payload());
        }
        assert!(c.len() <= 108, "len {} exceeds capacity+slack", c.len());
        assert!(c.len() >= 90, "cache underfilled: {}", c.len());
    }

    #[test]
    fn hot_keys_survive_scan() {
        let c = ConcurrentS3Fifo::new(100);
        for k in 0..5u64 {
            c.insert(k, payload());
        }
        for _ in 0..3 {
            for k in 0..5u64 {
                c.get(k);
            }
        }
        for k in 1000..2000u64 {
            c.insert(k, payload());
        }
        let survivors = (0..5u64).filter(|&k| c.get(k).is_some()).count();
        assert!(survivors >= 4, "hot keys lost: {survivors}/5");
    }

    #[test]
    fn overwrite_returns_new_value() {
        let c = ConcurrentS3Fifo::new(100);
        c.insert(1, Bytes::from_static(b"a"));
        c.insert(1, Bytes::from_static(b"b"));
        assert_eq!(c.get(1), Some(Bytes::from_static(b"b")));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ghost_readmission_goes_to_main() {
        let c = ConcurrentS3Fifo::new(50);
        for k in 0..100u64 {
            c.insert(k, payload());
        }
        let evicted = (0..100u64).rev().find(|&k| c.get(k).is_none()).unwrap();
        let m_before = c.debug_counts().2;
        c.insert(evicted, payload());
        assert!(c.debug_counts().2 >= m_before, "ghost hit should feed M");
        assert!(c.get(evicted).is_some());
    }

    // ORDERING: Relaxed hit counter — joined before the final asserts.
    #[test]
    fn concurrent_mixed_workload_is_safe_and_bounded() {
        let c = Arc::new(ConcurrentS3Fifo::new(1000));
        let hits = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            let hits = hits.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 1;
                for _ in 0..50_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let r = state >> 33;
                    // `r` even implies `r % 100` even, so derive the hot id
                    // from the shifted value to cover all 100 hot keys.
                    let key = if r % 2 == 0 {
                        (r >> 1) % 100
                    } else {
                        r % 50_000
                    };
                    match c.get(key) {
                        Some(_) => {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        None => c.insert(key, Bytes::from_static(b"v")),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(hits.load(Ordering::Relaxed) > 0);
        let (len, s, m, s_ring, m_ring) = c.debug_counts();
        assert!(
            len <= 1064,
            "len {len} exceeded capacity with slack (s={s} m={m} rings={s_ring}/{m_ring})"
        );
        // Every current entry must be reachable: quiescent ring contents
        // cover the index (rings may also hold stale handles).
        assert!(
            s_ring + m_ring >= len,
            "index ({len}) exceeds ring contents ({s_ring}+{m_ring}): leaked entries"
        );
        let hot_hits = (0..100u64).filter(|&k| c.get(k).is_some()).count();
        assert!(hot_hits > 50, "hot set not retained: {hot_hits}/100");
    }

    #[test]
    fn concurrent_overwrites_stay_consistent() {
        let c = Arc::new(ConcurrentS3Fifo::new(100));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    c.insert(i % 50, Bytes::from(vec![t as u8]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every overwrite leaves a stale ring handle that inflates the queue
        // accounting until eviction pops it, so churn evicts live freq-0 keys
        // even though only 50 distinct keys exist: the retention count is
        // scheduler-dependent (typically >= 45, observed as low as 44 on a
        // loaded single-vCPU box). Assert a bound with headroom — the test
        // guards against *catastrophic* key loss, not the exact count.
        let present = (0..50u64).filter(|&k| c.get(k).is_some()).count();
        assert!(
            present >= 35,
            "keys lost under overwrite churn: {present}/50"
        );
        // Deterministic invariants: every surviving value was written by one
        // of the four threads, and the index never exceeds the transient
        // overwrite overshoot (capacity + one in-flight entry per thread).
        for k in 0..50u64 {
            if let Some(v) = c.get(k) {
                assert!(v.len() == 1 && v[0] < 4, "torn value for key {k}: {v:?}");
            }
        }
        assert!(c.len() <= 104);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn tiny_capacity_panics() {
        ConcurrentS3Fifo::new(5);
    }

    #[test]
    fn shard_stats_aggregate_to_operation_counts() {
        let c = ConcurrentS3Fifo::new(100);
        let mut expected_hits = 0u64;
        let mut expected_misses = 0u64;
        for k in 0..200u64 {
            c.insert(k, payload());
        }
        for k in 0..300u64 {
            match c.get(k) {
                Some(_) => expected_hits += 1,
                None => expected_misses += 1,
            }
        }
        let total = c.aggregate_stats();
        assert_eq!(total.shard, SHARDS, "aggregate marker");
        assert_eq!(total.inserts, 200);
        assert_eq!(total.hits, expected_hits);
        assert_eq!(total.misses, expected_misses);
        assert!(total.evictions > 0, "200 inserts into 100 slots must evict");
        // Per-shard snapshots partition the totals.
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.len(), SHARDS);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            total.misses
        );
        assert_eq!(
            per_shard.iter().map(|s| s.inserts).sum::<u64>(),
            total.inserts
        );
        assert_eq!(
            per_shard.iter().map(|s| s.evictions).sum::<u64>(),
            total.evictions
        );
        // The mixing hash must actually spread keys around.
        let active = per_shard.iter().filter(|s| s.inserts > 0).count();
        assert!(active > SHARDS / 2, "only {active} shards saw inserts");
    }

    #[test]
    fn shard_stats_survive_concurrent_load() {
        let c = Arc::new(ConcurrentS3Fifo::new(1000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 1;
                for _ in 0..20_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 5000;
                    if c.get(key).is_none() {
                        c.insert(key, Bytes::from_static(b"v"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = c.aggregate_stats();
        // Every loop iteration was one get; inserts follow misses 1:1.
        assert_eq!(total.hits + total.misses, 4 * 20_000);
        assert_eq!(total.inserts, total.misses);
        assert!(total.hit_ratio() > 0.0 && total.hit_ratio() < 1.0);
    }

    #[test]
    fn export_obs_publishes_gauges() {
        use cache_obs::{MetricsRegistry, SampleValue};
        let c = ConcurrentS3Fifo::new(100);
        for k in 0..50u64 {
            c.insert(k, payload());
            c.get(k);
        }
        let registry = MetricsRegistry::new();
        c.export_obs(&registry.scope("cc.s3fifo"));
        let samples = registry.snapshot();
        let gauge = |name: &str| {
            samples
                .iter()
                .find(|m| m.name == format!("cc.s3fifo.{name}"))
                .map(|m| match m.value {
                    SampleValue::Gauge(v) => v,
                    ref other => panic!("{name}: expected gauge, got {other:?}"),
                })
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(gauge("hits"), 50);
        assert_eq!(gauge("inserts"), 50);
        // Per-shard entries exist for active shards only.
        let shard_gauges = samples
            .iter()
            .filter(|m| m.name.contains(".shard-"))
            .count();
        assert!(shard_gauges > 0, "active shards must be exported");
    }
}

//! Lock-free-read concurrent S3-FIFO.
//!
//! The hit path performs one sharded read-lock acquisition (uncontended in
//! the common case because reads never mutate the shard) and — in the
//! default *batched* mode — defers all remaining bookkeeping into a
//! thread-sticky slot of [`crate::incbuf`] instead of writing contended
//! lines directly: the per-shard hit counter is credited once per
//! [`crate::incbuf::STATS_FLUSH_THRESHOLD`] hits, and an unsaturated
//! entry's freq line is written once per
//! [`crate::incbuf::FLUSH_THRESHOLD`] hits rather than on every hit
//! (saturated entries skip frequency work entirely, exactly as the direct
//! path's `f < MAX_FREQ` check would). This amortizes the coherence
//! traffic §5.3 identifies as the residual cost of the otherwise
//! lock-free hit path. [`ConcurrentS3Fifo::direct`] builds the
//! pre-batching baseline (one relaxed freq store plus one hit-counter RMW
//! per hit) the thread-sweep benchmark compares against.
//!
//! Misses push into the small FIFO ring and evict via lock-free pops, with
//! the same structure as Algorithm 1: evictions start only when the whole
//! cache is full, draining `S` when it is at or above its 10 % target and
//! `M` otherwise. The queues store `Arc<Entry>` handles; an entry popped
//! from a ring checks that it is still *current* in the index (an overwrite
//! may have replaced it) before acting.
//!
//! Consistency invariant: every current index entry is reachable from
//! exactly one ring. If a ring push fails under extreme contention the
//! entry is removed from the index rather than leaked.
//! [`ConcurrentCache::audit_quiescent`] verifies this (plus ghost-table
//! consistency) by walking the rings and the index at quiescence.
//!
//! Shard count is an instance parameter: [`ConcurrentS3Fifo::new`] picks a
//! contention-aware default of `8 x` the machine's available parallelism
//! (power of two, clamped to `[16, 256]`) so that with `shards >> threads`
//! two threads rarely contend on one shard lock word.

use crate::incbuf::{self, IncBuffers};
use crate::profile::SyncProfile;
use crate::{AuditReport, ConcurrentCache};
use bytes::Bytes;
use cache_ds::rng::mix64;
use cache_ds::IdMap;
use cache_ds::{GhostTable, MpmcRing};
use cache_obs::Scope;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum capped frequency (two bits).
const MAX_FREQ: u8 = 3;

/// Per-shard operation counters, bumped with relaxed atomics so the hit
/// path stays a read-lock plus (at most) two relaxed stores. Padded to two
/// cache lines: without the alignment, eight shards' counters share lines
/// and every stat bump false-shares with seven neighbors.
#[derive(Debug, Default)]
#[repr(align(128))]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one shard's counters (or, via
/// [`ConcurrentS3Fifo::aggregate_stats`], of all shards summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Shard index (equal to the instance's shard count for the aggregate).
    pub shard: usize,
    /// Lookups that found a current entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Inserts routed to this shard.
    pub inserts: u64,
    /// Evictions of objects homed in this shard (small-queue demotions to
    /// the ghost and main-queue evictions both count).
    pub evictions: u64,
}

impl ShardStatsSnapshot {
    /// Hit ratio of the shard (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Construction options for [`ConcurrentS3Fifo::with_options`].
#[derive(Debug, Clone, Copy)]
pub struct S3FifoOptions {
    /// Number of index shards (rounded up to a power of two, minimum 1).
    /// `None` picks the contention-aware default
    /// ([`ConcurrentS3Fifo::contention_shards`]).
    pub shards: Option<usize>,
    /// Batch frequency increments through the per-thread slot pool
    /// (default). `false` restores the pre-batching direct-store hit path.
    pub batched: bool,
}

impl Default for S3FifoOptions {
    fn default() -> Self {
        S3FifoOptions {
            shards: None,
            batched: true,
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: u64,
    value: Bytes,
    freq: AtomicU8,
}

/// Concurrent S3-FIFO cache.
pub struct ConcurrentS3Fifo {
    shards: Vec<RwLock<IdMap<Arc<Entry>>>>,
    shard_mask: usize,
    small: MpmcRing<Arc<Entry>>,
    main: MpmcRing<Arc<Entry>>,
    ghosts: Vec<Mutex<GhostTable>>,
    counters: Vec<ShardCounters>,
    /// Present in batched mode only; `None` is the direct baseline.
    incs: Option<IncBuffers>,
    profile: SyncProfile,
    s_count: AtomicUsize,
    m_count: AtomicUsize,
    capacity: usize,
    s_capacity: usize,
}

impl ConcurrentS3Fifo {
    /// Creates a cache holding up to `capacity` entries, 10 % of which are
    /// the small queue's target share. Uses batched frequency increments
    /// and the contention-aware shard count.
    ///
    /// # Panics
    ///
    /// Panics when `capacity < 10`.
    pub fn new(capacity: usize) -> Self {
        Self::with_options(capacity, S3FifoOptions::default())
    }

    /// The pre-batching baseline: identical structure, but every hit
    /// stores the entry frequency and bumps the shard hit counter
    /// directly. The thread-sweep benchmark measures batched vs. direct.
    pub fn direct(capacity: usize) -> Self {
        Self::with_options(
            capacity,
            S3FifoOptions {
                batched: false,
                ..S3FifoOptions::default()
            },
        )
    }

    /// Contention-aware shard default: `8 x` available parallelism,
    /// rounded to a power of two and clamped to `[16, 256]`. With eight
    /// shards per thread, the probability that two concurrent operations
    /// touch the same shard lock word stays low even on skewed key
    /// distributions (the hot key pins one shard; the rest spread).
    pub fn contention_shards() -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cores * 8).next_power_of_two().clamp(16, 256)
    }

    /// Creates a cache with explicit [`S3FifoOptions`].
    ///
    /// # Panics
    ///
    /// Panics when `capacity < 10`.
    pub fn with_options(capacity: usize, opts: S3FifoOptions) -> Self {
        assert!(capacity >= 10, "capacity must be at least 10 entries");
        let shards = opts
            .shards
            .unwrap_or_else(Self::contention_shards)
            .next_power_of_two()
            .max(1);
        let s_capacity = (capacity / 10).max(1);
        let m_capacity = capacity - s_capacity;
        ConcurrentS3Fifo {
            shards: (0..shards).map(|_| RwLock::new(IdMap::default())).collect(),
            shard_mask: shards - 1,
            // Either queue can transiently hold the whole cache (S does on
            // pure-scan workloads, exactly as in the single-threaded
            // algorithm), so both rings are sized for it.
            small: MpmcRing::new(capacity * 2 + 64),
            main: MpmcRing::new(capacity * 2 + 64),
            ghosts: (0..shards)
                .map(|_| Mutex::new(GhostTable::new((m_capacity / shards).max(8))))
                .collect(),
            counters: (0..shards).map(|_| ShardCounters::default()).collect(),
            incs: opts.batched.then(|| IncBuffers::new(shards)),
            profile: SyncProfile::new(),
            s_count: AtomicUsize::new(0),
            m_count: AtomicUsize::new(0),
            capacity,
            s_capacity,
        }
    }

    /// Number of index shards this instance was built with.
    pub fn num_shards(&self) -> usize {
        self.shard_mask + 1
    }

    /// Whether this instance batches frequency increments.
    pub fn is_batched(&self) -> bool {
        self.incs.is_some()
    }

    #[inline]
    fn shard_idx(&self, key: u64) -> usize {
        (mix64(key) as usize) & self.shard_mask
    }

    /// Applies `count` deferred frequency hits for `key`, bumping the
    /// entry's capped frequency. A key evicted (or overwritten) since the
    /// hits were recorded silently loses its bump — deferral affects
    /// eviction quality only, never get/set results.
    // ORDERING: Relaxed freq load/store — the two-bit counter is a lossy
    // promotion heuristic exactly as on the direct path; the shard read
    // lock orders the entry lookup.
    fn apply_freq(&self, key: u64, count: u32) {
        let idx = self.shard_idx(key);
        // Lock word (2): entry-class writes for the contention model; the
        // freq store below adds one more when taken.
        self.profile.entry_write(2);
        let guard = self.shards[idx].read();
        if let Some(entry) = guard.get(&key) {
            let f = entry.freq.load(Ordering::Relaxed);
            let bumped = (u32::from(f) + count).min(u32::from(MAX_FREQ)) as u8;
            if bumped != f {
                entry.freq.store(bumped, Ordering::Relaxed);
                self.profile.entry_write(1);
            }
        }
    }

    /// Credits `count` deferred hits to `shard`'s hit counter. Lock-free:
    /// the counter is reachable from the shard index alone.
    // ORDERING: Relaxed counter add — statistics are advisory during a
    // run and exact only at quiescence (after drain_pending).
    fn credit_hits(&self, shard: usize, count: u32) {
        self.counters[shard]
            .hits
            .fetch_add(u64::from(count), Ordering::Relaxed);
        self.profile.entry_write(1);
    }

    /// Flushes every pending batched increment (frequency bumps and stat
    /// credits). Cheap no-op in direct mode. Called before stats
    /// snapshots and audits so counters and frequency state are exact at
    /// quiescence.
    pub fn drain_pending(&self) {
        if let Some(incs) = &self.incs {
            let mut apply_freq = |k: u64, c: u32| self.apply_freq(k, c);
            let mut apply_stat = |s: usize, c: u32| self.credit_hits(s, c);
            incs.drain(&mut apply_freq, &mut apply_stat);
        }
    }

    /// Point-in-time counters of one shard.
    // ORDERING: Relaxed counter loads — statistics are advisory during a
    // run and exact only at quiescence (documented on aggregate_stats).
    fn snapshot_shard(&self, shard: usize) -> ShardStatsSnapshot {
        let c = &self.counters[shard];
        ShardStatsSnapshot {
            shard,
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            inserts: c.inserts.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
        }
    }

    /// Per-shard operation counters, one snapshot per shard in index
    /// order. Drains pending batched increments first.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.drain_pending();
        (0..self.num_shards())
            .map(|s| self.snapshot_shard(s))
            .collect()
    }

    /// All shards summed; `shard` is set to [`Self::num_shards`] to mark
    /// the aggregate. Concurrent updates may be mid-flight, so the
    /// aggregate is a consistent *lower bound* during a run and exact at
    /// quiescence (pending batched increments are drained first).
    pub fn aggregate_stats(&self) -> ShardStatsSnapshot {
        self.drain_pending();
        let mut total = ShardStatsSnapshot {
            shard: self.num_shards(),
            ..ShardStatsSnapshot::default()
        };
        for s in 0..self.num_shards() {
            let snap = self.snapshot_shard(s);
            total.hits += snap.hits;
            total.misses += snap.misses;
            total.inserts += snap.inserts;
            total.evictions += snap.evictions;
        }
        total
    }

    /// Publishes the aggregate and per-shard counters into a metrics scope
    /// as gauges (`hits`, `misses`, `inserts`, `evictions`, plus
    /// `shard-NN.*` for any shard that saw traffic).
    pub fn export_obs(&self, scope: &Scope) {
        let total = self.aggregate_stats();
        scope.gauge("hits").set(total.hits as i64);
        scope.gauge("misses").set(total.misses as i64);
        scope.gauge("inserts").set(total.inserts as i64);
        scope.gauge("evictions").set(total.evictions as i64);
        for snap in self.shard_stats() {
            if snap.hits + snap.misses + snap.inserts + snap.evictions == 0 {
                continue; // idle shard: keep the dump small
            }
            let shard_scope = scope.scope(format!("shard-{:02}", snap.shard));
            shard_scope.gauge("hits").set(snap.hits as i64);
            shard_scope.gauge("misses").set(snap.misses as i64);
            shard_scope.gauge("inserts").set(snap.inserts as i64);
            shard_scope.gauge("evictions").set(snap.evictions as i64);
        }
    }

    /// Diagnostic snapshot: (index len, s_count, m_count, small ring len,
    /// main ring len).
    // ORDERING: Relaxed — diagnostic reads, exact only at quiescence.
    pub fn debug_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.len(),
            self.s_count.load(Ordering::Relaxed),
            self.m_count.load(Ordering::Relaxed),
            self.small.len(),
            self.main.len(),
        )
    }

    // ORDERING: Relaxed — occupancy is a heuristic trigger for eviction;
    // over/undershoot by a few entries is tolerated by design (capacity is
    // enforced with slack, see make_room).
    #[inline]
    fn total(&self) -> usize {
        self.s_count.load(Ordering::Relaxed) + self.m_count.load(Ordering::Relaxed)
    }

    fn is_current(&self, entry: &Arc<Entry>) -> bool {
        self.profile.entry_write(2); // shard lock word acquire/release
        let shard = &self.shards[self.shard_idx(entry.key)];
        shard
            .read()
            .get(&entry.key)
            .map(|cur| Arc::ptr_eq(cur, entry))
            .unwrap_or(false)
    }

    fn remove_if_current(&self, entry: &Arc<Entry>) -> bool {
        self.profile.entry_write(2); // shard lock word acquire/release
        let shard = &self.shards[self.shard_idx(entry.key)];
        let mut guard = shard.write();
        if let Some(cur) = guard.get(&entry.key) {
            if Arc::ptr_eq(cur, entry) {
                guard.remove(&entry.key);
                return true;
            }
        }
        false
    }

    fn ghost_insert(&self, key: u64) {
        self.profile.entry_write(2); // sharded ghost mutex word
        self.ghosts[self.shard_idx(key)].lock().insert(key);
    }

    fn ghost_take(&self, key: u64) -> bool {
        self.profile.entry_write(2); // sharded ghost mutex word
        self.ghosts[self.shard_idx(key)].lock().remove(key)
    }

    /// Pushes an entry into the main ring, accounting for it; on ring
    /// overflow the entry is dropped from the index (no leak).
    // ORDERING: Relaxed m_count add/undo — the count is advisory (see
    // total); the ring itself synchronizes entry handoff.
    fn push_main(&self, entry: Arc<Entry>) {
        // m_count (1) + ring head claim and cell publish (2): shared-line
        // writes every thread pays on this path.
        self.profile.shared_write(3);
        self.m_count.fetch_add(1, Ordering::Relaxed);
        if let Err(back) = self.main.push(entry) {
            self.m_count.fetch_sub(1, Ordering::Relaxed);
            self.remove_if_current(&back);
        }
    }

    /// Evicts (or promotes) one object from the small queue. Returns true
    /// when it made progress (popped anything).
    // ORDERING: Relaxed counters and freq bits — freq is a promotion
    // heuristic (a lost update costs at most one wrong promotion); entry
    // visibility is carried by the ring protocol and the shard lock.
    fn evict_small(&self) -> bool {
        let mut progress = false;
        // Bounded walk: promotions and stale handles keep the loop going;
        // one ghost eviction ends it.
        for _ in 0..self.capacity * 2 + 64 {
            // Ring tail claim + cell consume (2) + s_count (1).
            self.profile.shared_write(3);
            let Some(entry) = self.small.pop() else {
                return progress;
            };
            progress = true;
            self.s_count.fetch_sub(1, Ordering::Relaxed);
            if !self.is_current(&entry) {
                // Stale handle (overwritten or deleted); space already freed.
                continue;
            }
            if entry.freq.load(Ordering::Relaxed) > 1 {
                // Accessed more than once: promote to M with cleared bits.
                entry.freq.store(0, Ordering::Relaxed);
                self.profile.entry_write(1);
                self.push_main(entry);
                continue;
            }
            // Ghost-insert only after the removal confirms this handle is
            // still current: ghosting first lets a racing overwrite leave a
            // *live* key in the ghost table, so its next insert would be
            // mis-classified as a ghost hit and jump straight to M. The
            // loom-lite shard model (crates/lint/src/models/shard.rs,
            // `GhostOrder::BeforeRemove`) reproduces that race and pins
            // this ordering.
            if self.remove_if_current(&entry) {
                self.ghost_insert(entry.key);
                // A racing insert can land between the removal above and
                // the ghost insert: its own ghost_take ran too early to see
                // this entry, so without the undo below the key would stay
                // live *and* ghosted until its next insert — forever, for a
                // key whose churn just stopped. Re-checking residency keeps
                // the serial invariant (live ∩ ghost = ∅) up to inserts
                // that are still in flight at the moment of the check.
                self.profile.entry_write(2); // shard lock word
                if self.shards[self.shard_idx(entry.key)]
                    .read()
                    .contains_key(&entry.key)
                {
                    self.ghost_take(entry.key);
                }
                self.profile.entry_write(1);
                self.counters[self.shard_idx(entry.key)]
                    .evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        progress
    }

    /// Evicts one object from the main queue (two-bit reinsertion). Returns
    /// true when it made progress.
    // ORDERING: Relaxed, same rationale as evict_small.
    fn evict_main(&self) -> bool {
        let mut progress = false;
        for _ in 0..self.capacity * 2 + 64 {
            // Ring tail claim + cell consume (2) + m_count (1).
            self.profile.shared_write(3);
            let Some(entry) = self.main.pop() else {
                return progress;
            };
            progress = true;
            self.m_count.fetch_sub(1, Ordering::Relaxed);
            if !self.is_current(&entry) {
                continue;
            }
            let f = entry.freq.load(Ordering::Relaxed);
            if f > 0 {
                // Reinsert with decremented frequency.
                entry.freq.store(f - 1, Ordering::Relaxed);
                self.profile.entry_write(1);
                self.profile.shared_write(3);
                self.m_count.fetch_add(1, Ordering::Relaxed);
                if let Err(back) = self.main.push(entry) {
                    self.m_count.fetch_sub(1, Ordering::Relaxed);
                    self.remove_if_current(&back);
                    return true;
                }
                continue;
            }
            if self.remove_if_current(&entry) {
                self.profile.entry_write(1);
                self.counters[self.shard_idx(entry.key)]
                    .evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        progress
    }

    /// Frees space until the cache is under capacity (Algorithm 1's
    /// eviction rule). Bounded so a racing thread cannot spin forever.
    // ORDERING: Relaxed occupancy reads — stale values only mis-route one
    // iteration between the small and main queues, never corrupt state.
    fn make_room(&self) {
        for _ in 0..self.capacity + 64 {
            if self.total() < self.capacity {
                return;
            }
            let from_small = self.s_count.load(Ordering::Relaxed) >= self.s_capacity
                || self.m_count.load(Ordering::Relaxed) == 0;
            let progress = if from_small {
                self.evict_small()
            } else {
                self.evict_main()
            };
            if !progress {
                // Ring transiently empty (entries in flight on other
                // threads); give up — the next insert resumes eviction.
                return;
            }
        }
    }
}

impl ConcurrentCache for ConcurrentS3Fifo {
    fn name(&self) -> String {
        if self.is_batched() {
            "S3-FIFO".into()
        } else {
            "S3-FIFO-direct".into()
        }
    }

    // ORDERING: Relaxed freq load/store (lazy promotion is lossy by
    // design, §3.3 — the two-bit counter tolerates racing updates) and
    // Relaxed stat counters; the shard read lock orders the value read.
    // Batched mode records the hit into the slot pool *after* dropping
    // the shard guard: the freq-flush callback re-acquires shard read
    // locks for the flushed keys, and parking_lot read locks are not
    // recursion-safe when a writer is queued.
    // LOCK-ORDER: disjoint; one shard read lock at a time — the direct
    // and batched branches each take exactly one block-scoped guard, and
    // the batched flush only re-acquires after its guard dropped.
    fn get(&self, key: u64) -> Option<Bytes> {
        let idx = self.shard_idx(key);
        self.profile.entry_write(2); // shard lock word acquire/release
        let Some(incs) = &self.incs else {
            // Direct baseline: freq store + hit counter under the guard,
            // exactly the pre-batching hit path.
            let guard = self.shards[idx].read();
            let Some(entry) = guard.get(&key) else {
                self.counters[idx].misses.fetch_add(1, Ordering::Relaxed);
                self.profile.entry_write(1);
                return None;
            };
            // Lazy promotion: a hit is one relaxed atomic bump, nothing else.
            let f = entry.freq.load(Ordering::Relaxed);
            if f < MAX_FREQ {
                entry.freq.store(f + 1, Ordering::Relaxed);
                self.profile.entry_write(1);
            }
            self.counters[idx].hits.fetch_add(1, Ordering::Relaxed);
            self.profile.entry_write(1);
            return Some(entry.value.clone());
        };
        let hit = {
            let guard = self.shards[idx].read();
            guard
                .get(&key)
                .map(|entry| (entry.value.clone(), entry.freq.load(Ordering::Relaxed)))
        };
        let Some((value, f)) = hit else {
            self.counters[idx].misses.fetch_add(1, Ordering::Relaxed);
            self.profile.entry_write(1);
            return None;
        };
        // A saturated entry needs no frequency work at all — the direct
        // path's `f < MAX_FREQ` check would skip the store at the same
        // moment — so only unsaturated hits enter the pair table.
        // Slot-pool writes are thread-sticky (hints partition the pool),
        // so they are not counted as contended lines; only the amortized
        // flushes report entry-class writes through the callbacks.
        let bump_freq = f < MAX_FREQ;
        let mut apply_freq = |k: u64, c: u32| self.apply_freq(k, c);
        let mut apply_stat = |s: usize, c: u32| self.credit_hits(s, c);
        if !incs.record(
            incbuf::slot_hint(),
            key,
            idx,
            bump_freq,
            &mut apply_freq,
            &mut apply_stat,
        ) {
            // All probed slots claimed (rare): fall back to direct
            // bookkeeping so the hit is never dropped.
            self.credit_hits(idx, 1);
            if bump_freq {
                self.apply_freq(key, 1);
            }
        }
        Some(value)
    }

    // ORDERING: Relaxed s_count add/undo and stat counters — advisory
    // occupancy (see total); the shard write lock publishes the entry and
    // the ring push hands the Arc to future evictors.
    fn insert(&self, key: u64, value: Bytes) {
        let entry = Arc::new(Entry {
            key,
            value,
            freq: AtomicU8::new(0),
        });
        // Ghost membership is decided before eviction runs (the eviction
        // inserts into the ghost itself).
        self.counters[self.shard_idx(key)]
            .inserts
            .fetch_add(1, Ordering::Relaxed);
        self.profile.entry_write(1);
        let ghost_hit = self.ghost_take(key);
        self.make_room();
        {
            self.profile.entry_write(2); // shard lock word acquire/release
            let shard = &self.shards[self.shard_idx(key)];
            let mut guard = shard.write();
            // An overwrite leaves the old Arc in its ring as a stale handle.
            guard.insert(key, entry.clone());
        }
        if ghost_hit {
            self.push_main(entry);
        } else {
            // s_count (1) + ring head claim and cell publish (2).
            self.profile.shared_write(3);
            self.s_count.fetch_add(1, Ordering::Relaxed);
            if let Err(back) = self.small.push(entry) {
                self.s_count.fetch_sub(1, Ordering::Relaxed);
                self.remove_if_current(&back);
            }
        }
    }

    fn remove(&self, key: u64) -> bool {
        // The ring slot becomes a stale handle; its logical space is
        // reclaimed when an eviction pops it (sooner in the small queue —
        // exactly the §4.2 deletion argument).
        self.profile.entry_write(2); // shard lock word acquire/release
        self.shards[self.shard_idx(key)]
            .write()
            .remove(&key)
            .is_some()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sync_profile(&self) -> &SyncProfile {
        &self.profile
    }

    // LOCK-ORDER: shards -> ghosts; the ghost-liveness probe reads each
    // ghost mutex under the shard read guard. Ghost mutexes are leaves —
    // no path acquires a shard lock while holding one — and the ring walk
    // holds no lock at all.
    // ORDERING: Relaxed ring-length reads via pop/push — the audit
    // contract requires quiescence, so no entry is in flight.
    fn audit_quiescent(&self) -> AuditReport {
        // Settle pending batched increments so frequency state and the
        // hit counters are final before the walk.
        self.drain_pending();
        let mut report = AuditReport::default();
        // Walk both rings destructively and restore in pop order — a FIFO
        // ring drained and refilled in order is unchanged. Count how many
        // *current* ring handles reference each key.
        let mut current_refs: IdMap<usize> = IdMap::default();
        for ring in [&self.small, &self.main] {
            let mut drained = Vec::new();
            while let Some(entry) = ring.pop() {
                drained.push(entry);
            }
            for entry in drained {
                if self.is_current(&entry) {
                    *current_refs.entry(entry.key).or_insert(0) += 1;
                }
                // Refill cannot overflow: we popped from this same ring
                // and nothing else is running.
                debug_assert!(ring.capacity() > ring.len());
                let _ = ring.push(entry);
            }
        }
        report.duplicates = current_refs.values().filter(|&&n| n > 1).count();
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.read();
            report.resident += guard.len();
            for key in guard.keys() {
                if !current_refs.contains_key(key) {
                    // Current index entry unreachable from any ring: its
                    // space can never be reclaimed.
                    report.stale_handles += 1;
                }
                if self.ghosts[s].lock().contains(*key) {
                    report.live_ghosted += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn payload() -> Bytes {
        Bytes::from_static(b"value")
    }

    /// Both increment modes, so every behavioral test pins batched and
    /// direct alike.
    fn both_modes(capacity: usize) -> Vec<ConcurrentS3Fifo> {
        vec![
            ConcurrentS3Fifo::new(capacity),
            ConcurrentS3Fifo::direct(capacity),
        ]
    }

    #[test]
    fn get_after_insert() {
        for c in both_modes(100) {
            c.insert(1, payload());
            assert_eq!(c.get(1), Some(payload()), "{}", c.name());
            assert_eq!(c.get(2), None, "{}", c.name());
        }
    }

    #[test]
    fn mode_constructors_report_names() {
        assert_eq!(ConcurrentS3Fifo::new(100).name(), "S3-FIFO");
        assert_eq!(ConcurrentS3Fifo::direct(100).name(), "S3-FIFO-direct");
        assert!(ConcurrentS3Fifo::new(100).is_batched());
        assert!(!ConcurrentS3Fifo::direct(100).is_batched());
    }

    #[test]
    fn contention_shards_are_pow2_and_clamped() {
        let n = ConcurrentS3Fifo::contention_shards();
        assert!(n.is_power_of_two());
        assert!((16..=256).contains(&n));
        assert_eq!(ConcurrentS3Fifo::new(100).num_shards(), n);
        let c = ConcurrentS3Fifo::with_options(
            100,
            S3FifoOptions {
                shards: Some(5),
                batched: true,
            },
        );
        assert_eq!(c.num_shards(), 8, "shard count rounds up to a power of two");
    }

    #[test]
    fn scan_fills_and_bounds_the_cache() {
        for c in both_modes(100) {
            for k in 0..10_000u64 {
                c.insert(k, payload());
            }
            assert!(c.len() <= 108, "{}: len {} exceeds cap+slack", c.name(), c.len());
            assert!(c.len() >= 90, "{}: cache underfilled: {}", c.name(), c.len());
        }
    }

    #[test]
    fn hot_keys_survive_scan() {
        for c in both_modes(100) {
            for k in 0..5u64 {
                c.insert(k, payload());
            }
            for _ in 0..3 {
                for k in 0..5u64 {
                    c.get(k);
                }
            }
            // Batched mode defers freq bumps; settle them so the scan
            // below exercises the same promoted state as direct mode.
            c.drain_pending();
            for k in 1000..2000u64 {
                c.insert(k, payload());
            }
            let survivors = (0..5u64).filter(|&k| c.get(k).is_some()).count();
            assert!(survivors >= 4, "{}: hot keys lost: {survivors}/5", c.name());
        }
    }

    #[test]
    fn overwrite_returns_new_value() {
        for c in both_modes(100) {
            c.insert(1, Bytes::from_static(b"a"));
            c.insert(1, Bytes::from_static(b"b"));
            assert_eq!(c.get(1), Some(Bytes::from_static(b"b")), "{}", c.name());
            assert_eq!(c.len(), 1, "{}", c.name());
        }
    }

    #[test]
    fn ghost_readmission_goes_to_main() {
        for c in both_modes(50) {
            for k in 0..100u64 {
                c.insert(k, payload());
            }
            let evicted = (0..100u64).rev().find(|&k| c.get(k).is_none()).unwrap();
            let m_before = c.debug_counts().2;
            c.insert(evicted, payload());
            assert!(
                c.debug_counts().2 >= m_before,
                "{}: ghost hit should feed M",
                c.name()
            );
            assert!(c.get(evicted).is_some(), "{}", c.name());
        }
    }

    // ORDERING: Relaxed hit counter — joined before the final asserts.
    #[test]
    fn concurrent_mixed_workload_is_safe_and_bounded() {
        for batched in [true, false] {
            let c = Arc::new(ConcurrentS3Fifo::with_options(
                1000,
                S3FifoOptions {
                    shards: None,
                    batched,
                },
            ));
            let hits = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let c = c.clone();
                let hits = hits.clone();
                handles.push(std::thread::spawn(move || {
                    let mut state = t + 1;
                    for _ in 0..50_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let r = state >> 33;
                        // `r` even implies `r % 100` even, so derive the hot id
                        // from the shifted value to cover all 100 hot keys.
                        let key = if r % 2 == 0 {
                            (r >> 1) % 100
                        } else {
                            r % 50_000
                        };
                        match c.get(key) {
                            Some(_) => {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            None => c.insert(key, Bytes::from_static(b"v")),
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(hits.load(Ordering::Relaxed) > 0);
            let (len, s, m, s_ring, m_ring) = c.debug_counts();
            assert!(
                len <= 1064,
                "len {len} exceeded capacity with slack (s={s} m={m} rings={s_ring}/{m_ring})"
            );
            // Every current entry must be reachable: quiescent ring contents
            // cover the index (rings may also hold stale handles).
            assert!(
                s_ring + m_ring >= len,
                "index ({len}) exceeds ring contents ({s_ring}+{m_ring}): leaked entries"
            );
            let hot_hits = (0..100u64).filter(|&k| c.get(k).is_some()).count();
            assert!(hot_hits > 50, "hot set not retained: {hot_hits}/100");
            // Full-table audit: no duplicates, no unreachable entries, and
            // at most one legally ghosted live key per thread.
            let audit = c.audit_quiescent();
            assert!(audit.is_clean(8), "audit failed: {audit:?}");
        }
    }

    #[test]
    fn concurrent_overwrites_stay_consistent() {
        let c = Arc::new(ConcurrentS3Fifo::new(100));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    c.insert(i % 50, Bytes::from(vec![t as u8]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every overwrite leaves a stale ring handle that inflates the queue
        // accounting until eviction pops it, so churn evicts live freq-0 keys
        // even though only 50 distinct keys exist: the retention count is
        // scheduler-dependent (typically >= 45, observed as low as 44 on a
        // loaded single-vCPU box). Assert a bound with headroom — the test
        // guards against *catastrophic* key loss, not the exact count.
        let present = (0..50u64).filter(|&k| c.get(k).is_some()).count();
        assert!(
            present >= 35,
            "keys lost under overwrite churn: {present}/50"
        );
        // Deterministic invariants: every surviving value was written by one
        // of the four threads, and the index never exceeds the transient
        // overwrite overshoot (capacity + one in-flight entry per thread).
        for k in 0..50u64 {
            if let Some(v) = c.get(k) {
                assert!(v.len() == 1 && v[0] < 4, "torn value for key {k}: {v:?}");
            }
        }
        assert!(c.len() <= 104);
        // Duplicates and stale handles must not survive quiescence, but a
        // key whose *last* insert raced an eviction's ghost window stays
        // live∩ghosted until its next insert — which never comes once the
        // churn stops (see the residency re-check in `evict_small`). The
        // count is bounded by the overlap of in-flight inserts with
        // eviction scans at shutdown, not by one per thread: a loaded
        // single-vCPU box has been observed to stack 8 with 4 threads.
        // Budget 4 per thread; the exactness lives in `duplicates == 0`.
        let audit = c.audit_quiescent();
        assert_eq!(audit.duplicates, 0, "duplicate residency: {audit:?}");
        assert!(audit.is_clean(16), "audit failed: {audit:?}");
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn tiny_capacity_panics() {
        ConcurrentS3Fifo::new(5);
    }

    #[test]
    fn shard_stats_aggregate_to_operation_counts() {
        let c = ConcurrentS3Fifo::new(100);
        let shards = c.num_shards();
        let mut expected_hits = 0u64;
        let mut expected_misses = 0u64;
        for k in 0..200u64 {
            c.insert(k, payload());
        }
        for k in 0..300u64 {
            match c.get(k) {
                Some(_) => expected_hits += 1,
                None => expected_misses += 1,
            }
        }
        let total = c.aggregate_stats();
        assert_eq!(total.shard, shards, "aggregate marker");
        assert_eq!(total.inserts, 200);
        assert_eq!(total.hits, expected_hits);
        assert_eq!(total.misses, expected_misses);
        assert!(total.evictions > 0, "200 inserts into 100 slots must evict");
        // Per-shard snapshots partition the totals.
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.len(), shards);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            total.misses
        );
        assert_eq!(
            per_shard.iter().map(|s| s.inserts).sum::<u64>(),
            total.inserts
        );
        assert_eq!(
            per_shard.iter().map(|s| s.evictions).sum::<u64>(),
            total.evictions
        );
        // The mixing hash must actually spread keys around.
        let active = per_shard.iter().filter(|s| s.inserts > 0).count();
        assert!(active > shards / 2, "only {active} shards saw inserts");
    }

    #[test]
    fn shard_stats_survive_concurrent_load() {
        for batched in [true, false] {
            let c = Arc::new(ConcurrentS3Fifo::with_options(
                1000,
                S3FifoOptions {
                    shards: None,
                    batched,
                },
            ));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let c = c.clone();
                handles.push(std::thread::spawn(move || {
                    let mut state = t + 1;
                    for _ in 0..20_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = (state >> 33) % 5000;
                        if c.get(key).is_none() {
                            c.insert(key, Bytes::from_static(b"v"));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let total = c.aggregate_stats();
            // Every loop iteration was one get; inserts follow misses 1:1.
            // Batched hits are exact here because aggregate_stats drains
            // the pending increments first.
            assert_eq!(total.hits + total.misses, 4 * 20_000, "batched={batched}");
            assert_eq!(total.inserts, total.misses, "batched={batched}");
            assert!(total.hit_ratio() > 0.0 && total.hit_ratio() < 1.0);
        }
    }

    #[test]
    fn batched_hits_settle_at_drain() {
        let c = ConcurrentS3Fifo::new(100);
        c.insert(7, payload());
        for _ in 0..10 {
            assert!(c.get(7).is_some());
        }
        // Counters lag until drained…
        let snap = c.snapshot_shard(c.shard_idx(7));
        assert!(snap.hits < 10, "hits applied eagerly: {}", snap.hits);
        // …and are exact afterwards (aggregate_stats drains internally).
        assert_eq!(c.aggregate_stats().hits, 10);
    }

    #[test]
    fn export_obs_publishes_gauges() {
        use cache_obs::{MetricsRegistry, SampleValue};
        let c = ConcurrentS3Fifo::new(100);
        for k in 0..50u64 {
            c.insert(k, payload());
            c.get(k);
        }
        let registry = MetricsRegistry::new();
        c.export_obs(&registry.scope("cc.s3fifo"));
        let samples = registry.snapshot();
        let gauge = |name: &str| {
            samples
                .iter()
                .find(|m| m.name == format!("cc.s3fifo.{name}"))
                .map(|m| match m.value {
                    SampleValue::Gauge(v) => v,
                    ref other => panic!("{name}: expected gauge, got {other:?}"),
                })
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(gauge("hits"), 50);
        assert_eq!(gauge("inserts"), 50);
        // Per-shard entries exist for active shards only.
        let shard_gauges = samples
            .iter()
            .filter(|m| m.name.contains(".shard-"))
            .count();
        assert!(shard_gauges > 0, "active shards must be exported");
    }

    #[test]
    fn audit_reports_clean_on_quiet_cache() {
        for c in both_modes(100) {
            for k in 0..500u64 {
                c.insert(k, payload());
                c.get(k / 2);
            }
            let audit = c.audit_quiescent();
            assert_eq!(audit.resident, c.len(), "{}", c.name());
            assert!(audit.is_clean(0), "{}: {audit:?}", c.name());
            // The audit's ring walk must not perturb the cache.
            let before = c.debug_counts();
            let again = c.audit_quiescent();
            assert_eq!(before, c.debug_counts(), "{}: audit mutated state", c.name());
            assert_eq!(audit, again, "{}: audit not idempotent", c.name());
        }
    }

    #[test]
    fn profile_counts_hit_path_writes() {
        let c = ConcurrentS3Fifo::direct(100);
        c.insert(1, payload());
        c.sync_profile().set_enabled(true);
        c.sync_profile().reset();
        for _ in 0..10 {
            c.get(1);
        }
        let snap = c.sync_profile().snapshot();
        // Direct hit: 2 lock-word + 1 hit counter, + freq store while
        // below MAX_FREQ (first 3 hits).
        assert_eq!(snap.entry_writes, 10 * 3 + 3);
        assert_eq!(snap.shared_writes, 0, "hit path must stay ring-free");
        assert_eq!(snap.lock_sections, 0, "hit path takes no global lock");
    }
}

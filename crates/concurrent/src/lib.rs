//! Concurrent cache prototypes for the throughput/scalability evaluation
//! (Fig. 8; the paper's Cachelib experiment).
//!
//! The paper's argument: LRU-family algorithms serialize on a lock because
//! every *hit* mutates the queue, while S3-FIFO's hit path is a single
//! atomic counter bump, so FIFO queues scale with cores. This crate builds
//! both sides:
//!
//! - [`s3fifo::ConcurrentS3Fifo`] — lock-free small/main FIFO rings
//!   ([`cache_ds::MpmcRing`]), sharded hash index, atomic two-bit counters,
//!   sharded fingerprint ghost;
//! - [`lru::MutexLru`] — strict LRU (every hit takes the global list lock)
//!   and "optimized" LRU (Cachelib-style try-lock + rate-limited promotion);
//! - [`clock::ConcurrentClock`] — atomic reference bits over a slot array;
//! - [`locked::GlobalLock`] — wraps any single-threaded [`cache_types::Policy`]
//!   (TinyLFU, 2Q) behind one mutex, reproducing the advanced-algorithm
//!   lines of Fig. 8;
//! - [`segcache::SegcacheLike`] — log-structured segments with FIFO-merge
//!   eviction and an atomic-only hit path;
//! - [`harness`] — the closed-loop multi-threaded replay harness;
//! - [`oplog`] — a logged variant of the torture harness whose timed
//!   histories feed `cache-check`'s linearizability-lite checker;
//! - [`profile`] — measured-cost synchronization counters feeding the
//!   thread-sweep contention model in `bench` (see DESIGN.md §11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use s3fifo::ShardStatsSnapshot;

pub mod clock;
pub mod harness;
mod incbuf;
pub mod locked;
pub mod lru;
pub mod oplog;
pub mod profile;
pub mod s3fifo;
pub mod segcache;

use bytes::Bytes;

/// Result of a quiescent full-table audit ([`ConcurrentCache::audit_quiescent`]).
///
/// All fields describe *violations*, so the all-zero default is a clean
/// report. Audits are only meaningful when no other thread is mutating the
/// cache (after joining workers); the torture harness runs one per cache
/// at the end of every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Entries found resident during the walk (informational).
    pub resident: usize,
    /// Index entries whose backing storage no longer holds the key
    /// (stale handles / dangling slots).
    pub stale_handles: usize,
    /// Keys that are simultaneously live in the cache and present in a
    /// ghost table. Bounded races can legally leave a few (an evictor can
    /// ghost-insert a key a racing thread just re-inserted), so callers
    /// compare this against the thread count rather than zero.
    pub live_ghosted: usize,
    /// Duplicate residency: the same key reachable through two distinct
    /// live storage locations.
    pub duplicates: usize,
}

impl AuditReport {
    /// True when the total violation count (stale handles + duplicates +
    /// live∩ghost keys) is within `slack`. Strict designs pass with
    /// `slack = 0`; lock-free designs legally leave a bounded number of
    /// transient artifacts per racing thread (an orphaned CLOCK slot from
    /// a same-key double insert, a ghosted key re-inserted mid-eviction),
    /// so their callers budget a few per thread.
    pub fn is_clean(&self, slack: usize) -> bool {
        self.stale_handles + self.duplicates + self.live_ghosted <= slack
    }

    /// Total violation count.
    pub fn violations(&self) -> usize {
        self.stale_handles + self.duplicates + self.live_ghosted
    }
}

/// A thread-safe fixed-capacity cache keyed by `u64`, storing cheaply
/// cloneable byte payloads.
pub trait ConcurrentCache: Send + Sync {
    /// Algorithm name for reporting.
    fn name(&self) -> String;
    /// Looks up `key`, returning the payload on a hit.
    fn get(&self, key: u64) -> Option<Bytes>;
    /// Inserts `key → value`, evicting as needed.
    fn insert(&self, key: u64, value: Bytes);
    /// Deletes `key`, returning true when it was cached. §4.2 notes that in
    /// a ring-buffer implementation the space of deleted objects is only
    /// reclaimed when their queue slot is consumed — and that S3-FIFO's
    /// small queue recycles such slots sooner than a single large queue.
    fn remove(&self, key: u64) -> bool;
    /// Approximate number of cached entries.
    fn len(&self) -> usize;
    /// True when no entries are cached (approximate, like `len`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Maximum number of entries.
    fn capacity(&self) -> usize;
    /// The instance's synchronization-cost profile (see [`profile`]).
    /// Implementations that have instrumented their hot paths return their
    /// own profile; the default is a shared always-disabled stub so
    /// callers can profile any cache without downcasting.
    fn sync_profile(&self) -> &profile::SyncProfile {
        static DISABLED: profile::SyncProfile = profile::SyncProfile::new();
        &DISABLED
    }
    /// Full-table consistency audit. Only meaningful at quiescence (no
    /// concurrent mutators). The default reports everything clean;
    /// implementations override it with a real walk of their storage.
    fn audit_quiescent(&self) -> AuditReport {
        AuditReport::default()
    }
}

/// Number of hash-index shards used by the scalable implementations.
pub const SHARDS: usize = 64;

#[inline]
pub(crate) fn shard_of(key: u64) -> usize {
    (cache_ds::rng::mix64(key) as usize) & (SHARDS - 1)
}

/// Every concurrent implementation at `capacity`, for cross-cutting tests
/// (the remove suite, the torture harness).
#[cfg(test)]
pub(crate) fn test_caches(capacity: usize) -> Vec<std::sync::Arc<dyn ConcurrentCache>> {
    use std::sync::Arc;
    vec![
        Arc::new(crate::s3fifo::ConcurrentS3Fifo::new(capacity)),
        Arc::new(crate::s3fifo::ConcurrentS3Fifo::direct(capacity)),
        Arc::new(crate::lru::MutexLru::strict(capacity)),
        Arc::new(crate::lru::MutexLru::optimized(capacity)),
        Arc::new(crate::clock::ConcurrentClock::new(capacity)),
        Arc::new(crate::locked::locked_tinylfu(capacity)),
        Arc::new(crate::locked::locked_twoq(capacity)),
        Arc::new(crate::segcache::SegcacheLike::new(capacity)),
    ]
}

#[cfg(test)]
mod remove_tests {
    use super::*;

    fn all_caches(capacity: usize) -> Vec<std::sync::Arc<dyn ConcurrentCache>> {
        test_caches(capacity)
    }

    #[test]
    fn remove_makes_key_invisible_everywhere() {
        for c in all_caches(100) {
            c.insert(1, Bytes::from_static(b"v"));
            assert!(c.get(1).is_some(), "{}: insert failed", c.name());
            assert!(c.remove(1), "{}: remove returned false", c.name());
            assert!(c.get(1).is_none(), "{}: key visible after remove", c.name());
            assert!(!c.remove(1), "{}: double remove returned true", c.name());
        }
    }

    #[test]
    fn remove_then_reinsert_works() {
        for c in all_caches(100) {
            c.insert(2, Bytes::from_static(b"a"));
            c.remove(2);
            c.insert(2, Bytes::from_static(b"b"));
            assert_eq!(
                c.get(2),
                Some(Bytes::from_static(b"b")),
                "{}: reinsert after remove failed",
                c.name()
            );
        }
    }

    #[test]
    fn delete_heavy_churn_stays_bounded() {
        // §4.2's deletion discussion: heavy delete traffic must not corrupt
        // accounting or leak space.
        for c in all_caches(64) {
            let mut state = 7u64;
            for i in 0..30_000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = (state >> 33) % 500;
                match i % 3 {
                    0 => c.insert(key, Bytes::from_static(b"v")),
                    1 => {
                        c.get(key);
                    }
                    _ => {
                        c.remove(key);
                    }
                }
            }
            assert!(
                c.len() <= 64 + 8,
                "{}: len {} after delete churn",
                c.name(),
                c.len()
            );
        }
    }
}

//! Segcache-like log-structured concurrent cache.
//!
//! §5.3: Segcache reaches close-to-linear scalability through *macro
//! management* — hits only bump an atomic frequency, and synchronization
//! happens at segment granularity (orders of magnitude rarer than per
//! object). This simplified reproduction keeps the two properties Fig. 8
//! measures: an atomic-only hit path, and merge-based (FIFO-Merge) eviction
//! that copies surviving objects, which costs it single-thread throughput
//! relative to S3-FIFO.

use crate::profile::SyncProfile;
use crate::{shard_of, AuditReport, ConcurrentCache, SHARDS};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use cache_ds::IdMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

struct Entry {
    value: Bytes,
    freq: AtomicU32,
    /// Segment the entry currently lives in.
    seg: AtomicUsize,
}

struct Segment {
    id: usize,
    keys: Vec<u64>,
}

/// Simplified Segcache (log-structured, FIFO-merge eviction).
pub struct SegcacheLike {
    index: Vec<RwLock<IdMap<Arc<Entry>>>>,
    /// Sealed segments, oldest first, plus the active segment at the back.
    segments: Mutex<VecDeque<Segment>>,
    profile: SyncProfile,
    next_seg: AtomicUsize,
    len: AtomicUsize,
    capacity: usize,
    seg_size: usize,
}

impl SegcacheLike {
    /// Creates a cache of `capacity` entries with ten segments.
    ///
    /// # Panics
    ///
    /// Panics when `capacity < 10`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 10, "capacity must be at least 10 entries");
        let seg_size = (capacity / 10).max(1);
        let mut segments = VecDeque::new();
        segments.push_back(Segment {
            id: 0,
            keys: Vec::with_capacity(seg_size),
        });
        SegcacheLike {
            index: (0..SHARDS).map(|_| RwLock::new(IdMap::default())).collect(),
            segments: Mutex::new(segments),
            profile: SyncProfile::new(),
            next_seg: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            capacity,
            seg_size,
        }
    }

    /// Merge-evicts the four oldest segments, retaining the top quarter by
    /// frequency (copying them into a fresh segment — the copy cost §5.3
    /// mentions).
    // ORDERING: Relaxed freq/seg/len — freq is a retention heuristic and
    // seg a tag checked under the index lock; the segment mutex (held by
    // the caller) serializes whole merges against each other.
    // LOCK-ORDER: disjoint; index shard guards are taken one at a time
    // here. The caller holds the segment mutex across this call — that
    // segments -> index nesting is declared (and checked) at `insert` —
    // and no path acquires the segment mutex while holding an index lock.
    fn merge_evict(&self, segments: &mut VecDeque<Segment>) {
        let take = 4.min(segments.len().saturating_sub(1));
        if take == 0 {
            return;
        }
        let mut candidates: Vec<(u64, u32, Arc<Entry>)> = Vec::new();
        let mut seg_ids = Vec::new();
        for _ in 0..take {
            // Invariant: `take <= segments.len() - 1` by construction above,
            // so a front segment always exists.
            let seg = segments.pop_front().expect("segment available");
            seg_ids.push(seg.id);
            for key in seg.keys {
                let guard = self.index[shard_of(key)].read();
                if let Some(e) = guard.get(&key) {
                    if seg_ids.contains(&e.seg.load(Ordering::Relaxed)) {
                        candidates.push((key, e.freq.load(Ordering::Relaxed), e.clone()));
                    }
                }
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
        let keep = candidates.len() / 4;
        let new_id = self.next_seg.fetch_add(1, Ordering::Relaxed);
        let mut merged = Segment {
            id: new_id,
            keys: Vec::with_capacity(keep),
        };
        for (i, (key, _f, entry)) in candidates.into_iter().enumerate() {
            if i < keep {
                // "Copy" the survivor into the merged segment.
                entry.seg.store(new_id, Ordering::Relaxed);
                entry.freq.store(0, Ordering::Relaxed);
                merged.keys.push(key);
            } else {
                let mut guard = self.index[shard_of(key)].write();
                if let Some(cur) = guard.get(&key) {
                    if Arc::ptr_eq(cur, &entry) {
                        guard.remove(&key);
                        self.len.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        segments.push_front(merged);
    }
}

impl ConcurrentCache for SegcacheLike {
    fn name(&self) -> String {
        "Segcache".into()
    }

    // ORDERING: Relaxed freq bump — the atomic-only hit path is the whole
    // point (§5.3); losing increments under contention is acceptable.
    fn get(&self, key: u64) -> Option<Bytes> {
        // Index lock word (2) + freq bump (1).
        self.profile.entry_write(3);
        let guard = self.index[shard_of(key)].read();
        let e = guard.get(&key)?;
        e.freq.fetch_add(1, Ordering::Relaxed);
        Some(e.value.clone())
    }

    // ORDERING: Relaxed len/seg-id — len gates eviction heuristically;
    // the segment mutex orders all segment structure mutation.
    // LOCK-ORDER: segments -> index; the nesting happens via
    // `merge_evict` under the segment mutex, while the direct index write
    // below happens after the segment guard is dropped.
    fn insert(&self, key: u64, value: Bytes) {
        let mut segments = self.segments.lock();
        let t0 = self.profile.section_start();
        if self.len.load(Ordering::Relaxed) >= self.capacity {
            self.merge_evict(&mut segments);
        }
        let seg_id = {
            let active_full = segments
                .back()
                .map(|s| s.keys.len() >= self.seg_size)
                .unwrap_or(true);
            if active_full {
                let id = self.next_seg.fetch_add(1, Ordering::Relaxed);
                segments.push_back(Segment {
                    id,
                    keys: Vec::with_capacity(self.seg_size),
                });
            }
            // Invariant: the branch above pushed a segment when the deque
            // was empty or the active one was full, so back_mut succeeds.
            let active = segments.back_mut().expect("active segment exists");
            active.keys.push(key);
            active.id
        };
        self.profile.section_end(t0);
        drop(segments);
        let entry = Arc::new(Entry {
            value,
            freq: AtomicU32::new(0),
            seg: AtomicUsize::new(seg_id),
        });
        // Index lock word (2); len is one globally shared line.
        self.profile.entry_write(2);
        let mut guard = self.index[shard_of(key)].write();
        if guard.insert(key, entry).is_none() {
            self.profile.shared_write(1);
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ORDERING: Relaxed len — advisory occupancy, see `insert`.
    fn remove(&self, key: u64) -> bool {
        self.profile.entry_write(2); // index lock word
        let existed = self.index[shard_of(key)].write().remove(&key).is_some();
        if existed {
            self.profile.shared_write(1); // global len
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        existed
    }

    // ORDERING: Relaxed — advisory count, exact only at quiescence.
    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sync_profile(&self) -> &SyncProfile {
        &self.profile
    }

    // LOCK-ORDER: segments -> index; index shard read locks under the
    // segment mutex, the same direction as `insert`/`merge_evict`.
    // ORDERING: Relaxed segment-id loads — the audit runs at quiescence,
    // where every writer has joined and the lock acquisitions above already
    // ordered their stores.
    fn audit_quiescent(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let segments = self.segments.lock();
        // A current index entry must live in a segment that still exists
        // and lists its key (else merge-evict leaked it: unreachable from
        // any future merge, it would pin memory forever). Membership only:
        // a re-set key legally appears twice in the log (the older slot is
        // garbage until a merge drops it), and the index map already rules
        // out true duplicate residency.
        let mut listed = cache_ds::IdSet::default();
        for seg in segments.iter() {
            for key in &seg.keys {
                let guard = self.index[shard_of(*key)].read();
                if let Some(e) = guard.get(key) {
                    if e.seg.load(Ordering::Relaxed) == seg.id {
                        listed.insert(*key);
                    }
                }
            }
        }
        for shard in &self.index {
            let guard = shard.read();
            report.resident += guard.len();
            for key in guard.keys() {
                if !listed.contains(key) {
                    report.stale_handles += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Bytes {
        Bytes::from_static(b"x")
    }

    #[test]
    fn get_after_insert() {
        let c = SegcacheLike::new(100);
        c.insert(1, v());
        assert_eq!(c.get(1), Some(v()));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn capacity_roughly_bounded() {
        let c = SegcacheLike::new(100);
        for k in 0..5000u64 {
            c.insert(k, v());
        }
        assert!(c.len() <= 110, "len {}", c.len());
    }

    #[test]
    fn frequent_objects_survive_merges() {
        let c = SegcacheLike::new(100);
        for k in 0..5u64 {
            c.insert(k, v());
        }
        for round in 0..50 {
            for k in 0..5u64 {
                c.get(k);
            }
            for j in 0..20u64 {
                c.insert(1000 + round * 20 + j, v());
            }
        }
        let survivors = (0..5u64).filter(|&k| c.get(k).is_some()).count();
        assert!(survivors >= 3, "hot keys lost: {survivors}/5");
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = Arc::new(SegcacheLike::new(500));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 3;
                for _ in 0..20_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 2000;
                    if c.get(key).is_none() {
                        c.insert(key, Bytes::from_static(b"v"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 600, "len {}", c.len());
        // Insert-vs-merge races leave index entries whose log slot was
        // merged away before the index write landed; a stale entry is only
        // repaired by that key's next insert, so the residue scales with
        // how often merges overlapped the tail of each key's insert
        // history, not with one race per thread (a loaded single-vCPU box
        // has been observed to leave 30 with 8 threads). Budget 8 per
        // thread; duplicates stay exactly zero.
        let audit = c.audit_quiescent();
        assert_eq!(audit.duplicates, 0, "duplicate residency: {audit:?}");
        assert!(audit.is_clean(8 * 8), "audit failed: {audit:?}");
    }

    #[test]
    fn audit_clean_single_threaded() {
        let c = SegcacheLike::new(100);
        for k in 0..2000u64 {
            c.insert(k % 300, v());
            c.get(k % 150);
        }
        let audit = c.audit_quiescent();
        assert!(audit.is_clean(0), "audit failed: {audit:?}");
        assert_eq!(audit.resident, c.len());
    }
}

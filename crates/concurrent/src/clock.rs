//! Concurrent CLOCK over a fixed slot array.
//!
//! CLOCK is the classic answer to LRU's lock contention (MemC3, TriCache,
//! RocksDB's lock-free clock cache — §2.2): hits set an atomic reference
//! bit, and eviction sweeps a shared hand over the slot array. Reads take
//! only a sharded index read lock; the hand is a single `fetch_add`.

use crate::profile::SyncProfile;
use crate::{shard_of, AuditReport, ConcurrentCache, SHARDS};
use bytes::Bytes;
use parking_lot::RwLock;
use cache_ds::IdMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Slot {
    /// The occupying key (`None` when free). Guarded by the slot lock.
    occupant: RwLock<Option<(u64, Bytes)>>,
    referenced: AtomicBool,
}

/// A CLOCK cache with per-slot locks and an atomic hand.
pub struct ConcurrentClock {
    slots: Vec<Slot>,
    index: Vec<RwLock<IdMap<usize>>>,
    profile: SyncProfile,
    hand: AtomicUsize,
    len: AtomicUsize,
}

impl ConcurrentClock {
    /// Creates a CLOCK cache with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ConcurrentClock {
            slots: (0..capacity)
                .map(|_| Slot {
                    occupant: RwLock::new(None),
                    referenced: AtomicBool::new(false),
                })
                .collect(),
            index: (0..SHARDS).map(|_| RwLock::new(IdMap::default())).collect(),
            profile: SyncProfile::new(),
            hand: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Sweeps the hand until a victim slot is claimed; returns its index.
    // ORDERING: all Relaxed — the hand is a mere round-robin cursor and
    // the reference bit a heuristic; slot contents are guarded by the
    // occupant RwLock, which carries the needed synchronization.
    // LOCK-ORDER: occupant -> index; the occupant guard is a try_write
    // (non-blocking), and `insert`/`remove` never hold the index lock
    // while taking an occupant lock, so the order cannot invert into a
    // deadlock.
    fn claim_slot(&self) -> usize {
        loop {
            // The hand is the one line every evicting thread RMWs.
            self.profile.shared_write(1);
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % self.slots.len();
            let slot = &self.slots[i];
            // Second chance: clear the reference bit and move on.
            self.profile.entry_write(1);
            if slot.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            let Some(mut occ) = slot.occupant.try_write() else {
                continue;
            };
            self.profile.entry_write(2); // slot lock word
            if let Some((old_key, _)) = occ.take() {
                self.profile.entry_write(2); // index shard lock word
                let mut idx = self.index[shard_of(old_key)].write();
                // Only unmap if the mapping still points at this slot.
                if idx.get(&old_key) == Some(&i) {
                    idx.remove(&old_key);
                }
                self.profile.shared_write(1); // global len
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
            // Hold nothing: the slot is now empty and we own it by virtue of
            // having emptied it; mark reference so a racing claimer skips it
            // until we fill it.
            slot.referenced.store(true, Ordering::Relaxed);
            return i;
        }
    }
}

impl ConcurrentCache for ConcurrentClock {
    fn name(&self) -> String {
        "CLOCK".into()
    }

    // ORDERING: Relaxed reference-bit store — it is a hint for the sweep,
    // value visibility comes from the occupant lock.
    // LOCK-ORDER: disjoint; the index shard read guard is a statement
    // temporary (dropped at the end of the `let ... ?` statement) before
    // the occupant lock is taken.
    fn get(&self, key: u64) -> Option<Bytes> {
        // Index lock word (2) + slot lock word (2).
        self.profile.entry_write(4);
        let slot_idx = *self.index[shard_of(key)].read().get(&key)?;
        let slot = &self.slots[slot_idx];
        let occ = slot.occupant.read();
        match occ.as_ref() {
            Some((k, v)) if *k == key => {
                slot.referenced.store(true, Ordering::Relaxed);
                self.profile.entry_write(1);
                Some(v.clone())
            }
            _ => None,
        }
    }

    // ORDERING: Relaxed bit/len updates — see `claim_slot`; the occupant
    // lock orders the payload.
    // LOCK-ORDER: disjoint; the occupant lock and the index lock are never
    // held at the same time here. The overwrite probe below *must* copy the slot index out
    // of a plain `let` so the index read guard drops before the occupant
    // write lock is taken: as an `if let` scrutinee temporary (edition
    // 2021 lifetime rules) the guard survived the whole block, and a
    // racing `claim_slot` — which holds an occupant write lock while
    // taking the index *write* lock — closed an ABBA deadlock cycle.
    // Regression test: `overwrite_vs_eviction_does_not_deadlock`.
    fn insert(&self, key: u64, value: Bytes) {
        // Overwrite in place when present.
        self.profile.entry_write(2); // index shard lock word
        let mapped = self.index[shard_of(key)].read().get(&key).copied();
        if let Some(slot_idx) = mapped {
            let slot = &self.slots[slot_idx];
            let mut occ = slot.occupant.write();
            if matches!(occ.as_ref(), Some((k, _)) if *k == key) {
                *occ = Some((key, value));
                slot.referenced.store(true, Ordering::Relaxed);
                self.profile.entry_write(3); // slot lock word + ref bit
                return;
            }
        }
        let i = self.claim_slot();
        {
            let mut occ = self.slots[i].occupant.write();
            *occ = Some((key, value));
        }
        // Slot lock word (2) + ref bit (1) + index shard lock word (2).
        self.profile.entry_write(5);
        self.slots[i].referenced.store(false, Ordering::Relaxed);
        self.index[shard_of(key)].write().insert(key, i);
        self.profile.shared_write(1); // global len
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    // ORDERING: Relaxed bit/len updates — the occupant lock is the point
    // of synchronization for the removal itself.
    // LOCK-ORDER: disjoint; the index write guard is a temporary dropped
    // at the end of the `let ... else` statement, so the occupant lock is
    // taken alone.
    fn remove(&self, key: u64) -> bool {
        self.profile.entry_write(2); // index shard lock word
        let Some(slot_idx) = self.index[shard_of(key)].write().remove(&key) else {
            return false;
        };
        let slot = &self.slots[slot_idx];
        let mut occ = slot.occupant.write();
        self.profile.entry_write(2); // slot lock word
        if matches!(occ.as_ref(), Some((k, _)) if *k == key) {
            *occ = None;
            slot.referenced.store(false, Ordering::Relaxed);
            self.profile.entry_write(1);
            self.profile.shared_write(1); // global len
            self.len.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            // The slot was reclaimed by a racing eviction.
            false
        }
    }

    // ORDERING: Relaxed — advisory count, exact only at quiescence.
    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn sync_profile(&self) -> &SyncProfile {
        &self.profile
    }

    // LOCK-ORDER: occupant -> index, index -> occupant; the first walk
    // nests occupant read -> index read, the second walk the reverse.
    // Read locks alone cannot deadlock each other, and the audit contract
    // requires quiescence, so no writer exists to invert the order against
    // (the inverting read below carries the reasoned waiver).
    fn audit_quiescent(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let mut occupants: IdMap<usize> = IdMap::default();
        for (i, slot) in self.slots.iter().enumerate() {
            // Bind the guard through a plain `let` — as an `if let`
            // scrutinee temporary it would stay live across the nested
            // index acquisition (the PR 8 bug shape; see `insert`).
            let occ = slot.occupant.read();
            if let Some((k, _)) = occ.as_ref() {
                report.resident += 1;
                *occupants.entry(*k).or_insert(0) += 1;
                // An occupant the index does not point at is an orphan: a
                // same-key double insert lost the index race, so the slot
                // holds dead weight until the hand reclaims it. Bounded by
                // in-flight inserts, counted as a stale handle.
                if self.index[shard_of(*k)].read().get(k) != Some(&i) {
                    report.stale_handles += 1;
                }
            }
        }
        // Same key occupying two slots is the same race seen from the
        // other side; report it distinctly.
        report.duplicates = occupants.values().filter(|&&n| n > 1).count();
        for shard in &self.index {
            for (key, &slot_idx) in shard.read().iter() {
                let holds = matches!(
                    // lint:allow(L-DEADLOCK): quiescent-only audit — no concurrent writer exists to run `claim_slot`'s inverse order against this read.
                    self.slots[slot_idx].occupant.read().as_ref(),
                    Some((k, _)) if k == key
                );
                if !holds {
                    // Index points at a slot that was reclaimed before the
                    // mapping landed (insert vs. claim race).
                    report.stale_handles += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn v() -> Bytes {
        Bytes::from_static(b"x")
    }

    #[test]
    fn get_after_insert() {
        let c = ConcurrentClock::new(10);
        c.insert(1, v());
        assert_eq!(c.get(1), Some(v()));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn referenced_objects_survive() {
        let c = ConcurrentClock::new(4);
        for k in 0..4u64 {
            c.insert(k, v());
        }
        c.get(0); // set ref bit
        for k in 10..13u64 {
            c.insert(k, v());
        }
        assert!(c.get(0).is_some(), "referenced slot must get second chance");
    }

    #[test]
    fn capacity_bounded() {
        let c = ConcurrentClock::new(32);
        for k in 0..1000u64 {
            c.insert(k, v());
        }
        assert!(c.len() <= 32);
    }

    #[test]
    fn overwrite_in_place() {
        let c = ConcurrentClock::new(8);
        c.insert(1, Bytes::from_static(b"a"));
        c.insert(1, Bytes::from_static(b"b"));
        assert_eq!(c.get(1), Some(Bytes::from_static(b"b")));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_churn_is_safe() {
        let c = Arc::new(ConcurrentClock::new(256));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 99;
                for _ in 0..20_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 1000;
                    if c.get(key).is_none() {
                        c.insert(key, Bytes::from_static(b"v"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 256 + 8, "len {} out of bounds", c.len());
        // Orphan slots / stale mappings from same-key insert races are
        // bounded by in-flight operations (a few per thread), never
        // accumulated across the run.
        let audit = c.audit_quiescent();
        assert!(audit.is_clean(3 * 8), "audit failed: {audit:?}");
    }

    /// Regression: overwrite-vs-eviction deadlock. `insert`'s overwrite
    /// probe used to keep the index shard *read* guard alive (an `if let`
    /// scrutinee temporary lives to the end of the construct in edition
    /// 2021) while blocking on the occupant write lock; a racing
    /// `claim_slot` holds an occupant write lock while taking the same
    /// index shard's *write* lock — an ABBA cycle. Tiny capacity plus a
    /// small hot universe keeps every thread overwriting and evicting at
    /// once, which reproduced the hang within seconds before the fix
    /// (found by the seeded concurrent property test in `cache-check`).
    #[test]
    fn overwrite_vs_eviction_does_not_deadlock() {
        let c = Arc::new(ConcurrentClock::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 7;
                for _ in 0..60_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 16;
                    // Every op is an insert: half overwrite a resident key
                    // (index read probe -> occupant write), half evict
                    // (occupant write -> index write).
                    c.insert(key, Bytes::from_static(b"v"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // This test exists for the deadlock, not occupancy accounting (the
        // audit tests cover that): under churn this extreme, same-key
        // insert races leave stale index entries that persist until that
        // key's next touch, so `len` can exceed capacity + one-per-thread
        // (13 observed on a loaded box). The deterministic bound is the
        // key universe: the index holds at most one entry per key.
        assert!(c.len() <= 16, "len {} exceeds key universe", c.len());
    }

    #[test]
    fn audit_clean_single_threaded() {
        let c = ConcurrentClock::new(64);
        for k in 0..500u64 {
            c.insert(k, v());
            c.get(k / 3);
        }
        let audit = c.audit_quiescent();
        assert!(audit.is_clean(0), "audit failed: {audit:?}");
        assert_eq!(audit.resident, c.len());
    }
}

//! Strict and "optimized" concurrent LRU.
//!
//! §5.3's comparison points:
//!
//! - **Strict LRU** takes a global lock on *every* operation — hits promote
//!   under the lock, so throughput flattens immediately with threads.
//! - **Optimized LRU** reproduces Cachelib's tricks: the value lookup uses a
//!   sharded read-mostly index, and promotion is (a) rate-limited — an entry
//!   is only promoted again after `promote_every` further hits — and (b)
//!   performed under `try_lock`, skipping the promotion entirely when the
//!   list lock is busy. §5.3: optimized LRU "has both higher throughput and
//!   better scalability [than strict LRU]. However, it cannot scale beyond
//!   two cores."

use crate::profile::SyncProfile;
use crate::{shard_of, AuditReport, ConcurrentCache, SHARDS};
use bytes::Bytes;
use cache_ds::{DList, Handle};
use parking_lot::{Mutex, RwLock};
use cache_ds::IdMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

struct Entry {
    key: u64,
    value: Bytes,
    /// Hits since the last promotion (for rate limiting).
    since_promotion: AtomicU32,
}

/// The LRU list and handle map, guarded by one mutex.
struct ListCore {
    list: DList<u64>,
    handles: IdMap<Handle>,
}

/// A concurrent LRU cache, strict or Cachelib-style optimized.
pub struct MutexLru {
    shards: Vec<RwLock<IdMap<Arc<Entry>>>>,
    core: Mutex<ListCore>,
    profile: SyncProfile,
    capacity: usize,
    strict: bool,
    promote_every: u32,
}

impl MutexLru {
    /// Strict LRU: promotion on every hit, blocking lock.
    pub fn strict(capacity: usize) -> Self {
        Self::build(capacity, true, 1)
    }

    /// Optimized LRU: try-lock promotion, at most one promotion per
    /// `promote_every` hits per object (Cachelib uses a time window; a hit
    /// count is equivalent under closed-loop replay).
    pub fn optimized(capacity: usize) -> Self {
        Self::build(capacity, false, 8)
    }

    fn build(capacity: usize, strict: bool, promote_every: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MutexLru {
            shards: (0..SHARDS).map(|_| RwLock::new(IdMap::default())).collect(),
            core: Mutex::new(ListCore {
                list: DList::with_capacity(capacity + 1),
                handles: IdMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            }),
            profile: SyncProfile::new(),
            capacity,
            strict,
            promote_every,
        }
    }

    fn promote(core: &mut ListCore, key: u64) {
        if let Some(&h) = core.handles.get(&key) {
            core.list.move_to_front(h);
        }
    }

    fn evict_one(&self, core: &mut ListCore) {
        if let Some(victim) = core.list.pop_back() {
            core.handles.remove(&victim);
            self.shards[shard_of(victim)].write().remove(&victim);
        }
    }
}

impl ConcurrentCache for MutexLru {
    fn name(&self) -> String {
        if self.strict {
            "LRU-strict".into()
        } else {
            "LRU-optimized".into()
        }
    }

    // ORDERING: Relaxed promotion counter — a pure rate-limit heuristic;
    // losing or double-counting a tick only shifts when promotion happens.
    // LOCK-ORDER: core -> shards; the standalone shard read guards are
    // block-scoped and dropped before core is taken, and the only nesting
    // is the try-lock'd core held across a shard read. Shard guards are
    // never held while acquiring core, so no cycle exists.
    fn get(&self, key: u64) -> Option<Bytes> {
        self.profile.entry_write(3); // shard lock word (2) + promotion tick
        let value = {
            let guard = self.shards[shard_of(key)].read();
            let entry = guard.get(&key)?;
            entry.since_promotion.fetch_add(1, Ordering::Relaxed);
            entry.value.clone()
        };
        if self.strict {
            // Every hit promotes, under a blocking lock — *the* global
            // section the paper blames for LRU's flat scaling curve.
            let mut core = self.core.lock();
            let t0 = self.profile.section_start();
            Self::promote(&mut core, key);
            self.profile.section_end(t0);
        } else {
            // Rate-limited, try-lock promotion.
            let due = {
                self.profile.entry_write(2); // shard lock word
                let guard = self.shards[shard_of(key)].read();
                match guard.get(&key) {
                    Some(e) => e.since_promotion.load(Ordering::Relaxed) >= self.promote_every,
                    None => false,
                }
            };
            if due {
                if let Some(mut core) = self.core.try_lock() {
                    let t0 = self.profile.section_start();
                    Self::promote(&mut core, key);
                    self.profile.entry_write(3); // shard lock word + reset
                    let guard = self.shards[shard_of(key)].read();
                    if let Some(e) = guard.get(&key) {
                        e.since_promotion.store(0, Ordering::Relaxed);
                    }
                    self.profile.section_end(t0);
                }
            }
        }
        Some(value)
    }

    // LOCK-ORDER: core -> shards; the same core-then-shard nesting as
    // `get`'s try-lock path and `evict_one`. No path holds a shard guard
    // while acquiring core, so no cycle.
    // Membership changes (insert/remove/evict) all happen inside the core
    // section so the sharded value store and the LRU list can never
    // disagree at quiescence; `audit_quiescent` asserts exactly that.
    fn insert(&self, key: u64, value: Bytes) {
        let entry = Arc::new(Entry {
            key,
            value,
            since_promotion: AtomicU32::new(0),
        });
        let _ = entry.key;
        let mut core = self.core.lock();
        let t0 = self.profile.section_start();
        self.profile.entry_write(2); // shard lock word
        let replaced = {
            let mut guard = self.shards[shard_of(key)].write();
            guard.insert(key, entry).is_some()
        };
        if replaced {
            Self::promote(&mut core, key);
            self.profile.section_end(t0);
            return;
        }
        while core.handles.len() >= self.capacity {
            self.evict_one(&mut core);
        }
        let h = core.list.push_front(key);
        core.handles.insert(key, h);
        self.profile.section_end(t0);
    }

    // LOCK-ORDER: core -> shards; the shard write is a statement
    // temporary taken under the core mutex — same discipline as `insert`
    // (membership changes stay in the core section).
    fn remove(&self, key: u64) -> bool {
        let mut core = self.core.lock();
        let t0 = self.profile.section_start();
        self.profile.entry_write(2); // shard lock word
        let existed = self.shards[shard_of(key)].write().remove(&key).is_some();
        if existed {
            if let Some(h) = core.handles.remove(&key) {
                core.list.remove(h);
            }
        }
        self.profile.section_end(t0);
        existed
    }

    fn len(&self) -> usize {
        self.core.lock().handles.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sync_profile(&self) -> &SyncProfile {
        &self.profile
    }

    // LOCK-ORDER: core -> shards; shard read locks are taken one at a
    // time under core — the same nesting `get`'s try-lock path uses, and
    // the only nesting in this audit.
    fn audit_quiescent(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let core = self.core.lock();
        // The LRU list and the handle map must agree exactly.
        if core.list.len() != core.handles.len() {
            report.stale_handles += core.list.len().abs_diff(core.handles.len());
        }
        let mut seen: IdMap<usize> = IdMap::default();
        for &key in core.list.iter() {
            *seen.entry(key).or_insert(0) += 1;
        }
        report.duplicates = seen.values().filter(|&&n| n > 1).count();
        // Every listed key must have a value in the sharded store, and
        // every stored value must be listed (else it can never be evicted).
        for key in core.handles.keys() {
            if !self.shards[shard_of(*key)].read().contains_key(key) {
                report.stale_handles += 1;
            }
        }
        for shard in &self.shards {
            let guard = shard.read();
            report.resident += guard.len();
            for key in guard.keys() {
                if !core.handles.contains_key(key) {
                    report.stale_handles += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Bytes {
        Bytes::from_static(b"x")
    }

    #[test]
    fn strict_lru_order() {
        let c = MutexLru::strict(2);
        c.insert(1, v());
        c.insert(2, v());
        c.get(1); // promote
        c.insert(3, v()); // evicts 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn optimized_capacity_bounded() {
        let c = MutexLru::optimized(64);
        for k in 0..10_000u64 {
            c.insert(k, v());
        }
        assert!(c.len() <= 64);
    }

    #[test]
    fn optimized_still_roughly_lru() {
        let c = MutexLru::optimized(100);
        for k in 0..100u64 {
            c.insert(k, v());
        }
        // Hammer a hot key so its promotion becomes due and fires.
        for _ in 0..100 {
            c.get(0);
        }
        for k in 1000..1099u64 {
            c.insert(k, v());
        }
        assert!(c.get(0).is_some(), "hot key evicted despite promotions");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = Arc::new(MutexLru::optimized(500));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 1;
                for _ in 0..20_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 2000;
                    if c.get(key).is_none() {
                        c.insert(key, Bytes::from_static(b"v"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 500);
        let audit = c.audit_quiescent();
        assert!(audit.is_clean(0), "audit failed: {audit:?}");
        assert_eq!(audit.resident, c.len());
    }

    #[test]
    fn audit_catches_nothing_on_remove_churn() {
        // Membership changes are serialized by the core mutex, so even a
        // remove-heavy interleaving must leave the list and the sharded
        // store in exact agreement at quiescence.
        let c = Arc::new(MutexLru::strict(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut state = t + 9;
                for i in 0..20_000u64 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 300;
                    match i % 3 {
                        0 => c.insert(key, v()),
                        1 => {
                            c.get(key);
                        }
                        _ => {
                            c.remove(key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let audit = c.audit_quiescent();
        assert!(audit.is_clean(0), "audit failed: {audit:?}");
    }

    #[test]
    fn names() {
        assert_eq!(MutexLru::strict(10).name(), "LRU-strict");
        assert_eq!(MutexLru::optimized(10).name(), "LRU-optimized");
    }
}

//! Miss-ratio fidelity of the concurrent S3-FIFO vs the serial policy.
//!
//! The batched hit path defers frequency increments (up to
//! `FLUSH_THRESHOLD` per buffer slot), so an entry's capped counter can lag
//! the serial algorithm at the moment an eviction scan reads it. The claim
//! backing that design is that the lag is behaviorally negligible: on the
//! same Zipf trace the concurrent cache — batched or direct — must stay
//! within 1 % *absolute* miss ratio of the simulation-grade serial S3-FIFO.
//!
//! The replay is single-threaded so both sides see the identical request
//! order; that isolates the *algorithmic* delta (sharded ghosts, ring
//! queues, deferred increments) from scheduler nondeterminism. A
//! multi-threaded companion run asserts the batched path stays in the same
//! ballpark under real interleaving.

use bytes::Bytes;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::ConcurrentCache;
use cache_ds::SplitMix64;
use cache_types::{Policy, Request};
use std::sync::Arc;

const CAPACITY: usize = 1_000;
const OBJECTS: u64 = 10_000;
const ALPHA: f64 = 1.0;
const REQUESTS: usize = 200_000;
const SEED: u64 = 0x5EED_1559;

fn zipf_trace() -> Vec<u64> {
    let mut cdf = Vec::with_capacity(OBJECTS as usize);
    let mut acc = 0.0;
    for i in 1..=OBJECTS {
        acc += 1.0 / (i as f64).powf(ALPHA);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    let mut rng = SplitMix64::new(SEED);
    (0..REQUESTS)
        .map(|_| {
            let u = rng.next_f64();
            let idx = cdf.partition_point(|&c| c < u);
            (idx.min(cdf.len() - 1) + 1) as u64
        })
        .collect()
}

fn serial_miss_ratio(trace: &[u64]) -> f64 {
    let mut policy = s3fifo::S3Fifo::new(CAPACITY as u64).expect("capacity > 0");
    let mut evs = Vec::new();
    let mut misses = 0usize;
    for (t, &key) in trace.iter().enumerate() {
        if policy.request(&Request::get(key, t as u64), &mut evs).is_miss() {
            misses += 1;
        }
    }
    misses as f64 / trace.len() as f64
}

fn concurrent_miss_ratio(cache: &dyn ConcurrentCache, trace: &[u64]) -> f64 {
    let payload = Bytes::from_static(b"miss-ratio-probe");
    let mut misses = 0usize;
    for &key in trace {
        if cache.get(key).is_none() {
            misses += 1;
            cache.insert(key, payload.clone());
        }
    }
    misses as f64 / trace.len() as f64
}

#[test]
fn batched_and_direct_track_serial_within_one_percent() {
    let trace = zipf_trace();
    let serial = serial_miss_ratio(&trace);
    // Sanity: Zipf(1.0) at 10% capacity must land in a plausible band, or
    // the comparison below is vacuous.
    assert!(
        (0.05..0.60).contains(&serial),
        "serial miss ratio {serial:.4} implausible"
    );
    for cache in [
        ConcurrentS3Fifo::new(CAPACITY),
        ConcurrentS3Fifo::direct(CAPACITY),
    ] {
        let name = cache.name();
        let concurrent = concurrent_miss_ratio(&cache, &trace);
        let delta = (concurrent - serial).abs();
        assert!(
            delta < 0.01,
            "{name}: miss ratio {concurrent:.4} vs serial {serial:.4} \
             (delta {delta:.4} >= 1% absolute)"
        );
    }
}

#[test]
fn batched_stays_close_under_real_threads() {
    let trace = zipf_trace();
    let serial = serial_miss_ratio(&trace);
    let cache = Arc::new(ConcurrentS3Fifo::new(CAPACITY));
    let threads = 4;
    let chunk = trace.len() / threads;
    let misses = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let slice = &trace[t * chunk..(t + 1) * chunk];
            handles.push(scope.spawn(move || {
                let payload = Bytes::from_static(b"miss-ratio-probe");
                let mut misses = 0usize;
                for &key in slice {
                    if cache.get(key).is_none() {
                        misses += 1;
                        cache.insert(key, payload.clone());
                    }
                }
                misses
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("replayer panicked"))
            .sum::<usize>()
    });
    let concurrent = misses as f64 / (chunk * threads) as f64;
    // Interleaving (and each thread seeing only a slice) shifts the ratio
    // more than a deterministic replay can, so the band is wider — but a
    // broken batched path (increments lost wholesale, evictions blind to
    // frequency) lands far outside 3%.
    let delta = (concurrent - serial).abs();
    assert!(
        delta < 0.03,
        "threaded batched miss ratio {concurrent:.4} vs serial {serial:.4} \
         (delta {delta:.4} >= 3% absolute)"
    );
}

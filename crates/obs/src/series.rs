//! Windowed miss-ratio timeseries and replay-stage profiles.
//!
//! The paper's Fig. 6 reports *per-window* miss ratios, not just end-of-run
//! totals — that is what exposes phase changes (a scan arriving, a working
//! set rotating) that a single number averages away. [`MissRatioSeries`]
//! accumulates exactly that: fixed-size request windows, each with its own
//! request and miss count, whose sums are required (and tested) to equal
//! the end-of-run totals.
//!
//! [`ReplayProfile`] is the replay loop's side of the story: per-stage
//! operation counts and wall time (intern, replay, aggregate) so a slow
//! simulation can be attributed to a stage instead of guessed at.

use std::time::Duration;

/// One window of a [`MissRatioSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPoint {
    /// Window index (0-based).
    pub window: u64,
    /// Index of the first request in this window.
    pub start_index: u64,
    /// Requests observed in this window.
    pub requests: u64,
    /// Misses among them.
    pub misses: u64,
}

impl WindowPoint {
    /// The window's miss ratio (0 when empty).
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }
}

/// Fixed-window miss-ratio accumulator.
///
/// Feed it one `record` per request; call [`MissRatioSeries::finish`] after
/// the last request to flush the trailing partial window.
#[derive(Debug, Clone)]
pub struct MissRatioSeries {
    window_size: u64,
    points: Vec<WindowPoint>,
    cur_requests: u64,
    cur_misses: u64,
    total_requests: u64,
}

impl MissRatioSeries {
    /// Creates a series with `window_size` requests per window (clamped to
    /// at least 1).
    pub fn new(window_size: u64) -> Self {
        MissRatioSeries {
            window_size: window_size.max(1),
            points: Vec::new(),
            cur_requests: 0,
            cur_misses: 0,
            total_requests: 0,
        }
    }

    /// Requests per window.
    pub fn window_size(&self) -> u64 {
        self.window_size
    }

    /// Records one request outcome.
    #[inline]
    pub fn record(&mut self, miss: bool) {
        self.cur_requests += 1;
        self.total_requests += 1;
        self.cur_misses += u64::from(miss);
        if self.cur_requests == self.window_size {
            self.flush();
        }
    }

    /// Records a whole window's worth of outcomes at once (the dense
    /// chunked-replay path computes these from stats deltas).
    pub fn record_window(&mut self, requests: u64, misses: u64) {
        debug_assert!(misses <= requests, "window misses exceed requests");
        // Split across window boundaries so mixed record()/record_window()
        // use keeps windows exactly `window_size` long.
        let mut requests = requests;
        let mut misses = misses;
        while requests > 0 {
            let room = self.window_size - self.cur_requests;
            let take = requests.min(room);
            // Attribute misses proportionally only when forced to split;
            // aligned callers (take == requests) keep exact counts.
            let take_misses = if take == requests {
                misses
            } else {
                ((misses as u128 * take as u128) / requests as u128) as u64
            };
            self.cur_requests += take;
            self.total_requests += take;
            self.cur_misses += take_misses;
            requests -= take;
            misses -= take_misses;
            if self.cur_requests == self.window_size {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        let start_index = self.total_requests - self.cur_requests;
        self.points.push(WindowPoint {
            window: self.points.len() as u64,
            start_index,
            requests: self.cur_requests,
            misses: self.cur_misses,
        });
        self.cur_requests = 0;
        self.cur_misses = 0;
    }

    /// Flushes the trailing partial window, if any.
    pub fn finish(&mut self) {
        if self.cur_requests > 0 {
            self.flush();
        }
    }

    /// The completed windows.
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }

    /// Sum of misses over all completed windows plus the open one.
    pub fn total_misses(&self) -> u64 {
        self.points.iter().map(|p| p.misses).sum::<u64>() + self.cur_misses
    }

    /// Total requests recorded.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }
}

/// One profiled stage of a replay (e.g. `intern`, `replay`, `aggregate`).
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage name.
    pub stage: &'static str,
    /// Operations the stage processed (requests, evictions, …).
    pub ops: u64,
    /// Wall time spent in the stage, microseconds.
    pub micros: u64,
}

impl StageProfile {
    /// Millions of ops per second (0 for instantaneous stages).
    pub fn mops(&self) -> f64 {
        if self.micros == 0 {
            0.0
        } else {
            self.ops as f64 / self.micros as f64
        }
    }
}

/// Per-stage op counts and timing for one replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayProfile {
    stages: Vec<StageProfile>,
}

impl ReplayProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ReplayProfile::default()
    }

    /// Appends a stage measurement.
    pub fn push(&mut self, stage: &'static str, ops: u64, elapsed: Duration) {
        self.stages.push(StageProfile {
            stage,
            ops,
            micros: elapsed.as_micros() as u64,
        });
    }

    /// The recorded stages, in insertion order.
    pub fn stages(&self) -> &[StageProfile] {
        &self.stages
    }

    /// Total wall micros across stages.
    pub fn total_micros(&self) -> u64 {
        self.stages.iter().map(|s| s.micros).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_stream() {
        let mut s = MissRatioSeries::new(10);
        for i in 0..35u64 {
            s.record(i % 3 == 0);
        }
        s.finish();
        let pts = s.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].requests, 10);
        assert_eq!(pts[3].requests, 5, "trailing partial window");
        assert_eq!(pts.iter().map(|p| p.requests).sum::<u64>(), 35);
        assert_eq!(s.total_misses(), (0..35).filter(|i| i % 3 == 0).count() as u64);
        assert_eq!(pts[1].start_index, 10);
        assert_eq!(pts[1].window, 1);
    }

    #[test]
    fn window_sums_equal_totals() {
        let mut s = MissRatioSeries::new(7);
        let mut misses = 0u64;
        for i in 0..1000u64 {
            let m = (i * 2654435761) % 5 == 0;
            misses += u64::from(m);
            s.record(m);
        }
        s.finish();
        assert_eq!(s.total_misses(), misses);
        assert_eq!(s.total_requests(), 1000);
        assert_eq!(
            s.points().iter().map(|p| p.misses).sum::<u64>(),
            misses,
            "per-window misses must sum to the run total"
        );
    }

    #[test]
    fn record_window_aligned_is_exact() {
        let mut a = MissRatioSeries::new(100);
        let mut b = MissRatioSeries::new(100);
        for chunk in 0..10u64 {
            let misses = chunk * 3;
            a.record_window(100, misses);
            for i in 0..100 {
                b.record(i < misses);
            }
        }
        a.finish();
        b.finish();
        assert_eq!(a.total_misses(), b.total_misses());
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert_eq!(pa.misses, pb.misses);
            assert_eq!(pa.requests, pb.requests);
        }
    }

    #[test]
    fn record_window_split_preserves_totals() {
        let mut s = MissRatioSeries::new(10);
        s.record_window(25, 13);
        s.record_window(15, 2);
        s.finish();
        assert_eq!(s.total_requests(), 40);
        assert_eq!(s.total_misses(), 15, "totals survive window splitting");
        assert_eq!(s.points().len(), 4);
    }

    #[test]
    fn empty_series_is_empty() {
        let mut s = MissRatioSeries::new(10);
        s.finish();
        assert!(s.points().is_empty());
        assert_eq!(s.total_misses(), 0);
    }

    #[test]
    fn miss_ratio_per_window() {
        let p = WindowPoint {
            window: 0,
            start_index: 0,
            requests: 4,
            misses: 1,
        };
        assert!((p.miss_ratio() - 0.25).abs() < 1e-12);
        let empty = WindowPoint {
            window: 0,
            start_index: 0,
            requests: 0,
            misses: 0,
        };
        assert_eq!(empty.miss_ratio(), 0.0);
    }

    #[test]
    fn profile_accumulates_stages() {
        let mut p = ReplayProfile::new();
        p.push("intern", 1000, Duration::from_micros(50));
        p.push("replay", 1000, Duration::from_micros(150));
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.total_micros(), 200);
        assert!(p.stages()[1].mops() > 0.0);
    }
}

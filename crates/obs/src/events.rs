//! Lock-free ring-buffered structured event tracing.
//!
//! Where the metrics registry answers "how many", the tracer answers "what
//! happened, in what order": per-decision eviction/admission/fault/degrade
//! records with logical timestamps, cheap enough to leave on during a
//! workload and drainable *while the workload runs* (the underlying
//! [`MpmcRing`] is the same Vyukov MPMC queue the concurrent S3-FIFO is
//! built from, so producers and the draining consumer never block each
//! other).
//!
//! Backpressure policy: when the ring is full the event is **dropped and
//! counted**, never blocked on — tracing must not perturb the workload it
//! observes. `dropped()` makes the loss visible instead of silent.

use crate::metrics::Counter;
use cache_ds::MpmcRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of decision or transition an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An object left a cache to make room.
    Eviction,
    /// An object was admitted (DRAM insert, flash write, promotion).
    Admission,
    /// A device/IO fault was observed (post-retry).
    Fault,
    /// A tier was taken offline (error budget tripped).
    Degrade,
    /// A tier was re-admitted after probing healthy.
    Recover,
}

impl EventKind {
    /// Stable lowercase label, used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Eviction => "eviction",
            EventKind::Admission => "admission",
            EventKind::Fault => "fault",
            EventKind::Degrade => "degrade",
            EventKind::Recover => "recover",
        }
    }
}

/// One traced event. Compact and `Copy` so recording is a handful of moves
/// plus one ring push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp: the tracer's global sequence number, assigned at
    /// record time. Strictly increasing across all producers, so a drained
    /// batch can be totally ordered even when windows of it were dropped.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which scope it happened in (e.g. `"flash"`, `"sim.s3-fifo"`).
    /// `'static` by design: scopes are compile-time names, keeping the
    /// event `Copy` and the record path allocation-free.
    pub scope: &'static str,
    /// The object involved, when applicable (0 otherwise).
    pub id: u64,
    /// Kind-specific payload: eviction age, fault code, retry count, …
    pub value: u64,
}

/// The ring-buffered tracer. Clone freely; clones share the ring.
#[derive(Debug, Clone)]
pub struct EventTracer {
    ring: Arc<MpmcRing<Event>>,
    seq: Arc<AtomicU64>,
    dropped: Counter,
}

impl EventTracer {
    /// Creates a tracer whose ring holds up to `capacity` undrained events
    /// (rounded up to a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            ring: Arc::new(MpmcRing::new(capacity)),
            seq: Arc::new(AtomicU64::new(0)),
            dropped: Counter::new(),
        }
    }

    /// Records an event; assigns the logical timestamp. Drops (and counts)
    /// the event when the ring is full.
    // ORDERING: Relaxed sequence tick — timestamps must be unique, not
    // globally ordered against other memory; the ring push publishes the
    // event payload itself (Release inside MpmcRing).
    #[inline]
    pub fn record(&self, kind: EventKind, scope: &'static str, id: u64, value: u64) {
        let ts = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            ts,
            kind,
            scope,
            id,
            value,
        };
        if self.ring.push(ev).is_err() {
            self.dropped.inc();
        }
    }

    /// Drains everything currently buffered, oldest first. Safe to call
    /// while producers keep recording; each event is delivered exactly once.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.ring.len());
        while let Some(ev) = self.ring.pop() {
            out.push(ev);
        }
        out
    }

    /// Events recorded so far (including dropped ones).
    // ORDERING: Relaxed — advisory telemetry read.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to a full ring since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Events currently buffered (approximate while producers run).
    pub fn pending(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_timestamps() {
        let t = EventTracer::new(16);
        t.record(EventKind::Admission, "x", 1, 0);
        t.record(EventKind::Eviction, "x", 2, 7);
        let evs = t.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Admission);
        assert_eq!(evs[1].kind, EventKind::Eviction);
        assert!(evs[0].ts < evs[1].ts);
        assert_eq!(evs[1].value, 7);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let t = EventTracer::new(4);
        for i in 0..10 {
            t.record(EventKind::Fault, "x", i, 0);
        }
        assert_eq!(t.dropped(), 10 - t.pending() as u64);
        assert!(t.dropped() > 0, "ring of 4 must drop out of 10");
        assert_eq!(t.recorded(), 10);
        // Drained events are the oldest ones that fit.
        let evs = t.drain();
        assert_eq!(evs[0].id, 0);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    // ORDERING: Relaxed — the tally is a plain counter; the scope join
    // publishes it before the final assert reads it.
    fn drain_while_producing() {
        let t = EventTracer::new(1024);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..2u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..5000 {
                        t.record(EventKind::Eviction, "p", p * 10_000 + i, 0);
                    }
                });
            }
            let t = t.clone();
            let total = &total;
            s.spawn(move || loop {
                let n = t.drain().len() as u64;
                total.fetch_add(n, Ordering::Relaxed);
                if t.recorded() >= 10_000 && t.pending() == 0 {
                    // One final sweep in case the last producer raced us.
                    total.fetch_add(t.drain().len() as u64, Ordering::Relaxed);
                    break;
                }
                std::hint::spin_loop();
            });
        });
        assert_eq!(
            total.load(Ordering::Relaxed) + t.dropped(),
            10_000,
            "every event is either drained exactly once or counted dropped"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::Degrade.label(), "degrade");
        assert_eq!(EventKind::Recover.label(), "recover");
    }
}

//! The always-on metrics registry: cheap atomic counters and gauges plus
//! shared histograms, addressable by dot-joined scope names.
//!
//! Design constraints (this layer rides on every hot path in the workspace):
//!
//! - **Handles are free to use.** A [`Counter`] is an `Arc<AtomicU64>`; one
//!   relaxed `fetch_add` per increment, no registry lookups after creation.
//! - **Registration is the slow path.** Creating or looking up a metric
//!   takes the registry lock once; call sites hold the handle afterwards.
//! - **Snapshots never stop writers.** Reading a counter is a relaxed load;
//!   histograms take a short mutex only while copying 65 buckets.
//!
//! Scopes give every policy/shard/tier its own namespace:
//!
//! ```
//! use cache_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let scope = reg.scope("sim").scope("s3-fifo");
//! let misses = scope.counter("misses");
//! misses.inc();
//! assert_eq!(reg.snapshot()[0].name, "sim.s3-fifo.misses");
//! ```

use cache_ds::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell; increments are relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    // ORDERING: Relaxed — monotonic tally; orders nothing.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    // ORDERING: Relaxed — monotonic tally; orders nothing.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    // ORDERING: Relaxed — reporting read; tolerates skew.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    // ORDERING: Relaxed — last-writer-wins telemetry.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    // ORDERING: Relaxed — telemetry delta; orders nothing.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    // ORDERING: Relaxed — reporting read; tolerates skew.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared log2 [`Histogram`] handle (the `cache-ds` histogram behind a
/// mutex so concurrent recorders and snapshotters coexist).
#[derive(Debug, Clone, Default)]
pub struct SharedHistogram(Arc<Mutex<Histogram>>);

impl SharedHistogram {
    /// Creates a detached histogram (not registered anywhere).
    pub fn new() -> Self {
        SharedHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Copies the current contents out.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Merges another histogram into this one.
    pub fn merge_from(&self, other: &Histogram) {
        self.0.lock().merge(other);
    }
}

/// One registered metric, by kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(SharedHistogram),
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Full dot-joined name, e.g. `"flash.ladder.budget_trips"`.
    pub name: String,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// The value part of a [`MetricSample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram copy (use `count()`/`quantile()` on it). Boxed: a
    /// `Histogram` is ~560 bytes of buckets and would dominate the enum.
    Histogram(Box<Histogram>),
}

/// The metrics registry: a named, threadsafe table of metric cells.
///
/// Cheap to clone (it is an `Arc` internally); all clones share the table.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns a scope rooted at `name` (metrics register as
    /// `name.<metric>`).
    pub fn scope(&self, name: impl Into<String>) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: name.into(),
        }
    }

    fn full_name(prefix: &str, name: &str) -> String {
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    }

    fn counter_at(&self, full: String) -> Counter {
        let mut guard = self.metrics.lock();
        match guard
            .entry(full)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            // Same name, different kind: hand back a detached cell rather
            // than panicking on a hot path; the registered metric wins.
            _ => Counter::new(),
        }
    }

    fn gauge_at(&self, full: String) -> Gauge {
        let mut guard = self.metrics.lock();
        match guard
            .entry(full)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    fn histogram_at(&self, full: String) -> SharedHistogram {
        let mut guard = self.metrics.lock();
        match guard
            .entry(full)
            .or_insert_with(|| Metric::Histogram(SharedHistogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => SharedHistogram::new(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every metric, in name order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.metrics
            .lock()
            .iter()
            .map(|(name, m)| MetricSample {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

/// A named namespace inside a [`MetricsRegistry`].
///
/// Scopes nest (`reg.scope("flash").scope("shard-3")`) and hand out metric
/// handles; keep the handle, not the scope, on hot paths.
#[derive(Debug, Clone)]
pub struct Scope {
    registry: MetricsRegistry,
    prefix: String,
}

impl Scope {
    /// A child scope named `prefix.name`.
    pub fn scope(&self, name: impl AsRef<str>) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: MetricsRegistry::full_name(&self.prefix, name.as_ref()),
        }
    }

    /// This scope's full prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Registers (or retrieves) a counter named `prefix.name`.
    pub fn counter(&self, name: impl AsRef<str>) -> Counter {
        self.registry
            .counter_at(MetricsRegistry::full_name(&self.prefix, name.as_ref()))
    }

    /// Registers (or retrieves) a gauge named `prefix.name`.
    pub fn gauge(&self, name: impl AsRef<str>) -> Gauge {
        self.registry
            .gauge_at(MetricsRegistry::full_name(&self.prefix, name.as_ref()))
    }

    /// Registers (or retrieves) a histogram named `prefix.name`.
    pub fn histogram(&self, name: impl AsRef<str>) -> SharedHistogram {
        self.registry
            .histogram_at(MetricsRegistry::full_name(&self.prefix, name.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_count() {
        let reg = MetricsRegistry::new();
        let c = reg.scope("a").counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cell.
        let again = reg.scope("a").counter("hits");
        again.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn scopes_nest_with_dots() {
        let reg = MetricsRegistry::new();
        let shard = reg.scope("cc").scope("shard-07");
        shard.counter("hits").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "cc.shard-07.hits");
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.scope("x").gauge("level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histograms_snapshot() {
        let reg = MetricsRegistry::new();
        let h = reg.scope("x").histogram("lat");
        h.record(5);
        h.record(500);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(5));
        assert_eq!(snap.max(), Some(500));
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = MetricsRegistry::new();
        reg.scope("b").counter("z");
        reg.scope("a").counter("y");
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a.y".to_string(), "b.z".to_string()]);
    }

    #[test]
    fn kind_conflict_returns_detached_cell() {
        let reg = MetricsRegistry::new();
        let c = reg.scope("x").counter("v");
        c.inc();
        // Asking for the same name as a gauge must not panic or clobber.
        let g = reg.scope("x").gauge("v");
        g.set(99);
        assert_eq!(c.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(matches!(snap[0].value, SampleValue::Counter(1)));
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let reg = MetricsRegistry::new();
        let c = reg.scope("t").counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}

//! `cache-obs` — the workspace's observability substrate.
//!
//! The paper's entire evaluation is telemetry: per-window miss-ratio curves
//! (Fig. 6), frequency-at-eviction and eviction-age distributions (Fig. 4 /
//! Fig. 10), throughput and degradation behavior under faults (Fig. 8 /
//! Fig. 9). This crate makes that data a first-class layer instead of
//! ad-hoc scraping per binary:
//!
//! - [`metrics`] — an always-on registry of atomic counters/gauges and
//!   shared log2 histograms with dot-scoped names (`flash.ladder.retries`,
//!   `cc.shard-07.hits`). Handles are lock-free to use; the registry lock
//!   is only taken at registration and snapshot time.
//! - [`events`] — a lock-free ring-buffered structured tracer (the same
//!   Vyukov MPMC ring as `cache_ds::MpmcRing`) recording per-decision
//!   eviction/admission/fault/degrade/recover events with logical
//!   timestamps, drainable without stopping the workload. Full-ring events
//!   are dropped and *counted*, never blocked on.
//! - [`series`] — fixed-window miss-ratio timeseries ([`MissRatioSeries`])
//!   whose per-window sums must equal end-of-run totals, plus per-stage
//!   replay profiles ([`ReplayProfile`]).
//! - [`export`] — JSON-lines and Prometheus text renderers for all of the
//!   above.
//!
//! Consumers: `cache-sim` (windowed observer + replay profiling),
//! `cache-concurrent` (per-shard aggregation), `cache-flash` (degradation
//! ladder telemetry), `cache-trace` (lossy-read skip accounting), and the
//! `obs_dump` bench binary that exercises the whole pipeline in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod metrics;
pub mod series;

pub use events::{Event, EventKind, EventTracer};
pub use export::{
    events_to_json_lines, metrics_to_json_lines, metrics_to_prometheus, registry_to_json_lines,
    registry_to_prometheus, series_to_json_lines,
};
pub use metrics::{Counter, Gauge, MetricSample, MetricsRegistry, SampleValue, Scope, SharedHistogram};
pub use series::{MissRatioSeries, ReplayProfile, StageProfile, WindowPoint};

//! Exporters: JSON-lines for tooling and the Prometheus text exposition
//! format for scrapers.
//!
//! Both formats are generated with plain string building (the workspace has
//! no serde); every emitted name/label goes through an escaper so corrupt
//! trace names or odd scope strings cannot break the framing.

use crate::events::Event;
use crate::metrics::{MetricSample, MetricsRegistry, SampleValue};
use crate::series::MissRatioSeries;
use cache_ds::Histogram;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hist_fields(h: &Histogram) -> String {
    // Empty histograms export explicit nulls rather than sentinel values —
    // the distinction the Histogram::min()/max() Option API exists for.
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
    format!(
        "\"count\":{},\"mean\":{:.6},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
        h.count(),
        h.mean(),
        opt(h.min()),
        opt(h.max()),
        opt(h.quantile(0.50)),
        opt(h.quantile(0.90)),
        opt(h.quantile(0.99)),
    )
}

/// One JSON object per metric, one per line.
pub fn metrics_to_json_lines(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let name = json_escape(&s.name);
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}\n"
                ));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"type\":\"histogram\",\"name\":\"{name}\",{}}}\n",
                    hist_fields(h)
                ));
            }
        }
    }
    out
}

/// One JSON object per traced event, one per line.
pub fn events_to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"type\":\"event\",\"ts\":{},\"kind\":\"{}\",\"scope\":\"{}\",\"id\":{},\"value\":{}}}\n",
            e.ts,
            e.kind.label(),
            json_escape(e.scope),
            e.id,
            e.value
        ));
    }
    out
}

/// One JSON object per timeseries window, one per line. `series_name` tags
/// the points (e.g. the policy name).
pub fn series_to_json_lines(series_name: &str, series: &MissRatioSeries) -> String {
    let name = json_escape(series_name);
    let mut out = String::new();
    for p in series.points() {
        out.push_str(&format!(
            "{{\"type\":\"window\",\"series\":\"{name}\",\"window\":{},\"start_index\":{},\
             \"requests\":{},\"misses\":{},\"miss_ratio\":{:.6}}}\n",
            p.window,
            p.start_index,
            p.requests,
            p.misses,
            p.miss_ratio()
        ));
    }
    out
}

/// Everything the registry holds as one JSON-lines document.
pub fn registry_to_json_lines(registry: &MetricsRegistry) -> String {
    metrics_to_json_lines(&registry.snapshot())
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else becomes
/// an underscore, and a leading digit gets a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders metric samples in the Prometheus text exposition format.
///
/// Histograms export as `<name>_count`, `<name>_sum`-less summaries with
/// `quantile` labels (the gauge-style summary convention), since the log2
/// buckets do not map onto Prometheus' cumulative `le` buckets exactly.
pub fn metrics_to_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let name = prom_name(&s.name);
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                out.push_str(&format!("{name}_count {}\n", h.count()));
                out.push_str(&format!("{name}_mean {:.6}\n", h.mean()));
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    if let Some(v) = h.quantile(q) {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {v}\n"
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Renders the whole registry in the Prometheus text format.
pub fn registry_to_prometheus(registry: &MetricsRegistry) -> String {
    metrics_to_prometheus(&registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, EventTracer};

    #[test]
    fn json_lines_cover_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.scope("a").counter("c").add(3);
        reg.scope("a").gauge("g").set(-2);
        let h = reg.scope("a").histogram("h");
        h.record(10);
        let text = registry_to_json_lines(&reg);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"counter\"") && lines[0].contains("\"value\":3"));
        assert!(lines[1].contains("\"type\":\"gauge\"") && lines[1].contains("-2"));
        assert!(lines[2].contains("\"type\":\"histogram\"") && lines[2].contains("\"count\":1"));
    }

    #[test]
    fn empty_histogram_exports_nulls_not_sentinels() {
        let reg = MetricsRegistry::new();
        reg.scope("x").histogram("empty");
        let text = registry_to_json_lines(&reg);
        assert!(text.contains("\"min\":null"), "{text}");
        assert!(text.contains("\"max\":null"), "{text}");
        assert!(
            !text.contains(&u64::MAX.to_string()),
            "empty histogram must not leak the u64::MAX sentinel: {text}"
        );
    }

    #[test]
    fn json_escapes_hostile_names() {
        let reg = MetricsRegistry::new();
        reg.scope("bad\"name\\with\nnewline").counter("c");
        let text = registry_to_json_lines(&reg);
        assert!(text.contains("bad\\\"name\\\\with\\nnewline"));
        // Still exactly one line per metric.
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn events_export_with_order() {
        let t = EventTracer::new(8);
        t.record(EventKind::Degrade, "flash", 0, 42);
        t.record(EventKind::Recover, "flash", 0, 43);
        let text = events_to_json_lines(&t.drain());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"degrade\""));
        assert!(lines[1].contains("\"kind\":\"recover\""));
    }

    #[test]
    fn series_export_has_ratio() {
        let mut s = MissRatioSeries::new(2);
        s.record(true);
        s.record(false);
        s.finish();
        let text = series_to_json_lines("LRU", &s);
        assert!(text.contains("\"series\":\"LRU\""));
        assert!(text.contains("\"miss_ratio\":0.5"));
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let reg = MetricsRegistry::new();
        reg.scope("sim.s3-fifo").counter("misses").inc();
        let text = registry_to_prometheus(&reg);
        assert!(text.contains("# TYPE sim_s3_fifo_misses counter"));
        assert!(text.contains("sim_s3_fifo_misses 1"));
    }

    #[test]
    fn prometheus_summary_for_histograms() {
        let reg = MetricsRegistry::new();
        let h = reg.scope("lat").histogram("retry");
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        let text = registry_to_prometheus(&reg);
        assert!(text.contains("# TYPE lat_retry summary"));
        assert!(text.contains("lat_retry_count 4"));
        assert!(text.contains("lat_retry{quantile=\"0.5\"}"));
    }

    #[test]
    fn prometheus_leading_digit_prefixed() {
        assert_eq!(prom_name("2q.hits"), "_2q_hits");
    }
}

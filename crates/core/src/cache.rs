//! A standalone S3-FIFO keyed cache for applications.
//!
//! [`S3FifoCache`] is the artifact a downstream user adopts: a bounded
//! `K → V` map with S3-FIFO eviction. Unlike the simulation policy in
//! [`crate::policy`], the ghost queue here is the paper's §4.2
//! production design — a bucketed hash table of 4-byte fingerprints with
//! insertion-sequence expiry ([`cache_ds::GhostTable`]) — so ghost memory is
//! a few bytes per entry regardless of key size.
//!
//! # Examples
//!
//! ```
//! use s3fifo::S3FifoCache;
//!
//! let mut cache: S3FifoCache<&str, u32> = S3FifoCache::new(100).unwrap();
//! cache.insert("answer", 42);
//! assert_eq!(cache.get(&"answer"), Some(&42));
//! assert_eq!(cache.get(&"missing"), None);
//! ```

use cache_ds::{DList, FxBuildHasher, GhostTable, Handle};
use cache_types::CacheError;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Small,
    Main,
}

struct Entry<V> {
    value: V,
    handle: Handle,
    loc: Loc,
    freq: u8,
    weight: u32,
}

/// Counters exposed by [`S3FifoCache::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that did not find the key.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions routed directly to the main queue by a ghost hit.
    pub ghost_admissions: u64,
}

/// A bounded map with S3-FIFO eviction.
///
/// Capacity is a total *weight* budget; plain [`S3FifoCache::insert`] gives
/// every entry weight 1 (capacity = entry count), while
/// [`S3FifoCache::insert_weighted`] supports byte-sized entries. Hits only
/// bump a two-bit counter, so `get` takes `&mut self` solely for that
/// counter; there is no list reordering on the hit path (the paper's "lazy
/// promotion").
pub struct S3FifoCache<K, V, S = FxBuildHasher> {
    capacity: usize,
    s_capacity: usize,
    used: usize,
    small_used: usize,
    table: HashMap<K, Entry<V>, S>,
    small: DList<K>,
    main: DList<K>,
    ghost: GhostTable,
    hasher: S,
    metrics: CacheMetrics,
}

impl<K: Hash + Eq + Clone, V> S3FifoCache<K, V> {
    /// Creates a cache holding up to `capacity` entries, 10 % of which are
    /// budgeted to the small probationary queue.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, CacheError> {
        Self::with_small_ratio(capacity, 0.1)
    }

    /// Creates a cache with an explicit small-queue fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when `capacity == 0` or `small_ratio` is not
    /// in `(0, 1)`.
    pub fn with_small_ratio(capacity: usize, small_ratio: f64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(small_ratio > 0.0 && small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {small_ratio}"
            )));
        }
        let s_capacity = ((capacity as f64 * small_ratio).round() as usize).max(1);
        let m_capacity = capacity.saturating_sub(s_capacity).max(1);
        Ok(S3FifoCache {
            capacity,
            s_capacity,
            used: 0,
            small_used: 0,
            table: HashMap::with_capacity_and_hasher(
                capacity.min(1 << 20),
                FxBuildHasher::default(),
            ),
            small: DList::with_capacity(s_capacity + 1),
            main: DList::with_capacity(m_capacity + 1),
            ghost: GhostTable::new(m_capacity),
            hasher: FxBuildHasher::default(),
            metrics: CacheMetrics::default(),
        })
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher> S3FifoCache<K, V, S> {
    fn ghost_key(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    /// True when `key` is cached (does not touch frequency).
    pub fn contains(&self, key: &K) -> bool {
        self.table.contains_key(key)
    }

    /// Looks up `key`, bumping its two-bit frequency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.table.get_mut(key) {
            Some(e) => {
                e.freq = (e.freq + 1).min(3);
                self.metrics.hits += 1;
                Some(&e.value)
            }
            None => {
                self.metrics.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without recording a hit or bumping frequency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.table.get(key).map(|e| &e.value)
    }

    /// Inserts `key → value` at weight 1, evicting as needed. Returns the
    /// previous value when the key was already cached (the entry keeps its
    /// queue position).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.insert_weighted(key, value, 1)
    }

    /// Inserts `key → value` charging `weight` units against the capacity
    /// (e.g. the entry's size in bytes when the capacity is a byte budget).
    /// Entries heavier than the whole cache are not admitted. An overwrite
    /// re-charges the new weight in place.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: u32) -> Option<V> {
        let weight = (weight.max(1) as usize).min(usize::MAX / 2);
        if weight > self.capacity {
            // Uncacheable; drop any stale version of the key.
            self.remove(&key);
            return None;
        }
        if let Some(e) = self.table.get_mut(&key) {
            e.freq = (e.freq + 1).min(3);
            let old_weight = e.weight as usize;
            e.weight = weight as u32;
            let loc = e.loc;
            let old = std::mem::replace(&mut e.value, value);
            self.used = self.used - old_weight + weight;
            if loc == Loc::Small {
                self.small_used = self.small_used - old_weight + weight;
            }
            while self.used > self.capacity {
                self.evict();
            }
            return Some(old);
        }
        while self.used + weight > self.capacity {
            self.evict();
        }
        let gk = self.ghost_key(&key);
        let (handle, loc) = if self.ghost.remove(gk) {
            self.metrics.ghost_admissions += 1;
            (self.main.push_front(key.clone()), Loc::Main)
        } else {
            self.small_used += weight;
            (self.small.push_front(key.clone()), Loc::Small)
        };
        self.used += weight;
        self.table.insert(
            key,
            Entry {
                value,
                handle,
                loc,
                freq: 0,
                weight: weight as u32,
            },
        );
        None
    }

    /// Total weight currently charged against the capacity.
    pub fn used_weight(&self) -> usize {
        self.used
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let entry = self.table.remove(key)?;
        self.used -= entry.weight as usize;
        match entry.loc {
            Loc::Small => {
                self.small_used -= entry.weight as usize;
                self.small.remove(entry.handle)
            }
            Loc::Main => self.main.remove(entry.handle),
        };
        Some(entry.value)
    }

    /// Evicts exactly one entry (no-op on an empty cache).
    fn evict(&mut self) {
        if self.small_used >= self.s_capacity || self.main.is_empty() {
            self.evict_small();
        } else {
            self.evict_main();
        }
    }

    fn evict_small(&mut self) {
        while let Some(tail_key) = self.small.back().cloned() {
            let freq = self.table[&tail_key].freq;
            if freq > 1 {
                // Promote to M with cleared access bits.
            // Invariant: queue membership and table entries are updated
            // together under &mut self, so a queued key is always in the
            // table (freq was just read through it above).
                let entry = self.table.get_mut(&tail_key).expect("entry exists");
                let old = entry.handle;
                let w = entry.weight as usize;
                self.small.remove(old);
                self.small_used -= w;
                let h = self.main.push_front(tail_key.clone());
                // Invariant: tail_key stays tabled across the queue move.
                let entry = self.table.get_mut(&tail_key).expect("entry exists");
                entry.handle = h;
                entry.loc = Loc::Main;
                entry.freq = 0;
            } else {
            // Invariant: queue membership and table entries are updated
            // together under &mut self, so a queued key is always in the
            // table (freq was just read through it above).
                let entry = self.table.remove(&tail_key).expect("entry exists");
                self.small.remove(entry.handle);
                self.small_used -= entry.weight as usize;
                self.used -= entry.weight as usize;
                let gk = self.hasher.hash_one(&tail_key);
                self.ghost.insert(gk);
                self.metrics.evictions += 1;
                return;
            }
        }
        self.evict_main();
    }

    fn evict_main(&mut self) {
        while let Some(tail_key) = self.main.back().cloned() {
            let freq = self.table[&tail_key].freq;
            if freq > 0 {
            // Invariant: queue membership and table entries are updated
            // together under &mut self, so a queued key is always in the
            // table (freq was just read through it above).
                let entry = self.table.get_mut(&tail_key).expect("entry exists");
                let h = entry.handle;
                entry.freq -= 1;
                self.main.move_to_front(h);
            } else {
            // Invariant: queue membership and table entries are updated
            // together under &mut self, so a queued key is always in the
            // table (freq was just read through it above).
                let entry = self.table.remove(&tail_key).expect("entry exists");
                self.main.remove(entry.handle);
                self.used -= entry.weight as usize;
                self.metrics.evictions += 1;
                return;
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher> std::fmt::Debug for S3FifoCache<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("S3FifoCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("small_len", &self.small.len())
            .field("main_len", &self.main.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_get_insert() {
        let mut c: S3FifoCache<u64, String> = S3FifoCache::new(10).unwrap();
        assert!(c.is_empty());
        c.insert(1, "one".to_string());
        assert_eq!(c.get(&1), Some(&"one".to_string()));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
        let m = c.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 1);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(S3FifoCache::<u64, u64>::new(0).is_err());
        assert!(S3FifoCache::<u64, u64>::with_small_ratio(10, 0.0).is_err());
    }

    #[test]
    fn insert_replaces_value() {
        let mut c: S3FifoCache<&str, u32> = S3FifoCache::new(4).unwrap();
        assert_eq!(c.insert("k", 1), None);
        assert_eq!(c.insert("k", 2), Some(1));
        assert_eq!(c.peek(&"k"), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(16).unwrap();
        for i in 0..1000 {
            c.insert(i, i);
            assert!(c.len() <= 16);
        }
        assert!(c.metrics().evictions >= 1000 - 16);
    }

    #[test]
    fn remove_works() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(4).unwrap();
        c.insert(1, 10);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_bump_frequency() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(100).unwrap();
        c.insert(1, 1);
        for _ in 0..5 {
            assert_eq!(c.peek(&1), Some(&1));
        }
        assert_eq!(c.metrics().hits, 0);
    }

    #[test]
    fn hot_keys_survive_scan() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(100).unwrap();
        // Establish hot keys with multiple accesses.
        for k in 0..5u64 {
            c.insert(k, k);
        }
        for _ in 0..3 {
            for k in 0..5u64 {
                c.get(&k);
            }
        }
        // Scan 10x the cache size of cold keys.
        for k in 1000..2000u64 {
            c.insert(k, k);
        }
        let survivors = (0..5u64).filter(|k| c.contains(k)).count();
        assert_eq!(survivors, 5, "hot keys must survive a scan");
    }

    #[test]
    fn ghost_readmission_goes_to_main() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(50).unwrap();
        for k in 0..100u64 {
            c.insert(k, k);
        }
        // Keys were evicted through S into the ghost; re-inserting the most
        // recently evicted one (still inside the ghost window) must be
        // recorded as a ghost admission.
        let evicted_key = (0..100u64).rev().find(|k| !c.contains(k)).unwrap();
        c.insert(evicted_key, 0);
        assert!(c.metrics().ghost_admissions >= 1);
    }

    #[test]
    fn string_keys_work() {
        let mut c: S3FifoCache<String, Vec<u8>> = S3FifoCache::new(8).unwrap();
        for i in 0..20 {
            c.insert(format!("key-{i}"), vec![i as u8; 4]);
        }
        assert!(c.len() <= 8);
    }

    #[test]
    fn debug_format_mentions_capacity() {
        let c: S3FifoCache<u64, u64> = S3FifoCache::new(7).unwrap();
        let s = format!("{c:?}");
        assert!(s.contains("capacity: 7"));
    }

    #[test]
    fn weighted_entries_respect_budget() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(100).unwrap();
        for i in 0..50u64 {
            c.insert_weighted(i, i, 30);
            assert!(c.used_weight() <= 100, "weight {} > 100", c.used_weight());
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn oversized_weighted_entry_rejected() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(10).unwrap();
        c.insert_weighted(1, 1, 50);
        assert!(!c.contains(&1));
        assert_eq!(c.used_weight(), 0);
    }

    #[test]
    fn overwrite_recharges_weight() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(100).unwrap();
        c.insert_weighted(1, 1, 10);
        assert_eq!(c.used_weight(), 10);
        c.insert_weighted(1, 2, 60);
        assert_eq!(c.used_weight(), 60);
        assert_eq!(c.peek(&1), Some(&2));
        c.remove(&1);
        assert_eq!(c.used_weight(), 0);
    }

    #[test]
    fn mixed_weights_never_exceed_capacity() {
        let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(64).unwrap();
        let mut state = 5u64;
        for i in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 300;
            let w = 1 + ((state >> 20) % 16) as u32;
            c.insert_weighted(key, i, w);
            assert!(c.used_weight() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random op sequences keep the cache within capacity, keep the
        /// metrics consistent, and never lose a just-inserted key.
        #[test]
        fn random_ops_preserve_invariants(
            ops in proptest::collection::vec((0u8..3, 0u64..200), 1..600),
            cap in 4usize..64,
        ) {
            let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(cap).unwrap();
            for (op, key) in ops {
                match op {
                    0 => {
                        c.insert(key, key * 2);
                        prop_assert_eq!(c.peek(&key), Some(&(key * 2)));
                    }
                    1 => {
                        if let Some(&v) = c.get(&key) {
                            prop_assert_eq!(v, key * 2);
                        }
                    }
                    _ => {
                        c.remove(&key);
                        prop_assert!(!c.contains(&key));
                    }
                }
                prop_assert!(c.len() <= cap, "len {} > cap {}", c.len(), cap);
            }
            let m = c.metrics();
            prop_assert!(m.hits + m.misses >= 1 || m.evictions == 0 || true);
        }

        /// `get` and `peek` agree on values; `get` counts, `peek` does not.
        #[test]
        fn get_peek_agree(keys in proptest::collection::vec(0u64..50, 1..200)) {
            let mut c: S3FifoCache<u64, u64> = S3FifoCache::new(100).unwrap();
            for &k in &keys {
                c.insert(k, k + 1);
            }
            let hits_before = c.metrics().hits;
            for &k in &keys {
                let p = c.peek(&k).copied();
                let g = c.get(&k).copied();
                prop_assert_eq!(p, g);
            }
            prop_assert!(c.metrics().hits > hits_before);
        }
    }
}

//! S3-FIFO: the eviction algorithm from *FIFO queues are all you need for
//! cache eviction* (SOSP '23).
//!
//! S3-FIFO keeps three static FIFO queues:
//!
//! - a **small** probationary queue `S` (10 % of the cache by default) that
//!   quickly demotes one-hit wonders,
//! - a **main** queue `M` (the remaining 90 %) evicted with two-bit
//!   FIFO-reinsertion, and
//! - a **ghost** queue `G` remembering the identities (no data) of objects
//!   recently evicted from `S`, sized to as many entries as `M` holds.
//!
//! New objects enter `S` unless their id is in `G`, in which case they go
//! straight to `M`. When `S` is full, its tail either moves to `M` (if it was
//! accessed more than once, per Algorithm 1's `freq > 1` test) or falls into
//! `G`. Hits only bump a two-bit counter capped at 3 — no promotion, no lock.
//!
//! This crate provides:
//!
//! - [`S3Fifo`] — the simulation-grade policy implementing Algorithm 1
//!   exactly (exact id-based ghost queue, byte-weighted capacities);
//! - [`S3FifoD`] — the adaptive-queue-size variant of §6.2.2;
//! - [`ablation::Qdlp`] — the §6.3 queue-type ablation (LRU vs FIFO for `S`
//!   and `M`, promotion on hit vs at eviction);
//! - [`S3FifoCache`] — a standalone `K → V` cache for applications, using
//!   the paper's §4.2 bucketed-fingerprint ghost table.
//!
//! # Examples
//!
//! ```
//! use cache_types::{Policy, Request};
//! use s3fifo::S3Fifo;
//!
//! let mut cache = S3Fifo::new(100).unwrap();
//! let mut evicted = Vec::new();
//! let miss = cache.request(&Request::get(1, 0), &mut evicted);
//! assert!(miss.is_miss());
//! let hit = cache.request(&Request::get(1, 1), &mut evicted);
//! assert!(hit.is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adaptive;
pub mod cache;
pub mod policy;

pub use ablation::{Qdlp, QdlpConfig, QueueKind};
pub use adaptive::S3FifoD;
pub use cache::S3FifoCache;
pub use policy::{S3Fifo, S3FifoConfig};

//! The S3-FIFO eviction policy (Algorithm 1 of the paper).
//!
//! This is the simulation-grade implementation: the ghost queue is an exact
//! id-based FIFO (no fingerprint collisions) so that miss ratios are
//! bit-reproducible; the production-style fingerprint ghost lives in
//! [`crate::cache`].

use cache_ds::{DList, Handle, IdMap, IdSet};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::VecDeque;

/// Which data queue an entry currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    handle: Handle,
    queue: Queue,
    size: u32,
    /// Two-bit access counter, capped at 3 (§4.1 "similar to a capped
    /// counter with frequency up to 3").
    freq: u8,
    /// Total hits since insertion, for eviction reporting (not used by the
    /// algorithm itself, which only sees the capped `freq`).
    hits: u32,
    insert_time: u64,
    last_access: u64,
}

/// Configuration for [`S3Fifo`].
#[derive(Debug, Clone, Copy)]
pub struct S3FifoConfig {
    /// Fraction of the cache devoted to the small queue `S` (paper default
    /// 0.1; Fig. 11 sweeps 0.01–0.40).
    pub small_ratio: f64,
    /// Ghost capacity as a multiple of the main queue's byte capacity
    /// (paper: "the same number of ghost entries as M", i.e. 1.0).
    pub ghost_ratio: f64,
    /// Minimum capped frequency (exclusive) for the small-queue tail to be
    /// promoted to `M` instead of falling into the ghost (Algorithm 1 line
    /// 18: `t.freq > 1`).
    pub promote_threshold: u8,
}

impl Default for S3FifoConfig {
    fn default() -> Self {
        S3FifoConfig {
            small_ratio: 0.1,
            ghost_ratio: 1.0,
            promote_threshold: 1,
        }
    }
}

/// Exact id-based ghost FIFO used by the simulation policies.
///
/// Holds up to `capacity` bytes worth of ghost entries (each entry charged
/// its object size, so with unit-size objects this is "as many entries as fit
/// in M", matching §4.1).
#[derive(Debug, Default)]
pub(crate) struct GhostFifo {
    fifo: VecDeque<(ObjId, u32)>,
    set: IdSet,
    used: u64,
    capacity: u64,
}

impl GhostFifo {
    pub(crate) fn new(capacity: u64) -> Self {
        GhostFifo {
            fifo: VecDeque::new(),
            set: IdSet::default(),
            used: 0,
            capacity,
        }
    }

    pub(crate) fn contains(&self, id: ObjId) -> bool {
        self.set.contains(&id)
    }

    /// Inserts `id`; evicts oldest entries beyond capacity.
    ///
    /// Re-inserting an id already in the ghost does not refresh its FIFO
    /// position (a FIFO queue has no promotion).
    pub(crate) fn insert(&mut self, id: ObjId, size: u32) {
        if self.capacity == 0 {
            return;
        }
        if self.set.insert(id) {
            self.fifo.push_back((id, size));
            self.used += u64::from(size);
        }
        while self.used > self.capacity {
            if let Some((old, sz)) = self.fifo.pop_front() {
                // `used` charges every FIFO entry, including tombstones left
                // by `remove`, so the subtraction is unconditional.
                self.used -= u64::from(sz);
                self.set.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Removes `id` if present (resurrection into `M`). The FIFO slot stays
    /// behind as a tombstone and is reclaimed when it reaches the front.
    pub(crate) fn remove(&mut self, id: ObjId) -> bool {
        self.set.remove(&id)
    }

    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }

    /// Bytes currently charged to the FIFO window (tombstones included).
    pub(crate) fn used(&self) -> u64 {
        self.used
    }

    /// Byte capacity of the window.
    pub(crate) fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Adjusts the window size; existing entries expire against the new
    /// capacity on the next insertion.
    pub(crate) fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }
}

/// The S3-FIFO eviction policy.
#[derive(Debug)]
pub struct S3Fifo {
    capacity: u64,
    s_capacity: u64,
    m_capacity: u64,
    cfg: S3FifoConfig,

    table: IdMap<Entry>,
    /// Small queue; head = most recent insert, tail = next eviction.
    small: DList<ObjId>,
    /// Main queue, same orientation.
    main: DList<ObjId>,
    ghost: GhostFifo,

    s_used: u64,
    m_used: u64,
    stats: PolicyStats,
    /// Objects inserted into `M` directly due to a ghost hit.
    ghost_hits: u64,
}

impl S3Fifo {
    /// Creates an S3-FIFO cache with default parameters (S = 10 %).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        Self::with_config(capacity, S3FifoConfig::default())
    }

    /// Creates an S3-FIFO cache with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the capacity is zero or the small-queue
    /// ratio is outside `(0, 1)`.
    pub fn with_config(capacity: u64, cfg: S3FifoConfig) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(cfg.small_ratio > 0.0 && cfg.small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {}",
                cfg.small_ratio
            )));
        }
        if cfg.ghost_ratio < 0.0 {
            return Err(CacheError::InvalidParameter(
                "ghost_ratio must be >= 0".into(),
            ));
        }
        let s_capacity = ((capacity as f64 * cfg.small_ratio).round() as u64).max(1);
        let m_capacity = capacity.saturating_sub(s_capacity).max(1);
        let ghost_cap = (m_capacity as f64 * cfg.ghost_ratio).round() as u64;
        Ok(S3Fifo {
            capacity,
            s_capacity,
            m_capacity,
            cfg,
            table: IdMap::default(),
            small: DList::new(),
            main: DList::new(),
            ghost: GhostFifo::new(ghost_cap),
            s_used: 0,
            m_used: 0,
            stats: PolicyStats::default(),
            ghost_hits: 0,
        })
    }

    /// Byte capacity of the small queue.
    pub fn small_capacity(&self) -> u64 {
        self.s_capacity
    }

    /// Byte capacity of the main queue.
    pub fn main_capacity(&self) -> u64 {
        self.m_capacity
    }

    /// Number of ghost entries currently tracked.
    pub fn ghost_len(&self) -> usize {
        self.ghost.len()
    }

    /// Number of misses that hit in the ghost queue (inserted directly to M).
    pub fn ghost_hits(&self) -> u64 {
        self.ghost_hits
    }

    /// Rebalances the S/M split to give `s_capacity` bytes to the small
    /// queue (used by the adaptive variant, §6.2.2). The ghost window tracks
    /// the new main capacity. Queues shrink lazily through future evictions.
    pub(crate) fn set_small_capacity(&mut self, s_capacity: u64) {
        // Both queues keep a one-byte floor even at capacity 1, exactly like
        // the constructor (`clamp(1, capacity - 1)` would panic there).
        let s = s_capacity.clamp(1, self.capacity.saturating_sub(1).max(1));
        self.s_capacity = s;
        self.m_capacity = self.capacity.saturating_sub(s).max(1);
        self.ghost
            .set_capacity((self.m_capacity as f64 * self.cfg.ghost_ratio).round() as u64);
    }

    fn used_total(&self) -> u64 {
        self.s_used + self.m_used
    }

    /// Evicts one object from `S`: the tail moves to `M` when its capped
    /// frequency exceeds the promote threshold, otherwise it becomes a ghost
    /// (Algorithm 1, `EVICTS`).
    fn evict_small(&mut self, now: u64, evicted: &mut Vec<Eviction>) {
        while let Some(&tail_id) = self.small.back() {
            // Invariant: every id on queue S has a table entry; both are
            // updated together under the same &mut self.
            let entry = *self.table.get(&tail_id).expect("small tail in table");
            debug_assert_eq!(entry.queue, Queue::Small);
            if entry.freq > self.cfg.promote_threshold {
                // Move to M; access bits are cleared during the move (§4.1).
                self.small.remove(entry.handle);
                self.s_used -= u64::from(entry.size);
                let h = self.main.push_front(tail_id);
                // Invariant: tail_id's entry was just read above; nothing
                // between removed it.
                let e = self.table.get_mut(&tail_id).expect("entry exists");
                e.handle = h;
                e.queue = Queue::Main;
                e.freq = 0;
                self.m_used += u64::from(entry.size);
                if self.m_used > self.m_capacity {
                    self.evict_main(now, evicted);
                }
            } else {
                self.small.remove(entry.handle);
                self.s_used -= u64::from(entry.size);
                self.table.remove(&tail_id);
                self.ghost.insert(tail_id, entry.size);
                self.stats.evictions += 1;
                evicted.push(Eviction {
                    id: tail_id,
                    size: entry.size,
                    insert_time: entry.insert_time,
                    last_access_time: entry.last_access,
                    freq: entry.hits,
                    from_probationary: true,
                });
                return;
            }
        }
        // S drained without evicting anything: fall back to M.
        if !self.main.is_empty() {
            self.evict_main(now, evicted);
        }
    }

    /// Evicts one object from `M` with two-bit FIFO-reinsertion
    /// (Algorithm 1, `EVICTM`).
    fn evict_main(&mut self, _now: u64, evicted: &mut Vec<Eviction>) {
        while let Some(&tail_id) = self.main.back() {
            // Invariant: every id on queue M has a table entry; both are
            // updated together under the same &mut self.
            let entry = *self.table.get(&tail_id).expect("main tail in table");
            debug_assert_eq!(entry.queue, Queue::Main);
            if entry.freq > 0 {
                // Reinsert at the head with frequency decreased by one.
                self.main.move_to_front(entry.handle);
                // Invariant: tail_id's entry was just read above; nothing
                // between removed it.
                let e = self.table.get_mut(&tail_id).expect("entry exists");
                e.freq -= 1;
            } else {
                self.main.remove(entry.handle);
                self.m_used -= u64::from(entry.size);
                self.table.remove(&tail_id);
                self.stats.evictions += 1;
                evicted.push(Eviction {
                    id: tail_id,
                    size: entry.size,
                    insert_time: entry.insert_time,
                    last_access_time: entry.last_access,
                    freq: entry.hits,
                    from_probationary: false,
                });
                return;
            }
        }
    }

    /// Frees space until `need` more bytes fit (Algorithm 1, `INSERT`'s
    /// eviction loop): evict from `S` when it is at or over target (or `M` is
    /// empty), otherwise from `M`.
    fn make_room(&mut self, need: u32, now: u64, evicted: &mut Vec<Eviction>) {
        while self.used_total() + u64::from(need) > self.capacity {
            if self.s_used >= self.s_capacity || self.main.is_empty() {
                self.evict_small(now, evicted);
            } else {
                self.evict_main(now, evicted);
            }
            if self.table.is_empty() {
                break;
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        // Ghost membership is decided before making room: the eviction loop
        // below inserts into the ghost itself and could otherwise displace
        // exactly the entry being looked up.
        let in_ghost = self.ghost.contains(req.id);
        self.make_room(req.size, req.time, evicted);
        let (handle, queue) = if in_ghost {
            self.ghost.remove(req.id);
            self.ghost_hits += 1;
            self.m_used += u64::from(req.size);
            (self.main.push_front(req.id), Queue::Main)
        } else {
            self.s_used += u64::from(req.size);
            (self.small.push_front(req.id), Queue::Small)
        };
        self.table.insert(
            req.id,
            Entry {
                handle,
                queue,
                size: req.size,
                freq: 0,
                hits: 0,
                insert_time: req.time,
                last_access: req.time,
            },
        );
        // A ghost-hit insert into M can overflow M; trim one object now.
        // With unit sizes this restores `m_used <= m_capacity` exactly; with
        // sized objects a single-object trim can leave M transiently over
        // budget (still bounded by `used() <= capacity`). The small queue is
        // allowed to exceed its *target* transiently by design.
        if queue == Queue::Main && self.m_used > self.m_capacity {
            self.evict_main(req.time, evicted);
        }
    }

    fn delete(&mut self, id: ObjId) -> bool {
        if let Some(entry) = self.table.remove(&id) {
            match entry.queue {
                Queue::Small => {
                    self.small.remove(entry.handle);
                    self.s_used -= u64::from(entry.size);
                }
                Queue::Main => {
                    self.main.remove(entry.handle);
                    self.m_used -= u64::from(entry.size);
                }
            }
            true
        } else {
            false
        }
    }

    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        if let Err(e) = Policy::validate(self) {
            panic!("S3-FIFO invariant violated: {e}");
        }
    }
}

impl Policy for S3Fifo {
    fn name(&self) -> String {
        format!("S3-FIFO({:.2})", self.cfg.small_ratio)
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    // Cache hit: atomically bump the capped counter (§4.1).
                    e.freq = (e.freq + 1).min(3);
                    e.hits += 1;
                    e.last_access = req.time;
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                // Overwrite: drop any existing entry, then insert fresh.
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    /// Structural invariants of Algorithm 1, checked between requests:
    /// resident bytes within capacity, queue/table agreement (which also
    /// rules out duplicate residency), capped frequencies, and the ghost
    /// window bound with ghost/resident disjointness.
    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "resident bytes {} exceed capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        if self.small.len() + self.main.len() != self.table.len() {
            return Err(format!(
                "queue lengths {}+{} disagree with table len {} (duplicate or orphaned residency)",
                self.small.len(),
                self.main.len(),
                self.table.len()
            ));
        }
        let mut s_bytes = 0u64;
        for id in self.small.iter() {
            let e = self
                .table
                .get(id)
                .ok_or_else(|| format!("small-queue id {id} missing from table"))?;
            if e.queue != Queue::Small {
                return Err(format!("id {id} on S but tagged {:?}", e.queue));
            }
            s_bytes += u64::from(e.size);
        }
        let mut m_bytes = 0u64;
        for id in self.main.iter() {
            let e = self
                .table
                .get(id)
                .ok_or_else(|| format!("main-queue id {id} missing from table"))?;
            if e.queue != Queue::Main {
                return Err(format!("id {id} on M but tagged {:?}", e.queue));
            }
            m_bytes += u64::from(e.size);
        }
        if s_bytes != self.s_used {
            return Err(format!("s_used {} != S queue bytes {s_bytes}", self.s_used));
        }
        if m_bytes != self.m_used {
            return Err(format!("m_used {} != M queue bytes {m_bytes}", self.m_used));
        }
        for (id, e) in self.table.iter() {
            if e.freq > 3 {
                return Err(format!("id {id} freq {} above the 2-bit cap", e.freq));
            }
            if self.ghost.contains(*id) {
                return Err(format!("id {id} is both resident and a ghost"));
            }
        }
        if self.ghost.used() > self.ghost.capacity() {
            return Err(format!(
                "ghost window charged {} bytes over its {} capacity",
                self.ghost.used(),
                self.ghost.capacity()
            ));
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn get(p: &mut S3Fifo, id: ObjId, t: u64) -> Outcome {
        let mut evs = Vec::new();
        p.request(&Request::get(id, t), &mut evs)
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(S3Fifo::new(0).is_err());
    }

    #[test]
    fn rejects_bad_ratio() {
        let cfg = S3FifoConfig {
            small_ratio: 0.0,
            ..Default::default()
        };
        assert!(S3Fifo::with_config(10, cfg).is_err());
        let cfg = S3FifoConfig {
            small_ratio: 1.5,
            ..Default::default()
        };
        assert!(S3Fifo::with_config(10, cfg).is_err());
    }

    #[test]
    fn queue_split_is_ten_ninety() {
        let p = S3Fifo::new(100).unwrap();
        assert_eq!(p.small_capacity(), 10);
        assert_eq!(p.main_capacity(), 90);
    }

    #[test]
    fn hit_after_insert() {
        let mut p = S3Fifo::new(10).unwrap();
        assert_eq!(get(&mut p, 1, 0), Outcome::Miss);
        assert_eq!(get(&mut p, 1, 1), Outcome::Hit);
        assert!(p.contains(1));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn new_objects_enter_small_queue() {
        let mut p = S3Fifo::new(100).unwrap();
        get(&mut p, 1, 0);
        assert_eq!(p.small.len(), 1);
        assert_eq!(p.main.len(), 0);
    }

    #[test]
    fn one_hit_wonders_fall_to_ghost() {
        let mut p = S3Fifo::new(100).unwrap();
        // Evictions only begin once the whole cache is full (Algorithm 1's
        // INSERT); a pure scan then evicts one-hit wonders from S into the
        // ghost, never into M.
        for i in 0..150 {
            get(&mut p, i, i);
        }
        assert_eq!(p.main.len(), 0);
        assert!(p.ghost_len() > 0);
        assert!(p.used() <= 100);
    }

    #[test]
    fn ghost_hit_resurrects_into_main() {
        let mut p = S3Fifo::new(100).unwrap();
        for i in 0..150 {
            get(&mut p, i, i);
        }
        // Object 0 was evicted from S into the ghost; requesting it again is
        // a miss that inserts directly into M.
        assert!(!p.contains(0));
        assert_eq!(get(&mut p, 0, 1000), Outcome::Miss);
        assert!(p.contains(0));
        assert_eq!(p.ghost_hits(), 1);
        assert_eq!(p.main.len(), 1);
        p.check_invariants();
    }

    #[test]
    fn twice_accessed_object_promotes_to_main() {
        let mut p = S3Fifo::new(100).unwrap();
        get(&mut p, 1, 0);
        get(&mut p, 1, 1); // freq = 1
        get(&mut p, 1, 2); // freq = 2 > promote threshold 1
        for i in 100..250 {
            get(&mut p, i, i); // fill the cache, then push 1 to the S tail
        }
        assert!(p.contains(1), "hot object must survive via promotion to M");
        assert_eq!(p.table[&1].queue, Queue::Main);
        p.check_invariants();
    }

    #[test]
    fn once_accessed_object_is_not_promoted() {
        let mut p = S3Fifo::new(100).unwrap();
        get(&mut p, 1, 0);
        get(&mut p, 1, 1); // freq = 1, not > 1
        for i in 100..250 {
            get(&mut p, i, i);
        }
        assert!(!p.contains(1), "freq=1 object must fall into the ghost");
    }

    #[test]
    fn frequency_caps_at_three() {
        let mut p = S3Fifo::new(10).unwrap();
        get(&mut p, 1, 0);
        for t in 1..10 {
            get(&mut p, 1, t);
        }
        assert_eq!(p.table[&1].freq, 3);
        assert_eq!(p.table[&1].hits, 9);
    }

    #[test]
    fn main_reinsertion_keeps_accessed_objects() {
        let mut p = S3Fifo::new(20).unwrap();
        // Drive object 1 into M: two hits, then fill the cache so the
        // eviction scan reaches it at the S tail and promotes it.
        get(&mut p, 1, 0);
        get(&mut p, 1, 1);
        get(&mut p, 1, 2);
        for i in 10..40 {
            get(&mut p, i, i);
        }
        assert_eq!(p.table[&1].queue, Queue::Main);
        // Access it in M, then keep scanning: FIFO-reinsertion must keep the
        // accessed M resident alive through further evictions.
        get(&mut p, 1, 50);
        for i in 100..200 {
            get(&mut p, i, i);
        }
        assert!(p.contains(1), "accessed M object must be reinserted");
        p.check_invariants();
    }

    #[test]
    fn capacity_never_exceeded_unit_sizes() {
        let mut p = S3Fifo::new(50).unwrap();
        for i in 0..1000u64 {
            get(&mut p, i % 97, i);
            assert!(p.used() <= 50, "used {} at step {}", p.used(), i);
        }
        p.check_invariants();
    }

    #[test]
    fn eviction_records_are_emitted() {
        let mut p = S3Fifo::new(10).unwrap();
        let mut evs = Vec::new();
        for i in 0..30u64 {
            p.request(&Request::get(i, i), &mut evs);
        }
        assert!(!evs.is_empty());
        // Every eviction from a scan of one-hit wonders is a probationary
        // eviction with zero post-insert accesses.
        assert!(evs.iter().all(|e| e.from_probationary));
        assert!(evs.iter().all(|e| e.is_one_hit_wonder()));
        assert_eq!(p.stats().evictions, evs.len() as u64);
    }

    #[test]
    fn delete_frees_space() {
        let mut p = S3Fifo::new(10).unwrap();
        get(&mut p, 1, 0);
        let mut evs = Vec::new();
        p.request(&Request::delete(1, 1), &mut evs);
        assert!(!p.contains(1));
        assert_eq!(p.used(), 0);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn set_overwrites_size() {
        let mut p = S3Fifo::new(100).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get_sized(1, 10, 0), &mut evs);
        assert_eq!(p.used(), 10);
        p.request(
            &Request {
                id: 1,
                size: 30,
                time: 1,
                op: Op::Set,
            },
            &mut evs,
        );
        assert_eq!(p.used(), 30);
        assert!(p.contains(1));
    }

    #[test]
    fn oversized_object_is_uncacheable() {
        let mut p = S3Fifo::new(10).unwrap();
        let mut evs = Vec::new();
        let out = p.request(&Request::get_sized(1, 100, 0), &mut evs);
        assert_eq!(out, Outcome::Uncacheable);
        assert!(!p.contains(1));
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn byte_weighted_capacity() {
        let mut p = S3Fifo::new(100).unwrap();
        let mut evs = Vec::new();
        for i in 0..10u64 {
            p.request(&Request::get_sized(i, 25, i), &mut evs);
            assert!(p.used() <= 100);
        }
        p.check_invariants();
    }

    #[test]
    fn ghost_is_bounded() {
        let mut p = S3Fifo::new(100).unwrap();
        for i in 0..100_000u64 {
            get(&mut p, i, i);
        }
        // Ghost capacity is m_capacity = 90 bytes of unit-size entries.
        assert!(p.ghost_len() <= 90, "ghost has {} entries", p.ghost_len());
    }

    #[test]
    fn zipf_like_mixed_workload_invariants() {
        let mut p = S3Fifo::new(64).unwrap();
        let mut state = 12345u64;
        let mut evs = Vec::new();
        for t in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = state >> 33;
            // Skewed: 1/2 of requests to 16 hot ids, rest spread over 4096.
            let id = if r % 2 == 0 { r % 16 } else { r % 4096 };
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
        }
        p.check_invariants();
        assert!(p.used() <= 64);
        let s = p.stats();
        assert_eq!(s.gets, 20_000);
        assert!(s.miss_ratio() < 1.0);
    }

    #[test]
    fn name_reflects_ratio() {
        let p = S3Fifo::with_config(
            100,
            S3FifoConfig {
                small_ratio: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(p.name(), "S3-FIFO(0.25)");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Randomized workloads never violate capacity or internal
        /// bookkeeping invariants.
        #[test]
        fn random_workload_invariants(
            cap in 4u64..200,
            ids in proptest::collection::vec(0u64..500, 1..2000),
        ) {
            let mut p = S3Fifo::new(cap).unwrap();
            let mut evs = Vec::new();
            for (t, id) in ids.iter().enumerate() {
                evs.clear();
                p.request(&Request::get(*id, t as u64), &mut evs);
                prop_assert!(p.used() <= cap);
            }
            p.check_invariants();
        }

        /// With sized objects the cache stays within capacity and the
        /// accounting matches the queues.
        #[test]
        fn sized_workload_invariants(
            ids in proptest::collection::vec(0u64..100, 1..1000),
        ) {
            let mut p = S3Fifo::new(100).unwrap();
            let mut evs = Vec::new();
            for (t, id) in ids.iter().enumerate() {
                evs.clear();
                // Sizes are a stable function of the id so that repeated
                // requests agree on the object's size.
                let size = 1 + (id % 39) as u32;
                p.request(&Request::get_sized(*id, size, t as u64), &mut evs);
                prop_assert!(p.used() <= 100);
            }
            p.check_invariants();
        }

        /// Hits never evict: processing a request for a cached object leaves
        /// the cache contents untouched.
        #[test]
        fn hits_do_not_evict(ids in proptest::collection::vec(0u64..50, 1..500)) {
            let mut p = S3Fifo::new(30).unwrap();
            let mut evs = Vec::new();
            for (t, id) in ids.iter().enumerate() {
                evs.clear();
                let was_cached = p.contains(*id);
                let before = p.len();
                let out = p.request(&Request::get(*id, t as u64), &mut evs);
                if was_cached {
                    prop_assert_eq!(out, Outcome::Hit);
                    prop_assert!(evs.is_empty());
                    prop_assert_eq!(p.len(), before);
                }
            }
        }
    }
}

//! S3-FIFO-D: S3-FIFO with dynamically sized queues (§6.2.2).
//!
//! The paper's adaptive variant balances *marginal hits* on objects recently
//! evicted from `S` and from `M`. Two small monitor ghost queues (5 % of the
//! cached objects each) remember recent evictions from each data queue. Each
//! time the monitors accumulate more than 100 hits combined, and one side
//! has at least 2× the hits of the other, 0.1 % of the cache space moves to
//! the queue whose evicted objects receive more hits.
//!
//! §6.2.2 concludes that S3-FIFO with a static 10 % small queue beats the
//! adaptive variant on most traces — the adaptation only pays off on
//! adversarial workloads. The `ablation_adaptive` bench reproduces that
//! comparison.

use crate::policy::{GhostFifo, S3Fifo, S3FifoConfig};
use cache_types::{CacheError, Eviction, ObjId, Outcome, Policy, PolicyStats, Request};

/// Tuning knobs of the adaptation loop, with the paper's values as defaults.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Monitor ghost size as a fraction of cache capacity (paper: 5 %).
    pub monitor_ratio: f64,
    /// Combined monitor hits that trigger an adaptation check (paper: 100).
    pub hits_per_decision: u64,
    /// Imbalance factor required to act (paper: one side has 2× more hits).
    pub imbalance: f64,
    /// Fraction of cache capacity moved per decision (paper: 0.1 %).
    pub step_ratio: f64,
    /// Lower bound on the small queue as a fraction of capacity.
    pub min_small_ratio: f64,
    /// Upper bound on the small queue as a fraction of capacity.
    pub max_small_ratio: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            monitor_ratio: 0.05,
            hits_per_decision: 100,
            imbalance: 2.0,
            step_ratio: 0.001,
            min_small_ratio: 0.005,
            max_small_ratio: 0.5,
        }
    }
}

/// S3-FIFO with adaptive queue sizing.
#[derive(Debug)]
pub struct S3FifoD {
    inner: S3Fifo,
    capacity: u64,
    cfg: AdaptiveConfig,
    /// Monitor ghost for objects evicted from `S`.
    mon_small: GhostFifo,
    /// Monitor ghost for objects evicted from `M`.
    mon_main: GhostFifo,
    hits_small: u64,
    hits_main: u64,
    /// Current small-queue target in bytes (mirrors the inner policy).
    s_target: u64,
    /// Number of adaptation decisions taken (grow, shrink).
    adaptations: (u64, u64),
}

impl S3FifoD {
    /// Creates an adaptive S3-FIFO starting from the default 10 % split.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        Self::with_configs(capacity, S3FifoConfig::default(), AdaptiveConfig::default())
    }

    /// Creates an adaptive S3-FIFO with explicit base and adaptation
    /// configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] from the inner [`S3Fifo`] constructor and
    /// rejects non-positive adaptation parameters.
    pub fn with_configs(
        capacity: u64,
        base: S3FifoConfig,
        cfg: AdaptiveConfig,
    ) -> Result<Self, CacheError> {
        if cfg.step_ratio <= 0.0 || cfg.monitor_ratio <= 0.0 || cfg.imbalance < 1.0 {
            return Err(CacheError::InvalidParameter(
                "adaptive parameters must be positive (imbalance >= 1)".into(),
            ));
        }
        let inner = S3Fifo::with_config(capacity, base)?;
        let s_target = inner.small_capacity();
        let mon_cap = ((capacity as f64 * cfg.monitor_ratio).round() as u64).max(1);
        Ok(S3FifoD {
            inner,
            capacity,
            cfg,
            mon_small: GhostFifo::new(mon_cap),
            mon_main: GhostFifo::new(mon_cap),
            hits_small: 0,
            hits_main: 0,
            s_target,
            adaptations: (0, 0),
        })
    }

    /// Current small-queue target in bytes.
    pub fn small_target(&self) -> u64 {
        self.s_target
    }

    /// Number of (grow, shrink) adaptation decisions taken so far.
    pub fn adaptations(&self) -> (u64, u64) {
        self.adaptations
    }

    fn step_bytes(&self) -> u64 {
        ((self.capacity as f64 * self.cfg.step_ratio).round() as u64).max(1)
    }

    fn maybe_adapt(&mut self) {
        if self.hits_small + self.hits_main < self.cfg.hits_per_decision {
            return;
        }
        let (hs, hm) = (self.hits_small as f64, self.hits_main as f64);
        let min_s = ((self.capacity as f64 * self.cfg.min_small_ratio).round() as u64).max(1);
        let max_s = ((self.capacity as f64 * self.cfg.max_small_ratio).round() as u64).max(min_s);
        if hs >= hm * self.cfg.imbalance {
            // Objects evicted from S keep getting requested: S is too small.
            self.s_target = (self.s_target + self.step_bytes()).min(max_s);
            self.inner.set_small_capacity(self.s_target);
            self.adaptations.0 += 1;
        } else if hm >= hs * self.cfg.imbalance {
            // Objects evicted from M are re-requested: M is too small.
            self.s_target = self.s_target.saturating_sub(self.step_bytes()).max(min_s);
            self.inner.set_small_capacity(self.s_target);
            self.adaptations.1 += 1;
        }
        self.hits_small = 0;
        self.hits_main = 0;
    }
}

impl Policy for S3FifoD {
    fn name(&self) -> String {
        "S3-FIFO-D".to_string()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.inner.contains(id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        // Count marginal hits on the monitor ghosts before the inner policy
        // mutates anything.
        if req.is_read() && !self.inner.contains(req.id) {
            if self.mon_small.remove(req.id) {
                self.hits_small += 1;
            }
            if self.mon_main.remove(req.id) {
                self.hits_main += 1;
            }
        }
        let before = evicted.len();
        let outcome = self.inner.request(req, evicted);
        // Route fresh evictions into the matching monitor ghost.
        for ev in &evicted[before..] {
            if ev.from_probationary {
                self.mon_small.insert(ev.id, ev.size);
            } else {
                self.mon_main.insert(ev.id, ev.size);
            }
        }
        self.maybe_adapt();
        outcome
    }

    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(p: &mut S3FifoD, id: ObjId, t: u64) -> Outcome {
        let mut evs = Vec::new();
        p.request(&Request::get(id, t), &mut evs)
    }

    #[test]
    fn construction_defaults() {
        let p = S3FifoD::new(1000).unwrap();
        assert_eq!(p.small_target(), 100);
        assert_eq!(p.capacity(), 1000);
        assert_eq!(p.name(), "S3-FIFO-D");
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(S3FifoD::new(0).is_err());
    }

    #[test]
    fn rejects_bad_adaptive_params() {
        let cfg = AdaptiveConfig {
            step_ratio: 0.0,
            ..Default::default()
        };
        assert!(S3FifoD::with_configs(100, S3FifoConfig::default(), cfg).is_err());
    }

    #[test]
    fn behaves_like_cache() {
        let mut p = S3FifoD::new(100).unwrap();
        assert_eq!(get(&mut p, 1, 0), Outcome::Miss);
        assert_eq!(get(&mut p, 1, 1), Outcome::Hit);
        assert!(p.used() <= 100);
    }

    #[test]
    fn capacity_respected_under_load() {
        let mut p = S3FifoD::new(64).unwrap();
        let mut state = 99u64;
        for t in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = (state >> 33) % 1000;
            get(&mut p, id, t);
            assert!(p.used() <= 64);
        }
    }

    #[test]
    fn grows_small_queue_when_s_evictions_get_hits() {
        // Workload: objects are re-requested shortly after being evicted
        // from S (the "second request falls out of S" adversarial pattern,
        // §5.2). The monitor should detect hits on S-evicted objects and
        // grow S.
        // A generous monitor and a low decision threshold make the test
        // deterministic; the mechanism under test is the adaptation loop,
        // not the paper's exact constants.
        let cfg = AdaptiveConfig {
            monitor_ratio: 2.0,
            hits_per_decision: 20,
            step_ratio: 0.01,
            ..Default::default()
        };
        let mut p = S3FifoD::with_configs(200, S3FifoConfig::default(), cfg).unwrap();
        let start = p.small_target();
        let mut next_id = 0u64;
        for t in 0..8000u64 {
            if t % 2 == 0 || next_id < 300 {
                get(&mut p, next_id, t);
                next_id += 1;
            } else {
                // Second request arrives well after the object left S.
                get(&mut p, next_id - 300, t);
            }
        }
        assert!(
            p.adaptations().0 > 0 && p.small_target() > start,
            "expected S to grow: target {} -> {}, adaptations {:?}",
            start,
            p.small_target(),
            p.adaptations()
        );
    }

    #[test]
    fn stable_workload_keeps_split_near_default() {
        // A cache-friendly workload with few ghost hits should trigger few
        // adaptations.
        let mut p = S3FifoD::new(100).unwrap();
        for t in 0..10_000u64 {
            get(&mut p, t % 50, t); // everything fits
        }
        let (g, s) = p.adaptations();
        assert_eq!(g + s, 0, "no evictions -> no adaptation");
        assert_eq!(p.small_target(), 10);
    }
}

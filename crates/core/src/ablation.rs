//! Queue-type ablation of S3-FIFO (§6.3 "LRU or FIFO?").
//!
//! The paper asks whether replacing the FIFO queues with LRU queues (or
//! moving objects from `S` to `M` on cache hits instead of during eviction)
//! improves efficiency, and finds it does not: *"with quick demotion, the
//! queue type does not matter."*
//!
//! [`Qdlp`] (quick demotion + lazy promotion) generalizes S3-FIFO over those
//! choices: each of `S` and `M` can independently be a FIFO or an LRU queue
//! (and `M` can additionally be a SIEVE queue — §7 suggests "Sieve can be
//! used to replace the large FIFO queue in S3-FIFO to further improve
//! efficiency"), and promotion from `S` to `M` can happen at eviction time
//! (S3-FIFO) or immediately on the qualifying hit. `Qdlp` with both queues
//! FIFO and eviction-time promotion is exactly S3-FIFO.

use crate::policy::GhostFifo;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

/// Queue discipline for one of the two data queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Insertion-ordered; hits do not reorder. Eviction from the main queue
    /// uses two-bit reinsertion exactly as in S3-FIFO.
    Fifo,
    /// Hits promote to the queue head; eviction takes the tail without
    /// reinsertion.
    Lru,
    /// SIEVE discipline (main queue only): hits mark the entry in place; a
    /// persistent hand sweeps tail-to-head, clearing marks and evicting the
    /// first unmarked entry without any reinsertion.
    Sieve,
}

/// Configuration of the [`Qdlp`] ablation policy.
#[derive(Debug, Clone, Copy)]
pub struct QdlpConfig {
    /// Discipline of the small probationary queue.
    pub small: QueueKind,
    /// Discipline of the main queue.
    pub main: QueueKind,
    /// When true, an object in `S` whose frequency passes the promote
    /// threshold moves to `M` immediately on the hit; when false it moves at
    /// eviction time (S3-FIFO's behaviour).
    pub promote_on_hit: bool,
    /// Fraction of capacity for `S` (default 0.1).
    pub small_ratio: f64,
    /// Capped-frequency threshold (exclusive) for promotion, as in
    /// Algorithm 1 (`freq > 1`).
    pub promote_threshold: u8,
}

impl Default for QdlpConfig {
    fn default() -> Self {
        QdlpConfig {
            small: QueueKind::Fifo,
            main: QueueKind::Fifo,
            promote_on_hit: false,
            small_ratio: 0.1,
            promote_threshold: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Small,
    Main,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    handle: Handle,
    loc: Loc,
    size: u32,
    freq: u8,
    hits: u32,
    insert_time: u64,
    last_access: u64,
}

/// The generalized quick-demotion/lazy-promotion policy used for the §6.3
/// ablation study.
#[derive(Debug)]
pub struct Qdlp {
    capacity: u64,
    s_capacity: u64,
    m_capacity: u64,
    cfg: QdlpConfig,
    table: IdMap<Entry>,
    small: DList<ObjId>,
    main: DList<ObjId>,
    /// SIEVE hand for the main queue (`None` = start at the tail).
    main_hand: Option<Handle>,
    ghost: GhostFifo,
    s_used: u64,
    m_used: u64,
    stats: PolicyStats,
}

impl Qdlp {
    /// Creates an ablation policy over `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] for a zero capacity or a small-queue ratio
    /// outside `(0, 1)`.
    pub fn new(capacity: u64, cfg: QdlpConfig) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(cfg.small_ratio > 0.0 && cfg.small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {}",
                cfg.small_ratio
            )));
        }
        if cfg.small == QueueKind::Sieve {
            return Err(CacheError::InvalidParameter(
                "the SIEVE discipline is only supported for the main queue".into(),
            ));
        }
        let s_capacity = ((capacity as f64 * cfg.small_ratio).round() as u64).max(1);
        let m_capacity = capacity.saturating_sub(s_capacity).max(1);
        Ok(Qdlp {
            capacity,
            s_capacity,
            m_capacity,
            cfg,
            table: IdMap::default(),
            small: DList::new(),
            main: DList::new(),
            main_hand: None,
            ghost: GhostFifo::new(m_capacity),
            s_used: 0,
            m_used: 0,
            stats: PolicyStats::default(),
        })
    }

    fn used_total(&self) -> u64 {
        self.s_used + self.m_used
    }

    /// Moves an entry from `S` to the head of `M`, clearing its access bits.
    fn move_small_to_main(&mut self, id: ObjId, now: u64, evicted: &mut Vec<Eviction>) {
        let entry = *self.table.get(&id).expect("entry exists");
        debug_assert_eq!(entry.loc, Loc::Small);
        self.small.remove(entry.handle);
        self.s_used -= u64::from(entry.size);
        let h = self.main.push_front(id);
        // Invariant: still tabled — only the queue handle changed.
        let e = self.table.get_mut(&id).expect("entry exists");
        e.handle = h;
        e.loc = Loc::Main;
        e.freq = 0;
        self.m_used += u64::from(entry.size);
        if self.m_used > self.m_capacity {
            self.evict_main(now, evicted);
        }
    }

    fn evict_small(&mut self, now: u64, evicted: &mut Vec<Eviction>) {
        while let Some(&tail_id) = self.small.back() {
            // Invariant: queued ids are always tabled.
            let entry = *self.table.get(&tail_id).expect("small tail in table");
            if entry.freq > self.cfg.promote_threshold {
                self.move_small_to_main(tail_id, now, evicted);
            } else {
                self.small.remove(entry.handle);
                self.s_used -= u64::from(entry.size);
                self.table.remove(&tail_id);
                self.ghost.insert(tail_id, entry.size);
                self.stats.evictions += 1;
                evicted.push(Eviction {
                    id: tail_id,
                    size: entry.size,
                    insert_time: entry.insert_time,
                    last_access_time: entry.last_access,
                    freq: entry.hits,
                    from_probationary: true,
                });
                return;
            }
        }
        if !self.main.is_empty() {
            self.evict_main(now, evicted);
        }
    }

    fn evict_main(&mut self, now: u64, evicted: &mut Vec<Eviction>) {
        if self.cfg.main == QueueKind::Sieve {
            self.evict_main_sieve(now, evicted);
            return;
        }
        while let Some(&tail_id) = self.main.back() {
            // Invariant: queued ids are always tabled.
            let entry = *self.table.get(&tail_id).expect("main tail in table");
            // An LRU main queue evicts the tail outright; a FIFO main queue
            // applies two-bit reinsertion.
            if self.cfg.main == QueueKind::Fifo && entry.freq > 0 {
                self.main.move_to_front(entry.handle);
                self.table.get_mut(&tail_id).expect("entry exists").freq -= 1;
                continue;
            }
            self.main.remove(entry.handle);
            self.m_used -= u64::from(entry.size);
            self.table.remove(&tail_id);
            self.stats.evictions += 1;
            evicted.push(Eviction {
                id: tail_id,
                size: entry.size,
                insert_time: entry.insert_time,
                last_access_time: entry.last_access,
                freq: entry.hits,
                from_probationary: false,
            });
            return;
        }
    }

    /// SIEVE eviction for the main queue: walk the hand from the tail
    /// toward the head; marked (freq > 0) entries are unmarked *in place*;
    /// the first unmarked entry is evicted and the hand rests just before
    /// it.
    fn evict_main_sieve(&mut self, _now: u64, evicted: &mut Vec<Eviction>) {
        let mut cur = self
            .main_hand
            .filter(|&h| self.main.get(h).is_some())
            .or_else(|| self.main.back_handle());
        while let Some(h) = cur {
            // Invariant: the hand was just validated against the list; queued ids are tabled.
            let id = *self.main.get(h).expect("hand points at live node");
            let entry = *self.table.get(&id).expect("main id in table");
            if entry.freq > 0 {
                self.table.get_mut(&id).expect("entry exists").freq = 0;
                cur = self.main.prev_handle(h).or_else(|| self.main.back_handle());
            } else {
                self.main_hand = self.main.prev_handle(h);
                self.main.remove(entry.handle);
                self.m_used -= u64::from(entry.size);
                self.table.remove(&id);
                self.stats.evictions += 1;
                evicted.push(Eviction {
                    id,
                    size: entry.size,
                    insert_time: entry.insert_time,
                    last_access_time: entry.last_access,
                    freq: entry.hits,
                    from_probationary: false,
                });
                return;
            }
        }
    }

    fn make_room(&mut self, need: u32, now: u64, evicted: &mut Vec<Eviction>) {
        while self.used_total() + u64::from(need) > self.capacity {
            if self.s_used >= self.s_capacity || self.main.is_empty() {
                self.evict_small(now, evicted);
            } else {
                self.evict_main(now, evicted);
            }
            if self.table.is_empty() {
                break;
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        // Ghost membership snapshot precedes eviction (see `S3Fifo::insert`).
        let in_ghost = self.ghost.contains(req.id);
        self.make_room(req.size, req.time, evicted);
        let (handle, loc) = if in_ghost {
            self.ghost.remove(req.id);
            self.m_used += u64::from(req.size);
            (self.main.push_front(req.id), Loc::Main)
        } else {
            self.s_used += u64::from(req.size);
            (self.small.push_front(req.id), Loc::Small)
        };
        self.table.insert(
            req.id,
            Entry {
                handle,
                loc,
                size: req.size,
                freq: 0,
                hits: 0,
                insert_time: req.time,
                last_access: req.time,
            },
        );
        if loc == Loc::Main && self.m_used > self.m_capacity {
            self.evict_main(req.time, evicted);
        }
    }

    fn on_hit(&mut self, id: ObjId, now: u64, evicted: &mut Vec<Eviction>) {
        let (loc, freq, handle) = {
            // Invariant: on_hit fires only after a successful lookup.
            let e = self.table.get_mut(&id).expect("hit entry exists");
            e.freq = (e.freq + 1).min(3);
            e.hits += 1;
            e.last_access = now;
            (e.loc, e.freq, e.handle)
        };
        match loc {
            Loc::Small => {
                if self.cfg.promote_on_hit && freq > self.cfg.promote_threshold {
                    self.move_small_to_main(id, now, evicted);
                } else if self.cfg.small == QueueKind::Lru {
                    self.small.move_to_front(handle);
                }
            }
            Loc::Main => {
                if self.cfg.main == QueueKind::Lru {
                    self.main.move_to_front(handle);
                }
            }
        }
    }

    fn delete(&mut self, id: ObjId) -> bool {
        if let Some(entry) = self.table.remove(&id) {
            match entry.loc {
                Loc::Small => {
                    self.small.remove(entry.handle);
                    self.s_used -= u64::from(entry.size);
                }
                Loc::Main => {
                    if self.main_hand == Some(entry.handle) {
                        self.main_hand = self.main.prev_handle(entry.handle);
                    }
                    self.main.remove(entry.handle);
                    self.m_used -= u64::from(entry.size);
                }
            }
            true
        } else {
            false
        }
    }
}

impl Policy for Qdlp {
    fn name(&self) -> String {
        let q = |k: QueueKind| match k {
            QueueKind::Fifo => "FIFO",
            QueueKind::Lru => "LRU",
            QueueKind::Sieve => "SIEVE",
        };
        format!(
            "QDLP(S={},M={}{})",
            q(self.cfg.small),
            q(self.cfg.main),
            if self.cfg.promote_on_hit {
                ",hit-move"
            } else {
                ""
            }
        )
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time, evicted);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::S3Fifo;

    fn run(policy: &mut dyn Policy, ids: &[u64]) -> PolicyStats {
        let mut evs = Vec::new();
        for (t, &id) in ids.iter().enumerate() {
            evs.clear();
            policy.request(&Request::get(id, t as u64), &mut evs);
        }
        policy.stats()
    }

    /// A deterministic skewed workload for differential tests.
    fn skewed_trace(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                if r % 3 == 0 {
                    r % 8 // hot set
                } else {
                    r % universe
                }
            })
            .collect()
    }

    #[test]
    fn default_config_matches_s3fifo_exactly() {
        // Qdlp(FIFO, FIFO, eviction-time promotion) *is* S3-FIFO; the two
        // implementations must agree request-by-request.
        let trace = skewed_trace(30_000, 2000, 7);
        let mut a = Qdlp::new(128, QdlpConfig::default()).unwrap();
        let mut b = S3Fifo::new(128).unwrap();
        let mut evs = Vec::new();
        for (t, &id) in trace.iter().enumerate() {
            evs.clear();
            let ra = a.request(&Request::get(id, t as u64), &mut evs);
            evs.clear();
            let rb = b.request(&Request::get(id, t as u64), &mut evs);
            assert_eq!(ra, rb, "diverged at request {t} (id {id})");
        }
        assert_eq!(a.stats().misses, b.stats().misses);
    }

    #[test]
    fn all_variants_respect_capacity() {
        let trace = skewed_trace(10_000, 500, 3);
        for small in [QueueKind::Fifo, QueueKind::Lru] {
            for main in [QueueKind::Fifo, QueueKind::Lru] {
                for promote_on_hit in [false, true] {
                    let cfg = QdlpConfig {
                        small,
                        main,
                        promote_on_hit,
                        ..Default::default()
                    };
                    let mut p = Qdlp::new(64, cfg).unwrap();
                    let mut evs = Vec::new();
                    for (t, &id) in trace.iter().enumerate() {
                        evs.clear();
                        p.request(&Request::get(id, t as u64), &mut evs);
                        assert!(p.used() <= 64, "{} over capacity", p.name());
                    }
                    assert!(p.stats().misses > 0);
                }
            }
        }
    }

    #[test]
    fn variants_have_similar_efficiency() {
        // §6.3: queue type should not matter much once quick demotion is in
        // place. Allow a generous band, but all variants must be within a
        // few points of each other on a skewed workload.
        let trace = skewed_trace(50_000, 4000, 11);
        let mut ratios = Vec::new();
        for small in [QueueKind::Fifo, QueueKind::Lru] {
            for main in [QueueKind::Fifo, QueueKind::Lru] {
                let cfg = QdlpConfig {
                    small,
                    main,
                    ..Default::default()
                };
                let mut p = Qdlp::new(256, cfg).unwrap();
                let s = run(&mut p, &trace);
                ratios.push(s.miss_ratio());
            }
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.08, "variants diverge too much: {ratios:?}");
    }

    #[test]
    fn promote_on_hit_moves_to_main_immediately() {
        let cfg = QdlpConfig {
            promote_on_hit: true,
            ..Default::default()
        };
        let mut p = Qdlp::new(100, cfg).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(1, 1), &mut evs); // freq 1
        assert_eq!(p.table[&1].loc, Loc::Small);
        p.request(&Request::get(1, 2), &mut evs); // freq 2 > 1: move now
        assert_eq!(p.table[&1].loc, Loc::Main);
        assert_eq!(p.main.len(), 1);
    }

    #[test]
    fn lru_small_queue_reorders_on_hit() {
        let cfg = QdlpConfig {
            small: QueueKind::Lru,
            ..Default::default()
        };
        let mut p = Qdlp::new(100, cfg).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(2, 1), &mut evs);
        p.request(&Request::get(1, 2), &mut evs); // promotes 1 to S head
        assert_eq!(p.small.back(), Some(&2));
        assert_eq!(p.small.front(), Some(&1));
    }

    #[test]
    fn name_encodes_variant() {
        let p = Qdlp::new(
            10,
            QdlpConfig {
                small: QueueKind::Lru,
                main: QueueKind::Fifo,
                promote_on_hit: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(p.name(), "QDLP(S=LRU,M=FIFO,hit-move)");
    }

    #[test]
    fn sieve_main_keeps_marked_entries_in_place() {
        let cfg = QdlpConfig {
            main: QueueKind::Sieve,
            ..Default::default()
        };
        let mut p = Qdlp::new(100, cfg).unwrap();
        let trace = skewed_trace(30_000, 2000, 13);
        let mut evs = Vec::new();
        for (t, &id) in trace.iter().enumerate() {
            evs.clear();
            p.request(&Request::get(id, t as u64), &mut evs);
            assert!(p.used() <= 100, "over capacity");
        }
        assert!(p.stats().misses > 0);
        assert_eq!(p.name(), "QDLP(S=FIFO,M=SIEVE)");
    }

    #[test]
    fn sieve_main_efficiency_close_to_fifo_main() {
        // §7: Sieve in M should match or improve on FIFO-reinsertion in M.
        let trace = skewed_trace(50_000, 4000, 19);
        let mut fifo_m = Qdlp::new(256, QdlpConfig::default()).unwrap();
        let mr_fifo = run(&mut fifo_m, &trace).miss_ratio();
        let mut sieve_m = Qdlp::new(
            256,
            QdlpConfig {
                main: QueueKind::Sieve,
                ..Default::default()
            },
        )
        .unwrap();
        let mr_sieve = run(&mut sieve_m, &trace).miss_ratio();
        assert!(
            mr_sieve <= mr_fifo + 0.02,
            "SIEVE main {mr_sieve:.4} should be close to FIFO main {mr_fifo:.4}"
        );
    }

    #[test]
    fn sieve_small_is_rejected() {
        let cfg = QdlpConfig {
            small: QueueKind::Sieve,
            ..Default::default()
        };
        assert!(Qdlp::new(100, cfg).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(Qdlp::new(0, QdlpConfig::default()).is_err());
        assert!(Qdlp::new(
            10,
            QdlpConfig {
                small_ratio: 1.0,
                ..Default::default()
            }
        )
        .is_err());
    }
}

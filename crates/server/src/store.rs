//! The server's storage engine: a TTL-aware, collision-safe layer over
//! [`ConcurrentS3Fifo`], with an optional flash tier for degradation
//! dynamics and an optional fault injector for seeded latency faults.
//!
//! ## Payload encoding
//!
//! The concurrent cache keys by `u64`, the protocol keys by string. Keys
//! are hashed with [`cache_ds::FxHasher`] and the *full key is embedded in
//! the payload* so a hash collision reads as a miss, never as another
//! key's data:
//!
//! ```text
//! [expiry_ms: u64 LE][flags: u32 LE][klen: u16 LE][key bytes][data bytes]
//! ```
//!
//! `expiry_ms == 0` means "never expires"; otherwise it is milliseconds
//! since the store's epoch. Expiry is lazy: an expired entry is removed by
//! the `get` that finds it (memcached semantics).
//!
//! ## Flash tier
//!
//! When enabled, every set and every DRAM miss also drives the
//! [`FlashCache`] ladder with the same id stream. The flash tier holds no
//! payload bytes — DRAM is the source of truth — it exists to model device
//! dynamics: retries, error-budget trips to DRAM-only, probe-based
//! recovery. Its hit/miss result is ignored; only its *errors* surface,
//! as typed [`CacheError`]s that the protocol layer maps to
//! `SERVER_ERROR device-failure:/corruption:/degraded:` replies. A set
//! that returns such an error still landed in DRAM — the reply reports
//! the device fault, not data loss.

use bytes::Bytes;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::ConcurrentCache;
use cache_ds::FxHasher;
use cache_faults::{FaultInjector, FaultPlan, FaultStats, OpClass};
use cache_flash::{AdmissionKind, FaultyDevice, FlashCache, FlashCacheConfig, FlashTier, ResilienceConfig};
use cache_obs::Scope;
use cache_types::CacheError;
use parking_lot::Mutex;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Fixed-size prefix of the payload encoding (expiry + flags + klen).
const HEADER_LEN: usize = 8 + 4 + 2;

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Entry capacity of the DRAM (S3-FIFO) tier.
    pub capacity: usize,
    /// Flash tier total bytes; 0 disables the flash tier.
    pub flash_total_bytes: u64,
    /// Seed for the flash device fault plan / delay injector. Ignored when
    /// the supplied plan is a no-op.
    pub fault_seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity: 64 * 1024,
            flash_total_bytes: 0,
            fault_seed: 0,
        }
    }
}

/// One decoded hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// Client-opaque flags from the set.
    pub flags: u32,
    /// The stored data bytes.
    pub data: Vec<u8>,
}

/// Monotonic counters for STATS; all advisory.
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// `get` calls.
    pub gets: AtomicU64,
    /// `get` calls that returned data.
    pub hits: AtomicU64,
    /// `set` calls.
    pub sets: AtomicU64,
    /// `delete` calls that removed something.
    pub deletes: AtomicU64,
    /// Entries removed lazily because their TTL had passed.
    pub expired: AtomicU64,
    /// Hash collisions observed (payload key != requested key).
    pub collisions: AtomicU64,
    /// Flash-tier errors surfaced, by kind.
    pub device_failures: AtomicU64,
    /// Checksum failures surfaced by the flash tier.
    pub corruptions: AtomicU64,
    /// Requests that observed the flash ladder tripping to DRAM-only.
    pub degraded: AtomicU64,
}

/// The storage engine shared by every shard thread.
pub struct TtlStore {
    cache: ConcurrentS3Fifo,
    epoch: Instant,
    /// Dynamics-only second tier (see module docs). Lock held only for the
    /// duration of one `request_checked` call.
    flash: Option<Mutex<FlashCache<FaultyDevice<FlashTier>>>>,
    /// Seeded latency-fault injector (satellite of the chaos suite); `None`
    /// when the plan carries no delay specs.
    delays: Option<Mutex<FaultInjector>>,
    /// Advisory counters for STATS.
    pub counters: StoreCounters,
}

impl std::fmt::Debug for TtlStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TtlStore")
            .field("len", &self.cache.len())
            .field("flash", &self.flash.is_some())
            .finish()
    }
}

/// Hashes a protocol key to the cache's u64 keyspace.
pub fn hash_key(key: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(key.as_bytes());
    h.finish()
}

/// Encodes a payload (see module docs for the layout).
pub fn encode_payload(expiry_ms: u64, flags: u32, key: &str, data: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN + key.len() + data.len());
    v.extend_from_slice(&expiry_ms.to_le_bytes());
    v.extend_from_slice(&flags.to_le_bytes());
    v.extend_from_slice(&(key.len() as u16).to_le_bytes());
    v.extend_from_slice(key.as_bytes());
    v.extend_from_slice(data);
    v
}

/// Decodes a payload; returns `(expiry_ms, flags, key, data)` or `None` on
/// a malformed buffer (never stored by this server, but a decode failure
/// must read as a miss, not a panic).
pub fn decode_payload(buf: &[u8]) -> Option<(u64, u32, &str, &[u8])> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    let expiry_ms = u64::from_le_bytes(buf[..8].try_into().ok()?);
    let flags = u32::from_le_bytes(buf[8..12].try_into().ok()?);
    let klen = u16::from_le_bytes(buf[12..14].try_into().ok()?) as usize;
    if buf.len() < HEADER_LEN + klen {
        return None;
    }
    let key = std::str::from_utf8(&buf[HEADER_LEN..HEADER_LEN + klen]).ok()?;
    Some((expiry_ms, flags, key, &buf[HEADER_LEN + klen..]))
}

impl TtlStore {
    /// Builds the store. `plan` drives both the flash device faults and the
    /// delay injector; pass [`FaultPlan::none`] for a healthy store.
    pub fn new(cfg: StoreConfig, plan: FaultPlan) -> Self {
        let flash = (cfg.flash_total_bytes > 0).then(|| {
            let fcfg = FlashCacheConfig {
                total_bytes: cfg.flash_total_bytes,
                dram_fraction: 0.1,
                admission: AdmissionKind::SmallFifoTwoAccess,
            };
            let device_plan = FaultPlan {
                seed: plan.seed ^ cfg.fault_seed,
                schedules: plan.schedules.clone(),
                spike_latency: plan.spike_latency,
                delays: Vec::new(),
            };
            // Invariant: total_bytes > 0 here, so tier sizing cannot fail.
            #[allow(clippy::expect_used)]
            Mutex::new(
                FlashCache::faulty(fcfg, device_plan, ResilienceConfig::default())
                    .expect("flash config with total_bytes > 0 is valid"),
            )
        });
        let delays = (!plan.delays.is_empty()).then(|| {
            let delay_plan = FaultPlan {
                seed: plan.seed ^ cfg.fault_seed,
                schedules: Vec::new(),
                spike_latency: 0,
                delays: plan.delays.clone(),
            };
            Mutex::new(FaultInjector::new(delay_plan))
        });
        TtlStore {
            cache: ConcurrentS3Fifo::new(cfg.capacity),
            epoch: Instant::now(),
            flash,
            delays,
            counters: StoreCounters::default(),
        }
    }

    /// Milliseconds since the store's epoch (TTL clock).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Draws the injected delay (in microseconds) for the next operation of
    /// `class`; 0 when no delay fault fires.
    pub fn next_delay_us(&self, class: OpClass) -> u64 {
        match &self.delays {
            Some(inj) => inj.lock().next_delay(class),
            None => 0,
        }
    }

    /// Delay-injector stats (zeroed when no injector is attached).
    pub fn delay_stats(&self) -> FaultStats {
        match &self.delays {
            Some(inj) => inj.lock().stats(),
            None => FaultStats::default(),
        }
    }

    /// Drives the flash ladder for one op; converts fault errors and
    /// updates the per-kind counters.
    // ORDERING: Relaxed counter bumps — advisory stats.
    fn touch_flash(&self, id: u64, size: u32) -> Result<(), CacheError> {
        let Some(flash) = &self.flash else {
            return Ok(());
        };
        let r = flash.lock().request_checked(id, size);
        match r {
            Ok(_) => Ok(()), // hit/miss result is ignored: dynamics only
            Err(e) => {
                match &e {
                    CacheError::DeviceFailure(_) => {
                        self.counters.device_failures.fetch_add(1, Ordering::Relaxed)
                    }
                    CacheError::Corruption(_) => {
                        self.counters.corruptions.fetch_add(1, Ordering::Relaxed)
                    }
                    CacheError::Degraded(_) => {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => 0,
                };
                Err(e)
            }
        }
    }

    /// Stores `key → data`. `exptime_s == 0` means no expiry. Returns
    /// `Err` only for flash-tier faults — the DRAM write has already
    /// landed when that happens.
    // ORDERING: Relaxed counter bump — advisory stats.
    pub fn set(&self, key: &str, flags: u32, exptime_s: u64, data: &[u8]) -> Result<(), CacheError> {
        self.counters.sets.fetch_add(1, Ordering::Relaxed);
        let expiry_ms = if exptime_s == 0 {
            0
        } else {
            self.now_ms() + exptime_s.saturating_mul(1000)
        };
        let id = hash_key(key);
        let payload = encode_payload(expiry_ms, flags, key, data);
        let size = payload.len() as u32;
        self.cache.insert(id, Bytes::from(payload));
        self.touch_flash(id, size)
    }

    /// Looks up `key`. `Ok(None)` is a clean miss; `Err` is a flash-tier
    /// fault on the miss path (the DRAM lookup itself cannot fail).
    // ORDERING: Relaxed counter bumps — advisory stats.
    pub fn get(&self, key: &str) -> Result<Option<Value>, CacheError> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let id = hash_key(key);
        if let Some(payload) = self.cache.get(id) {
            match decode_payload(&payload) {
                Some((expiry_ms, flags, stored_key, data)) if stored_key == key => {
                    if expiry_ms != 0 && self.now_ms() >= expiry_ms {
                        // Lazy expiry: the hit is stale, drop it.
                        self.counters.expired.fetch_add(1, Ordering::Relaxed);
                        self.cache.remove(id);
                    } else {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some(Value {
                            flags,
                            data: data.to_vec(),
                        }));
                    }
                }
                Some(_) => {
                    // Hash collision: another key's payload. A miss for us;
                    // leave the resident entry alone.
                    self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    // Undecodable payload (never written by this server):
                    // treat as a miss and purge it.
                    self.cache.remove(id);
                }
            }
        }
        // Miss path: drive the flash ladder (nominal object size — the
        // tier carries no payloads, only dynamics).
        self.touch_flash(id, 64).map(|()| None)
    }

    /// Deletes `key`; true when something was removed.
    // ORDERING: Relaxed counter bump — advisory stats.
    pub fn delete(&self, key: &str) -> bool {
        let removed = self.cache.remove(hash_key(key));
        if removed {
            self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Approximate resident entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Entry capacity of the DRAM tier.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Aggregate DRAM-tier hit ratio and queue stats.
    pub fn cache_stats(&self) -> cache_concurrent::ShardStatsSnapshot {
        self.cache.aggregate_stats()
    }

    /// Flash-tier degradation state label for STATS (`none` without a
    /// flash tier).
    pub fn flash_state(&self) -> &'static str {
        match &self.flash {
            None => "none",
            Some(f) => match f.lock().degradation() {
                cache_faults::DegradationState::Healthy => "healthy",
                cache_faults::DegradationState::Degraded => "degraded",
            },
        }
    }

    /// Exports DRAM-tier counters plus store counters under `scope`.
    /// Intended for one final snapshot at shutdown (counters are added
    /// once, not sampled).
    // ORDERING: Relaxed counter loads — advisory snapshot at quiescence.
    pub fn export_obs(&self, scope: &Scope) {
        self.cache.export_obs(&scope.scope("dram"));
        let s = scope.scope("store");
        s.counter("gets").add(self.counters.gets.load(Ordering::Relaxed));
        s.counter("hits").add(self.counters.hits.load(Ordering::Relaxed));
        s.counter("sets").add(self.counters.sets.load(Ordering::Relaxed));
        s.counter("deletes").add(self.counters.deletes.load(Ordering::Relaxed));
        s.counter("expired").add(self.counters.expired.load(Ordering::Relaxed));
        s.counter("collisions").add(self.counters.collisions.load(Ordering::Relaxed));
        s.counter("device_failures")
            .add(self.counters.device_failures.load(Ordering::Relaxed));
        s.counter("corruptions").add(self.counters.corruptions.load(Ordering::Relaxed));
        s.counter("degraded").add(self.counters.degraded.load(Ordering::Relaxed));
        s.gauge("resident").set(self.cache.len() as i64);
    }
}

/// Maps a store error to its typed `SERVER_ERROR` reply line.
pub fn error_reply(e: &CacheError) -> Vec<u8> {
    let (tag, msg) = match e {
        CacheError::DeviceFailure(m) => ("device-failure", m.as_str()),
        CacheError::Corruption(m) => ("corruption", m.as_str()),
        CacheError::Degraded(m) => ("degraded", m.as_str()),
        other => ("internal", {
            // The remaining variants cannot come out of the request path;
            // format defensively rather than panic.
            let _ = other;
            "unexpected error"
        }),
    };
    let mut out = Vec::with_capacity(16 + tag.len() + msg.len());
    out.extend_from_slice(b"SERVER_ERROR ");
    out.extend_from_slice(tag.as_bytes());
    out.extend_from_slice(b": ");
    // Strip CR/LF so an error message cannot forge protocol framing.
    out.extend(msg.bytes().filter(|b| *b != b'\r' && *b != b'\n'));
    out.extend_from_slice(b"\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_faults::{FaultKind, Schedule};

    fn store() -> TtlStore {
        TtlStore::new(
            StoreConfig {
                capacity: 1024,
                ..StoreConfig::default()
            },
            FaultPlan::none(),
        )
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let s = store();
        s.set("hello", 7, 0, b"world").expect("healthy set");
        let v = s.get("hello").expect("healthy get").expect("hit");
        assert_eq!(v.flags, 7);
        assert_eq!(v.data, b"world");
        assert!(s.delete("hello"));
        assert!(s.get("hello").expect("healthy get").is_none());
        assert!(!s.delete("hello"), "second delete is a miss");
    }

    #[test]
    fn payload_roundtrip_and_malformed() {
        let p = encode_payload(12345, 9, "k", b"abc");
        let (exp, flags, key, data) = decode_payload(&p).expect("roundtrip");
        assert_eq!((exp, flags, key, data), (12345, 9, "k", b"abc".as_slice()));
        assert!(decode_payload(&[]).is_none());
        assert!(decode_payload(&[0u8; 13]).is_none());
        // klen pointing past the buffer must not panic.
        let mut bad = encode_payload(0, 0, "key", b"");
        bad[12] = 0xFF;
        bad[13] = 0xFF;
        assert!(decode_payload(&bad).is_none());
    }

    #[test]
    // ORDERING: Relaxed counter reads — single-threaded test assertions.
    fn ttl_expires_lazily() {
        let s = store();
        // Store an already-expired entry by encoding expiry directly.
        let id = hash_key("stale");
        let payload = encode_payload(1, 0, "stale", b"old");
        s.cache.insert(id, Bytes::from(payload));
        // now_ms() starts near 0 but strictly increases; wait past 1 ms.
        std::thread::sleep(std::time::Duration::from_millis(3));
        assert!(s.get("stale").expect("healthy").is_none(), "expired → miss");
        assert_eq!(s.counters.expired.load(Ordering::Relaxed), 1);
        assert_eq!(s.cache.get(id), None, "expired entry purged");
    }

    #[test]
    fn zero_exptime_never_expires() {
        let s = store();
        s.set("forever", 0, 0, b"v").expect("healthy");
        std::thread::sleep(std::time::Duration::from_millis(3));
        assert!(s.get("forever").expect("healthy").is_some());
    }

    #[test]
    // ORDERING: Relaxed counter reads — single-threaded test assertions.
    fn collision_reads_as_miss() {
        let s = store();
        // Plant a payload under "alpha"'s hash that claims to be "beta".
        let id = hash_key("alpha");
        s.cache.insert(id, Bytes::from(encode_payload(0, 0, "beta", b"x")));
        assert!(s.get("alpha").expect("healthy").is_none());
        assert_eq!(s.counters.collisions.load(Ordering::Relaxed), 1);
        assert!(s.cache.get(id).is_some(), "collision victim not purged");
    }

    #[test]
    // ORDERING: Relaxed counter reads — single-threaded test assertions.
    fn flash_faults_surface_as_typed_errors() {
        let plan = FaultPlan::new(42).with(FaultKind::TransientWrite, Schedule::Constant(1.0));
        let s = TtlStore::new(
            StoreConfig {
                capacity: 1024,
                flash_total_bytes: 8192,
                fault_seed: 7,
            },
            plan,
        );
        // Re-access a small keyset so DRAM-evicted objects qualify for
        // flash admission (SmallFifoTwoAccess admits on second sighting);
        // at p=1.0 the first flash write exhausts retries and surfaces.
        let mut saw_error = false;
        for i in 0..2000 {
            if s.set(&format!("k{}", i % 64), 0, 0, b"v").is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "p=1.0 write faults must surface");
        let total = s.counters.device_failures.load(Ordering::Relaxed)
            + s.counters.degraded.load(Ordering::Relaxed);
        assert!(total > 0);
    }

    #[test]
    fn error_reply_is_typed_and_frame_safe() {
        let r = error_reply(&CacheError::DeviceFailure("io\r\nboom".into()));
        let text = String::from_utf8(r).expect("ascii");
        assert!(text.starts_with("SERVER_ERROR device-failure: "));
        assert!(text.ends_with("\r\n"));
        assert_eq!(text.matches('\n').count(), 1, "no injected framing");
        let r = error_reply(&CacheError::Degraded("dram-only".into()));
        assert!(String::from_utf8(r).expect("ascii").contains("degraded"));
    }

    #[test]
    fn injected_delays_are_seeded_and_deterministic() {
        let plan = FaultPlan::new(9).with_delays(1.0, 50, 100);
        let mk = || {
            TtlStore::new(
                StoreConfig {
                    capacity: 64,
                    ..StoreConfig::default()
                },
                plan.clone(),
            )
        };
        let a = mk();
        let b = mk();
        let da: Vec<u64> = (0..20).map(|_| a.next_delay_us(OpClass::Read)).collect();
        let db: Vec<u64> = (0..20).map(|_| b.next_delay_us(OpClass::Read)).collect();
        assert_eq!(da, db, "same plan → same delay stream");
        assert!(da.iter().all(|&d| (50..=100).contains(&d)));
        assert_eq!(a.delay_stats().delays, 20);
    }
}

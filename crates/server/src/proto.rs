//! The memcached-flavored text protocol: hardened frame parser and reply
//! encoder.
//!
//! Grammar (a strict, size-bounded subset of the memcached text protocol):
//!
//! ```text
//! get <key>+\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! delete <key> [noreply]\r\n
//! stats\r\n
//! metrics\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! Hardening contract (pinned by the proptest fuzz suite below): for *any*
//! byte sequence the parser either asks for more bytes, yields a complete
//! well-formed frame, yields a recoverable `CLIENT_ERROR`/`ERROR` reply
//! with an exact number of bytes to skip, or declares the connection
//! unrecoverable (reply then close). It never panics, never over-consumes,
//! and never buffers more than the configured limits
//! ([`Limits::max_line_len`] for a command line, [`Limits::max_value_len`]
//! for a value block).

/// Maximum key length, as in memcached.
pub const MAX_KEY_LEN: usize = 250;

/// Parser size limits. Every limit maps a hostile input to a bounded amount
/// of memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted command line, terminator included.
    pub max_line_len: usize,
    /// Largest accepted value block.
    pub max_value_len: usize,
    /// Most keys accepted in one multi-get.
    pub max_get_keys: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line_len: 2048,
            max_value_len: 1 << 20,
            max_get_keys: 64,
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get k1 [k2 ...]` — multi-key lookup.
    Get {
        /// Keys, in request order.
        keys: Vec<String>,
    },
    /// `set key flags exptime bytes [noreply]` + value block.
    Set {
        /// Item key.
        key: String,
        /// Opaque client flags, stored verbatim.
        flags: u32,
        /// TTL in seconds; 0 = never expires.
        exptime: u64,
        /// The value block.
        value: Vec<u8>,
        /// When set, a successful store sends no reply.
        noreply: bool,
    },
    /// `delete key [noreply]`.
    Delete {
        /// Item key.
        key: String,
        /// When set, the reply is suppressed.
        noreply: bool,
    },
    /// `stats` — human-readable STAT lines.
    Stats,
    /// `metrics` — Prometheus exposition dump (extension).
    Metrics,
    /// `version`.
    Version,
    /// `quit` — close the connection.
    Quit,
}

impl Command {
    /// True for mutating commands (the shedder rejects these first).
    pub fn is_write(&self) -> bool {
        matches!(self, Command::Set { .. } | Command::Delete { .. })
    }
}

/// Result of trying to parse one frame off the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer holds no complete frame yet; read more bytes.
    Incomplete,
    /// A complete frame; `consumed` bytes belong to it.
    Frame {
        /// The parsed command.
        cmd: Command,
        /// Bytes to drop from the front of the buffer.
        consumed: usize,
    },
    /// A malformed but recoverable frame: send `reply`, drop `consumed`
    /// bytes, keep the connection.
    Error {
        /// The full reply line (terminator included).
        reply: String,
        /// Bytes to drop from the front of the buffer.
        consumed: usize,
    },
    /// An unrecoverable framing violation: send `reply`, then close. The
    /// stream position can no longer be trusted (e.g. an unparseable length
    /// field means the value block boundary is unknown).
    Fatal {
        /// The full reply line (terminator included).
        reply: String,
    },
}

fn client_error(msg: &str) -> String {
    format!("CLIENT_ERROR {msg}\r\n")
}

/// A key is 1..=250 bytes of printable non-space ASCII.
fn key_ok(k: &str) -> bool {
    !k.is_empty()
        && k.len() <= MAX_KEY_LEN
        && k.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

/// Finds the first line terminator (`\r\n` or bare `\n`, both accepted on
/// command lines) within `limit` bytes. Returns (line_end, term_len).
fn find_line(buf: &[u8], limit: usize) -> Option<(usize, usize)> {
    let horizon = buf.len().min(limit);
    let nl = buf[..horizon].iter().position(|&b| b == b'\n')?;
    if nl > 0 && buf[nl - 1] == b'\r' {
        Some((nl - 1, 2))
    } else {
        Some((nl, 1))
    }
}

/// Tries to parse one frame from the front of `buf`.
///
/// Stateless: callers keep the buffer and drop `consumed` bytes on
/// [`ParseOutcome::Frame`] / [`ParseOutcome::Error`].
pub fn parse_frame(buf: &[u8], limits: &Limits) -> ParseOutcome {
    let Some((line_end, term)) = find_line(buf, limits.max_line_len) else {
        if buf.len() >= limits.max_line_len {
            // No terminator within the limit: a hostile or broken client;
            // resynchronization is impossible without unbounded buffering.
            return ParseOutcome::Fatal {
                reply: client_error("line too long"),
            };
        }
        return ParseOutcome::Incomplete;
    };
    let line_consumed = line_end + term;
    let Ok(line) = std::str::from_utf8(&buf[..line_end]) else {
        return ParseOutcome::Error {
            reply: client_error("invalid utf-8 in command line"),
            consumed: line_consumed,
        };
    };
    let mut tokens = line.split_ascii_whitespace();
    let Some(verb) = tokens.next() else {
        // Blank line: memcached answers ERROR and keeps going.
        return ParseOutcome::Error {
            reply: "ERROR\r\n".into(),
            consumed: line_consumed,
        };
    };
    match verb {
        "get" | "gets" => {
            let keys: Vec<&str> = tokens.collect();
            if keys.is_empty() {
                return ParseOutcome::Error {
                    reply: client_error("get requires at least one key"),
                    consumed: line_consumed,
                };
            }
            if keys.len() > limits.max_get_keys {
                return ParseOutcome::Error {
                    reply: client_error("too many keys in one get"),
                    consumed: line_consumed,
                };
            }
            if let Some(bad) = keys.iter().find(|k| !key_ok(k)) {
                return ParseOutcome::Error {
                    reply: client_error(&format!(
                        "bad key (len {} > {MAX_KEY_LEN} or non-printable)",
                        bad.len()
                    )),
                    consumed: line_consumed,
                };
            }
            ParseOutcome::Frame {
                cmd: Command::Get {
                    keys: keys.into_iter().map(str::to_owned).collect(),
                },
                consumed: line_consumed,
            }
        }
        "set" => parse_set(buf, line_consumed, &mut tokens, limits),
        "delete" => {
            let Some(key) = tokens.next() else {
                return ParseOutcome::Error {
                    reply: client_error("delete requires a key"),
                    consumed: line_consumed,
                };
            };
            if !key_ok(key) {
                return ParseOutcome::Error {
                    reply: client_error("bad key"),
                    consumed: line_consumed,
                };
            }
            let noreply = matches!(tokens.next(), Some("noreply"));
            ParseOutcome::Frame {
                cmd: Command::Delete {
                    key: key.to_owned(),
                    noreply,
                },
                consumed: line_consumed,
            }
        }
        "stats" => ParseOutcome::Frame {
            cmd: Command::Stats,
            consumed: line_consumed,
        },
        "metrics" => ParseOutcome::Frame {
            cmd: Command::Metrics,
            consumed: line_consumed,
        },
        "version" => ParseOutcome::Frame {
            cmd: Command::Version,
            consumed: line_consumed,
        },
        "quit" => ParseOutcome::Frame {
            cmd: Command::Quit,
            consumed: line_consumed,
        },
        _ => ParseOutcome::Error {
            reply: "ERROR\r\n".into(),
            consumed: line_consumed,
        },
    }
}

/// Parses `set`'s argument line plus its value block.
fn parse_set<'a>(
    buf: &[u8],
    line_consumed: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    limits: &Limits,
) -> ParseOutcome {
    let (Some(key), Some(flags), Some(exptime), Some(bytes)) =
        (tokens.next(), tokens.next(), tokens.next(), tokens.next())
    else {
        return ParseOutcome::Error {
            reply: client_error("set requires <key> <flags> <exptime> <bytes>"),
            consumed: line_consumed,
        };
    };
    let noreply = matches!(tokens.next(), Some("noreply"));
    if !key_ok(key) {
        // The length field may still parse; if it does the value block can
        // be skipped and the connection survives.
        if let Ok(n) = bytes.parse::<usize>() {
            if n <= limits.max_value_len {
                let total = line_consumed + n + 2;
                if buf.len() < total {
                    return ParseOutcome::Incomplete;
                }
                return ParseOutcome::Error {
                    reply: client_error("bad key"),
                    consumed: total,
                };
            }
        }
        return ParseOutcome::Fatal {
            reply: client_error("bad key"),
        };
    }
    let Ok(flags) = flags.parse::<u32>() else {
        return bad_set_field(buf, line_consumed, bytes, limits, "bad flags");
    };
    let Ok(exptime) = exptime.parse::<u64>() else {
        return bad_set_field(buf, line_consumed, bytes, limits, "bad exptime");
    };
    let Ok(n) = bytes.parse::<usize>() else {
        // The value block boundary is unknowable: closing is the only safe
        // resynchronization.
        return ParseOutcome::Fatal {
            reply: client_error("bad byte count"),
        };
    };
    if n > limits.max_value_len {
        // Refusing to buffer the block means the stream cannot be resynced.
        return ParseOutcome::Fatal {
            reply: client_error("object too large"),
        };
    }
    let total = line_consumed + n + 2;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    if &buf[line_consumed + n..total] != b"\r\n" {
        // memcached's "bad data chunk": the client's framing is off; the
        // stream position cannot be trusted.
        return ParseOutcome::Fatal {
            reply: client_error("bad data chunk"),
        };
    }
    ParseOutcome::Frame {
        cmd: Command::Set {
            key: key.to_owned(),
            flags,
            exptime,
            value: buf[line_consumed..line_consumed + n].to_vec(),
            noreply,
        },
        consumed: total,
    }
}

/// A set line with one bad numeric field but a parseable byte count: skip
/// the value block and keep the connection.
fn bad_set_field(
    buf: &[u8],
    line_consumed: usize,
    bytes: &str,
    limits: &Limits,
    msg: &str,
) -> ParseOutcome {
    match bytes.parse::<usize>() {
        Ok(n) if n <= limits.max_value_len => {
            let total = line_consumed + n + 2;
            if buf.len() < total {
                ParseOutcome::Incomplete
            } else {
                ParseOutcome::Error {
                    reply: client_error(msg),
                    consumed: total,
                }
            }
        }
        _ => ParseOutcome::Fatal {
            reply: client_error(msg),
        },
    }
}

/// Encodes one `VALUE` response item.
pub fn encode_value(out: &mut Vec<u8>, key: &str, flags: u32, data: &[u8]) {
    out.extend_from_slice(format!("VALUE {key} {flags} {}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(b: &[u8]) -> ParseOutcome {
        parse_frame(b, &Limits::default())
    }

    #[test]
    fn parses_get_and_multiget() {
        match parse(b"get foo\r\n") {
            ParseOutcome::Frame { cmd, consumed } => {
                assert_eq!(cmd, Command::Get { keys: vec!["foo".into()] });
                assert_eq!(consumed, 9);
            }
            other => panic!("{other:?}"),
        }
        match parse(b"get a b c\r\ntrailing") {
            ParseOutcome::Frame { cmd, consumed } => {
                assert_eq!(
                    cmd,
                    Command::Get {
                        keys: vec!["a".into(), "b".into(), "c".into()]
                    }
                );
                assert_eq!(consumed, 11, "must not consume the next frame");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_set_with_value_block() {
        match parse(b"set k 7 60 5\r\nhello\r\nnext") {
            ParseOutcome::Frame { cmd, consumed } => {
                assert_eq!(
                    cmd,
                    Command::Set {
                        key: "k".into(),
                        flags: 7,
                        exptime: 60,
                        value: b"hello".to_vec(),
                        noreply: false,
                    }
                );
                assert_eq!(consumed, 21);
            }
            other => panic!("{other:?}"),
        }
        // Value bytes are binary-safe, including \r\n inside the block.
        match parse(b"set k 0 0 4\r\na\r\nb\r\n") {
            ParseOutcome::Frame { cmd, .. } => match cmd {
                Command::Set { value, .. } => assert_eq!(value, b"a\r\nb"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_noreply_flag() {
        match parse(b"set k 0 0 1 noreply\r\nx\r\n") {
            ParseOutcome::Frame { cmd, .. } => match cmd {
                Command::Set { noreply, .. } => assert!(noreply),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        assert_eq!(parse(b"get fo"), ParseOutcome::Incomplete);
        assert_eq!(parse(b"set k 0 0 10\r\nhel"), ParseOutcome::Incomplete);
        assert_eq!(parse(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn unknown_command_is_recoverable() {
        match parse(b"frobnicate now\r\nget ok\r\n") {
            ParseOutcome::Error { reply, consumed } => {
                assert_eq!(reply, "ERROR\r\n");
                assert_eq!(consumed, 16, "must resync to the next frame");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_set_numbers_skip_the_block_when_possible() {
        // Bad flags, good byte count: block skipped, connection survives.
        match parse(b"set k nope 0 3\r\nabc\r\n") {
            ParseOutcome::Error { reply, consumed } => {
                assert!(reply.contains("bad flags"), "{reply}");
                assert_eq!(consumed, 21);
            }
            other => panic!("{other:?}"),
        }
        // Bad byte count: boundary unknowable, connection must close.
        match parse(b"set k 0 0 banana\r\n") {
            ParseOutcome::Fatal { reply } => assert!(reply.contains("bad byte count")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_data_terminator_is_fatal() {
        match parse(b"set k 0 0 3\r\nabcXY") {
            ParseOutcome::Fatal { reply } => assert!(reply.contains("bad data chunk")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_declarations_are_fatal() {
        let limits = Limits {
            max_value_len: 100,
            ..Limits::default()
        };
        match parse_frame(b"set k 0 0 101\r\n", &limits) {
            ParseOutcome::Fatal { reply } => assert!(reply.contains("too large")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unterminated_long_line_is_fatal() {
        let limits = Limits {
            max_line_len: 32,
            ..Limits::default()
        };
        let long = vec![b'a'; 64];
        match parse_frame(&long, &limits) {
            ParseOutcome::Fatal { reply } => assert!(reply.contains("line too long")),
            other => panic!("{other:?}"),
        }
        // Under the limit without a terminator: just incomplete.
        assert_eq!(parse_frame(&[b'a'; 16], &limits), ParseOutcome::Incomplete);
    }

    #[test]
    fn bad_keys_are_rejected() {
        let long_key = format!("get {}\r\n", "k".repeat(251));
        assert!(matches!(
            parse(long_key.as_bytes()),
            ParseOutcome::Error { .. }
        ));
        // Control bytes in a key.
        assert!(matches!(
            parse(b"get k\x01ey\r\n"),
            ParseOutcome::Error { .. }
        ));
        assert!(matches!(parse(b"get\r\n"), ParseOutcome::Error { .. }));
        assert!(matches!(parse(b"delete\r\n"), ParseOutcome::Error { .. }));
    }

    #[test]
    fn non_utf8_line_is_recoverable() {
        match parse(b"\xff\xfe\xfd\r\nget k\r\n") {
            ParseOutcome::Error { reply, consumed } => {
                assert!(reply.contains("utf-8"));
                assert_eq!(consumed, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_newline_accepted_on_command_lines() {
        assert!(matches!(
            parse(b"get foo\n"),
            ParseOutcome::Frame { consumed: 8, .. }
        ));
        // But the value block terminator must be exactly \r\n.
        assert!(matches!(
            parse(b"set k 0 0 1\nx\n\n"),
            ParseOutcome::Fatal { .. }
        ));
    }

    #[test]
    fn encode_value_roundtrips() {
        let mut out = Vec::new();
        encode_value(&mut out, "k", 9, b"abc");
        assert_eq!(out, b"VALUE k 9 3\r\nabc\r\n");
    }
}

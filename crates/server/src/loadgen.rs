//! Closed-loop load generator: trace-driven clients over real TCP.
//!
//! Each client replays a disjoint slice of a `cache-trace` corpus (Zipf by
//! default; burst-train mixes pipeline a burst then go idle), one request
//! outstanding at a time, and records per-request latency. When op
//! recording is on, every request becomes a [`cache_concurrent::oplog::OpRecord`]
//! with globally-unique insert values and SeqCst interval stamps, so the
//! collected history feeds `cache-check`'s linearizability-lite checker —
//! including histories cut short by a chaos kill.

use cache_concurrent::oplog::{OpKind, OpRecord};
use cache_ds::rng::mix64;
use cache_ds::{Histogram, SplitMix64};
use cache_trace::gen::WorkloadSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Burst-train shaping: send a pipelined burst, then idle.
#[derive(Debug, Clone, Copy)]
pub struct BurstSpec {
    /// Requests pipelined per burst.
    pub burst_len: usize,
    /// Idle gap between bursts.
    pub idle: Duration,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Zipf keyspace size.
    pub keys: u64,
    /// Zipf skew (paper baseline: 1.0).
    pub alpha: f64,
    /// Fraction of requests that are sets.
    pub write_fraction: f64,
    /// Fraction of requests that are deletes (carved from the write share).
    pub delete_fraction: f64,
    /// Value payload size in bytes (min 16 when recording ops).
    pub value_size: usize,
    /// Master seed: trace + per-client op mix.
    pub seed: u64,
    /// Burst-train shaping; `None` is smooth closed-loop.
    pub burst: Option<BurstSpec>,
    /// Record an oplog history for the linearizability checker.
    pub record_ops: bool,
    /// Socket read timeout (a stuck server fails the run, not hangs it).
    pub read_timeout: Duration,
}

impl LoadgenConfig {
    /// A smooth Zipf mix against `addr`.
    pub fn zipf(addr: SocketAddr, clients: usize, requests_per_client: usize, seed: u64) -> Self {
        LoadgenConfig {
            addr,
            clients,
            requests_per_client,
            keys: 512,
            alpha: 1.0,
            write_fraction: 0.3,
            delete_fraction: 0.05,
            value_size: 32,
            seed,
            burst: None,
            record_ops: false,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Reply classification counts.
#[derive(Debug, Default, Clone)]
pub struct ErrorCounts {
    /// `SERVER_ERROR timeout` replies.
    pub timeouts: u64,
    /// `SERVER_ERROR shed-*` replies.
    pub shed: u64,
    /// `SERVER_ERROR busy` replies (accept backpressure).
    pub busy: u64,
    /// `SERVER_ERROR shutting-down` replies.
    pub shutting_down: u64,
    /// Typed degradation replies (`device-failure`/`corruption`/`degraded`).
    pub degradation: u64,
    /// `CLIENT_ERROR`/`ERROR` replies (should be zero for this generator).
    pub client_errors: u64,
    /// Connection-level failures (reset, refused, read timeout).
    pub io_errors: u64,
}

/// Aggregated run result.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Per-request latency in microseconds (successful round trips).
    pub latencies_us: Histogram,
    /// Requests that completed a round trip.
    pub ops: u64,
    /// get hits / misses observed.
    pub hits: u64,
    /// Clean get misses.
    pub misses: u64,
    /// STORED replies.
    pub stored: u64,
    /// Error classification.
    pub errors: ErrorCounts,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Oplog history (empty unless `record_ops`), sorted by start stamp.
    pub history: Vec<OpRecord>,
}

impl LoadgenReport {
    /// Completed round trips per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// What one client intends to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlannedOp {
    Get(u64),
    Set(u64),
    Delete(u64),
}

/// One client's private state.
struct Client {
    index: u32,
    stream: Option<BufStream>,
    cfg: LoadgenConfig,
    clock: Arc<AtomicU64>,
    seq: u64,
    report: LoadgenReport,
}

/// A blocking stream with a line-oriented read buffer.
struct BufStream {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BufStream {
    fn connect(addr: SocketAddr, read_timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(BufStream {
            stream,
            buf: Vec::new(),
        })
    }

    /// Reads one `\r\n`-terminated line (returned without the terminator).
    fn read_line(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(line);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Reads exactly `n` bytes (the data block of a VALUE reply).
    fn read_exact_buffered(&mut self, n: usize) -> std::io::Result<Vec<u8>> {
        while self.buf.len() < n {
            let mut chunk = [0u8; 4096];
            let got = self.stream.read(&mut chunk)?;
            if got == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.buf.extend_from_slice(&chunk[..got]);
        }
        Ok(self.buf.drain(..n).collect())
    }
}

/// One reply, classified.
#[derive(Debug)]
enum Reply {
    /// get: the single key's value bytes, or None on miss.
    GetResult(Option<Vec<u8>>),
    Stored,
    Deleted,
    NotFound,
    Timeout,
    Shed,
    Busy,
    ShuttingDown,
    Degradation,
    ClientError,
}

/// Encodes the unique oplog value into an ASCII payload of `size` bytes.
fn encode_value_payload(unique: u64, size: usize) -> Vec<u8> {
    let mut v = format!("{unique:016x}").into_bytes();
    v.resize(size.max(16), b'.');
    v
}

/// Decodes a payload written by [`encode_value_payload`]; `u64::MAX` marks
/// an undecodable payload so the checker flags it unconditionally.
fn decode_value_payload(data: &[u8]) -> u64 {
    if data.len() < 16 {
        return u64::MAX;
    }
    std::str::from_utf8(&data[..16])
        .ok()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .unwrap_or(u64::MAX)
}

impl Client {
    /// Writes the request line(s) for `op`. Returns the unique value for
    /// sets.
    fn send(&mut self, op: PlannedOp, out: &mut Vec<u8>) -> u64 {
        out.clear();
        match op {
            PlannedOp::Get(id) => {
                out.extend_from_slice(format!("get k{id}\r\n").as_bytes());
                0
            }
            PlannedOp::Set(id) => {
                self.seq += 1;
                let unique = (u64::from(self.index) << 40) | self.seq;
                let payload = encode_value_payload(unique, self.cfg.value_size);
                out.extend_from_slice(
                    format!("set k{id} 0 0 {}\r\n", payload.len()).as_bytes(),
                );
                out.extend_from_slice(&payload);
                out.extend_from_slice(b"\r\n");
                unique
            }
            PlannedOp::Delete(id) => {
                out.extend_from_slice(format!("delete k{id}\r\n").as_bytes());
                0
            }
        }
    }

    /// Reads and classifies the reply to `op`.
    fn read_reply(&mut self, op: PlannedOp) -> std::io::Result<Reply> {
        // Invariant: callers only invoke read_reply with a live stream.
        #[allow(clippy::expect_used)]
        let s = self.stream.as_mut().expect("read_reply without a stream");
        let line = s.read_line()?;
        if let Some(rest) = line.strip_prefix(b"SERVER_ERROR ".as_slice()) {
            return Ok(match rest {
                r if r.starts_with(b"timeout") => Reply::Timeout,
                r if r.starts_with(b"shed-") => Reply::Shed,
                r if r.starts_with(b"busy") => Reply::Busy,
                r if r.starts_with(b"shutting-down") => Reply::ShuttingDown,
                r if r.starts_with(b"device-failure")
                    || r.starts_with(b"corruption")
                    || r.starts_with(b"degraded") =>
                {
                    Reply::Degradation
                }
                _ => Reply::ClientError,
            });
        }
        if line.starts_with(b"CLIENT_ERROR") || line == b"ERROR" {
            return Ok(Reply::ClientError);
        }
        match op {
            PlannedOp::Get(_) => {
                if line == b"END" {
                    return Ok(Reply::GetResult(None));
                }
                // "VALUE <key> <flags> <len>"
                let text = String::from_utf8_lossy(&line);
                let len: usize = text
                    .split_whitespace()
                    .nth(3)
                    .and_then(|t| t.parse().ok())
                    .ok_or(std::io::ErrorKind::InvalidData)?;
                let data = s.read_exact_buffered(len + 2)?; // data + CRLF
                let end = s.read_line()?;
                if end != b"END" {
                    return Err(std::io::ErrorKind::InvalidData.into());
                }
                Ok(Reply::GetResult(Some(data[..len].to_vec())))
            }
            PlannedOp::Set(_) => match line.as_slice() {
                b"STORED" => Ok(Reply::Stored),
                _ => Ok(Reply::ClientError),
            },
            PlannedOp::Delete(_) => match line.as_slice() {
                b"DELETED" => Ok(Reply::Deleted),
                b"NOT_FOUND" => Ok(Reply::NotFound),
                _ => Ok(Reply::ClientError),
            },
        }
    }

    /// Accounts one completed round trip.
    fn account(&mut self, op: PlannedOp, reply: &Reply, latency_us: u64, start: u64, end: u64) {
        self.report.ops += 1;
        self.report.latencies_us.record(latency_us);
        let key = match op {
            PlannedOp::Get(id) | PlannedOp::Set(id) | PlannedOp::Delete(id) => id,
        };
        let mut kind: Option<OpKind> = None;
        match reply {
            Reply::GetResult(None) => {
                self.report.misses += 1;
                kind = Some(OpKind::Get(None));
            }
            Reply::GetResult(Some(data)) => {
                self.report.hits += 1;
                kind = Some(OpKind::Get(Some(decode_value_payload(data))));
            }
            Reply::Stored => {
                self.report.stored += 1;
                // kind filled by the caller (needs the unique value).
            }
            Reply::Deleted => kind = Some(OpKind::Remove(true)),
            Reply::NotFound => kind = Some(OpKind::Remove(false)),
            Reply::Timeout => self.report.errors.timeouts += 1,
            Reply::Shed => self.report.errors.shed += 1,
            Reply::Busy => self.report.errors.busy += 1,
            Reply::ShuttingDown => self.report.errors.shutting_down += 1,
            Reply::Degradation => self.report.errors.degradation += 1,
            Reply::ClientError => self.report.errors.client_errors += 1,
        }
        if self.cfg.record_ops {
            if let Some(kind) = kind {
                self.report.history.push(OpRecord {
                    thread: self.index,
                    key,
                    kind,
                    start,
                    end,
                });
            }
        }
    }

    /// Runs this client's slice of the trace to completion (or until the
    /// server becomes unreachable).
    fn run(&mut self, plan: &[PlannedOp]) {
        let t0 = Instant::now();
        let burst_len = self.cfg.burst.map_or(1, |b| b.burst_len.max(1));
        let mut wire = Vec::new();
        let mut i = 0;
        while i < plan.len() {
            if self.stream.is_none() {
                match BufStream::connect(self.cfg.addr, self.cfg.read_timeout) {
                    Ok(s) => self.stream = Some(s),
                    Err(_) => {
                        self.report.errors.io_errors += 1;
                        // Server gone (chaos kill or refused): stop; the
                        // harness inspects what completed.
                        break;
                    }
                }
            }
            let burst = &plan[i..(i + burst_len).min(plan.len())];
            // Pipeline the burst: write everything, then read every reply.
            let mut batch = Vec::new();
            let mut uniques = Vec::with_capacity(burst.len());
            let mut starts = Vec::with_capacity(burst.len());
            for &op in burst {
                // ORDERING: SeqCst interval stamps — the linearizability
                // checker requires one total order consistent with real
                // time across clients (same rationale as cache-concurrent's
                // oplog clock).
                starts.push(self.clock.fetch_add(1, Ordering::SeqCst) + 1);
                uniques.push(self.send(op, &mut wire));
                batch.extend_from_slice(&wire);
            }
            let sent_at = Instant::now();
            let write_ok = {
                // Invariant: stream established at the top of the loop.
                #[allow(clippy::expect_used)]
                let s = self.stream.as_mut().expect("stream vanished mid-burst");
                s.stream.write_all(&batch).is_ok()
            };
            if !write_ok {
                self.report.errors.io_errors += 1;
                self.stream = None;
                i += burst.len();
                continue;
            }
            for (j, &op) in burst.iter().enumerate() {
                match self.read_reply(op) {
                    Ok(reply) => {
                        // ORDERING: SeqCst, see the start stamp above.
                        let end = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
                        let latency = sent_at.elapsed().as_micros() as u64;
                        if let (Reply::Stored, true) = (&reply, self.cfg.record_ops) {
                            self.report.history.push(OpRecord {
                                thread: self.index,
                                key: match op {
                                    PlannedOp::Set(id) => id,
                                    _ => 0,
                                },
                                kind: OpKind::Insert(uniques[j]),
                                start: starts[j],
                                end,
                            });
                        }
                        self.account(op, &reply, latency, starts[j], end);
                    }
                    Err(_) => {
                        self.report.errors.io_errors += 1;
                        self.stream = None;
                        break;
                    }
                }
            }
            i += burst.len();
            if let Some(b) = self.cfg.burst {
                if i < plan.len() {
                    std::thread::sleep(b.idle);
                }
            }
        }
        self.report.elapsed = t0.elapsed();
    }
}

/// Builds the per-client op plans from one shared Zipf trace.
fn build_plans(cfg: &LoadgenConfig) -> Vec<Vec<PlannedOp>> {
    let total = cfg.clients * cfg.requests_per_client;
    let trace = WorkloadSpec::zipf("loadgen", total.max(1), cfg.keys.max(1), cfg.alpha, cfg.seed)
        .generate();
    let mut plans: Vec<Vec<PlannedOp>> = vec![Vec::with_capacity(cfg.requests_per_client); cfg.clients];
    let mut rng = SplitMix64::new(mix64(cfg.seed ^ 0x010A_D6E4));
    for (i, req) in trace.requests.iter().take(total).enumerate() {
        let draw = rng.next_f64();
        let op = if draw < cfg.delete_fraction {
            PlannedOp::Delete(req.id)
        } else if draw < cfg.delete_fraction + cfg.write_fraction {
            PlannedOp::Set(req.id)
        } else {
            PlannedOp::Get(req.id)
        };
        plans[i % cfg.clients].push(op);
    }
    plans
}

/// Runs the configured load and merges every client's report.
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    let plans = build_plans(cfg);
    let clock = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for (index, plan) in plans.into_iter().enumerate() {
        let cfg = cfg.clone();
        let clock = Arc::clone(&clock);
        handles.push(std::thread::spawn(move || {
            let mut client = Client {
                index: index as u32,
                stream: None,
                cfg,
                clock,
                seq: 0,
                report: LoadgenReport {
                    latencies_us: Histogram::new(),
                    ops: 0,
                    hits: 0,
                    misses: 0,
                    stored: 0,
                    errors: ErrorCounts::default(),
                    elapsed: Duration::ZERO,
                    history: Vec::new(),
                },
            };
            client.run(&plan);
            client.report
        }));
    }
    let mut merged = LoadgenReport {
        latencies_us: Histogram::new(),
        ops: 0,
        hits: 0,
        misses: 0,
        stored: 0,
        errors: ErrorCounts::default(),
        elapsed: Duration::ZERO,
        history: Vec::new(),
    };
    for h in handles {
        // A panicking client is itself a test failure; surface it.
        #[allow(clippy::expect_used)]
        let r = h.join().expect("loadgen client panicked");
        merged.latencies_us.merge(&r.latencies_us);
        merged.ops += r.ops;
        merged.hits += r.hits;
        merged.misses += r.misses;
        merged.stored += r.stored;
        merged.errors.timeouts += r.errors.timeouts;
        merged.errors.shed += r.errors.shed;
        merged.errors.busy += r.errors.busy;
        merged.errors.shutting_down += r.errors.shutting_down;
        merged.errors.degradation += r.errors.degradation;
        merged.errors.client_errors += r.errors.client_errors;
        merged.errors.io_errors += r.errors.io_errors;
        merged.history.extend(r.history);
    }
    merged.elapsed = t0.elapsed();
    merged.history.sort_by_key(|r| r.start);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_payload_roundtrip() {
        for unique in [0u64, 1, 0xDEAD_BEEF, u64::MAX - 1] {
            let p = encode_value_payload(unique, 32);
            assert_eq!(p.len(), 32);
            assert_eq!(decode_value_payload(&p), unique);
        }
        assert_eq!(decode_value_payload(b"short"), u64::MAX);
        assert_eq!(decode_value_payload(b"zzzzzzzzzzzzzzzz----"), u64::MAX);
    }

    #[test]
    fn plans_are_deterministic_and_partitioned() {
        let mut cfg = LoadgenConfig::zipf("127.0.0.1:1".parse().expect("addr"), 3, 50, 42);
        cfg.keys = 32;
        let a = build_plans(&cfg);
        let b = build_plans(&cfg);
        assert_eq!(a, b, "same seed → same plans");
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|p| p.len() >= 49), "near-even partition");
        let writes: usize = a
            .iter()
            .flatten()
            .filter(|op| matches!(op, PlannedOp::Set(_) | PlannedOp::Delete(_)))
            .count();
        // 35% nominal write+delete share on 150 ops.
        assert!((20..=85).contains(&writes), "write mix sane, got {writes}");
    }
}

//! A resilient cache *server*: shard-per-core TCP front end over the
//! workspace's concurrent S3-FIFO, speaking a memcached-flavored text
//! protocol, with an overload-control spine wired through the existing
//! crates.
//!
//! The robustness ladder, outermost to innermost:
//!
//! 1. **Bounded accept** — the acceptor hands connections to per-shard
//!    bounded queues; when a queue is full the connection gets `SERVER_ERROR
//!    busy` and is closed (backpressure instead of collapse), and the
//!    overflow is charged to the load shedder's error budgets.
//! 2. **Per-request deadlines** — a request that cannot finish inside its
//!    deadline returns `SERVER_ERROR timeout`; the miss feeds the shedder.
//! 3. **Error-budget load shedding** ([`shed`]) — deadline misses and
//!    accept overflow trip sliding-window budgets ([`cache_faults::ErrorBudget`]
//!    semantics): writes shed first, then reads; canary probes recover.
//! 4. **Graceful degradation** ([`store`]) — the flash tier's
//!    retry → DRAM-only → recover ladder surfaces as *typed* protocol
//!    errors (`SERVER_ERROR device-failure:/corruption:/degraded:`).
//! 5. **Graceful shutdown** ([`drain`]) — an accept-gate + in-flight
//!    counter handshake (modeled in loom-lite) drains in-flight requests
//!    and emits a final observability snapshot.
//!
//! The [`chaos`] module (test-only) turns seeded [`cache_faults::FaultPlan`]s
//! into misbehaving clients — slow readers, malformed frames, connection
//! storms, injected device faults, kill-mid-load — and asserts the ladder
//! holds: no panics, no lost updates or resurrections (oplog +
//! `cache-check`), bounded p99 while shedding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drain;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod shed;
pub mod store;

#[cfg(test)]
mod chaos;

pub use drain::DrainGate;
pub use proto::{parse_frame, Command, Limits, ParseOutcome};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shed::{Admission, LoadShedder, ShedConfig, ShedLevel};
pub use store::{StoreConfig, TtlStore};

//! The TCP front end: acceptor + shard-per-core event loops.
//!
//! ```text
//!             ┌─ acceptor ─┐   bounded SyncSender<TcpStream> queues
//!   clients ─▶│ nonblocking │──▶ shard 0 loop ─┐
//!             │   accept    │──▶ shard 1 loop ─┼─▶ TtlStore (shared)
//!             └─────────────┘──▶ ...           ─┘   LoadShedder (shared)
//! ```
//!
//! Each shard owns its connections outright — reads, parses, executes, and
//! writes happen on the shard thread, so the only cross-thread state is the
//! store, the shedder, and the drain gate. Sockets are nonblocking; a shard
//! sweep services every connection once and sleeps briefly when idle.
//!
//! Overload behavior, outermost first: a full shard queue bounces the
//! connection with `SERVER_ERROR busy` (counted as shedder overflow); a
//! slow reader whose outbuf exceeds the cap is disconnected; a request that
//! overruns its deadline returns `SERVER_ERROR timeout` and feeds the
//! shedder; a tripped shedder bounces requests with `SERVER_ERROR
//! shed-write` / `shed-read` before they touch the store.

use crate::drain::DrainGate;
use crate::proto::{self, Command, Limits, ParseOutcome};
use crate::shed::{Admission, LoadShedder, ShedConfig};
use crate::store::{self, StoreConfig, TtlStore};
use cache_faults::{FaultPlan, OpClass};
use cache_obs::{registry_to_json_lines, registry_to_prometheus, MetricsRegistry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Shard (worker thread) count; clamped to at least 1.
    pub shards: usize,
    /// Pending-connection queue depth per shard (bounded accept).
    pub queue_depth: usize,
    /// Open-connection cap per shard; excess connections are bounced.
    pub max_conns_per_shard: usize,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Outbuf cap per connection; a reader lagging past it is dropped.
    pub max_outbuf: usize,
    /// Protocol limits (line/value/key-count caps).
    pub limits: Limits,
    /// Storage engine configuration.
    pub store: StoreConfig,
    /// Load-shedder budgets.
    pub shed: ShedConfig,
    /// Fault plan: device faults for the flash tier and injected delays.
    pub fault_plan: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(4),
            queue_depth: 64,
            max_conns_per_shard: 256,
            deadline: Duration::from_millis(50),
            max_outbuf: 1 << 20,
            limits: Limits::default(),
            store: StoreConfig::default(),
            shed: ShedConfig::default(),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Front-end counters (advisory; the store keeps its own).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections handed to a shard.
    pub conns_accepted: AtomicU64,
    /// Connections bounced with `busy` (full queues or conn cap).
    pub conns_rejected: AtomicU64,
    /// Connections bounced because shutdown had begun.
    pub conns_draining: AtomicU64,
    /// Requests executed (admitted past the shedder).
    pub requests: AtomicU64,
    /// Requests answered `SERVER_ERROR timeout`.
    pub timeouts: AtomicU64,
    /// Requests bounced by the shedder.
    pub shed_replies: AtomicU64,
    /// Recoverable protocol errors (CLIENT_ERROR replies).
    pub parse_errors: AtomicU64,
    /// Connections closed on a fatal framing error.
    pub fatal_closes: AtomicU64,
    /// Connections dropped for reading too slowly.
    pub slow_reader_drops: AtomicU64,
    /// Microseconds of injected (fault-plan) delay actually slept.
    pub injected_delay_us: AtomicU64,
}

/// Shared state visible to the acceptor and every shard.
struct Shared {
    store: TtlStore,
    shed: LoadShedder,
    gate: DrainGate,
    /// Hard-stop flag for the event loops (set after drain completes).
    stop: AtomicBool,
    counters: ServerCounters,
    /// Open connections across all shards (gauge).
    conns_open: AtomicU64,
    cfg: ServerConfig,
    started: Instant,
}

/// Marker type: construct a running server with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A running server; dropping it without [`ServerHandle::shutdown`] aborts
/// connections without draining.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
}

/// What a graceful shutdown observed.
#[derive(Debug)]
pub struct ShutdownReport {
    /// True when every in-flight request finished inside the drain window.
    pub drained: bool,
    /// Requests still in flight when the window closed (0 when drained).
    pub leaked_in_flight: usize,
    /// Final metrics snapshot, Prometheus exposition format.
    pub prometheus: String,
    /// Final metrics snapshot, JSON lines.
    pub json_lines: String,
    /// Total requests executed.
    pub requests: u64,
}

impl Server {
    /// Binds, spawns the acceptor and shard threads, and returns a handle.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unusable.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shards = cfg.shards.max(1);
        let shared = Arc::new(Shared {
            store: TtlStore::new(cfg.store, cfg.fault_plan.clone()),
            shed: LoadShedder::new(cfg.shed),
            gate: DrainGate::new(),
            stop: AtomicBool::new(false),
            counters: ServerCounters::default(),
            conns_open: AtomicU64::new(0),
            cfg: cfg.clone(),
            started: Instant::now(),
        });

        let mut senders: Vec<SyncSender<TcpStream>> = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_depth.max(1));
            senders.push(tx);
            let shared = Arc::clone(&shared);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("cache-shard-{i}"))
                    .spawn(move || shard_loop(&shared, &rx))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cache-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, &senders))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            shards: shard_handles,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared storage engine (for white-box assertions in tests).
    pub fn ttl_store(&self) -> &TtlStore {
        &self.shared.store
    }

    /// The shared load shedder.
    pub fn shedder(&self) -> &LoadShedder {
        &self.shared.shed
    }

    /// Front-end counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.shared.counters
    }

    /// Builds a point-in-time metrics registry (used by the `metrics`
    /// command and the final shutdown snapshot).
    pub fn collect_metrics(&self) -> MetricsRegistry {
        collect_registry(&self.shared)
    }

    /// Graceful shutdown: close the accept gate, drain in-flight requests,
    /// stop the loops, join every thread, and return a final snapshot.
    // ORDERING: SeqCst store on `stop` pairs with the loops' SeqCst loads —
    // the stop flag must be ordered after the drain-gate close in the single
    // total order so no loop observes stop without also observing closed.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.gate.close();
        let drained = self.shared.gate.await_drained(Duration::from_secs(5));
        let leaked = self.shared.gate.in_flight();
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
        let registry = collect_registry(&self.shared);
        ShutdownReport {
            drained,
            leaked_in_flight: leaked,
            prometheus: registry_to_prometheus(&registry),
            json_lines: registry_to_json_lines(&registry),
            requests: self.shared.counters.requests.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ServerHandle {
    // ORDERING: SeqCst, same rationale as `shutdown`.
    fn drop(&mut self) {
        self.shared.gate.close();
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds a metrics registry from the live counters.
// ORDERING: Relaxed counter loads — advisory snapshot.
fn collect_registry(shared: &Shared) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    let scope = registry.scope("cache_server");
    shared.store.export_obs(&scope);
    let c = &shared.counters;
    let s = scope.scope("frontend");
    s.counter("conns_accepted").add(c.conns_accepted.load(Ordering::Relaxed));
    s.counter("conns_rejected").add(c.conns_rejected.load(Ordering::Relaxed));
    s.counter("conns_draining").add(c.conns_draining.load(Ordering::Relaxed));
    s.counter("requests").add(c.requests.load(Ordering::Relaxed));
    s.counter("timeouts").add(c.timeouts.load(Ordering::Relaxed));
    s.counter("shed_replies").add(c.shed_replies.load(Ordering::Relaxed));
    s.counter("parse_errors").add(c.parse_errors.load(Ordering::Relaxed));
    s.counter("fatal_closes").add(c.fatal_closes.load(Ordering::Relaxed));
    s.counter("slow_reader_drops").add(c.slow_reader_drops.load(Ordering::Relaxed));
    s.counter("injected_delay_us").add(c.injected_delay_us.load(Ordering::Relaxed));
    s.gauge("conns_open").set(shared.conns_open.load(Ordering::Relaxed) as i64);
    let shed = scope.scope("shed");
    let (level, sw, sr, dm, of, pr, wt, wrec, rt, rrec) = shared.shed.snapshot();
    shed.gauge("level").set(match level {
        crate::shed::ShedLevel::Normal => 0,
        crate::shed::ShedLevel::ShedWrites => 1,
        crate::shed::ShedLevel::ShedAll => 2,
    });
    shed.counter("shed_writes").add(sw);
    shed.counter("shed_reads").add(sr);
    shed.counter("deadline_misses").add(dm);
    shed.counter("overflows").add(of);
    shed.counter("probes").add(pr);
    shed.counter("write_trips").add(wt);
    shed.counter("write_recoveries").add(wrec);
    shed.counter("read_trips").add(rt);
    shed.counter("read_recoveries").add(rrec);
    let delays = shared.store.delay_stats();
    let faults = scope.scope("faults");
    faults.counter("delays").add(delays.delays);
    faults.counter("delay_units").add(delays.delay_units);
    registry
}

/// Writes a canned reply to a fresh connection and drops it.
fn bounce(mut conn: TcpStream, reply: &[u8]) {
    let _ = conn.set_nodelay(true);
    let _ = conn.write_all(reply);
    // Dropping conn closes it; a lingering RST on unread input is fine.
}

/// The acceptor: nonblocking accept + round-robin handoff to shard queues.
// ORDERING: SeqCst load of `stop` — pairs with shutdown's SeqCst store (see
// ServerHandle::shutdown).
fn accept_loop(shared: &Shared, listener: &TcpListener, senders: &[SyncSender<TcpStream>]) {
    let mut next = 0usize;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                if shared.gate.is_closed() {
                    shared.counters.conns_draining.fetch_add(1, Ordering::Relaxed);
                    bounce(conn, b"SERVER_ERROR shutting-down\r\n");
                    continue;
                }
                // Round-robin, skipping full queues: the connection lands on
                // the first shard with room, or bounces when all are full.
                let mut handed = false;
                let mut conn = Some(conn);
                for probe in 0..senders.len() {
                    let idx = (next + probe) % senders.len();
                    // Invariant: conn is Some until the loop hands it off or
                    // breaks; try_send returns it on failure.
                    #[allow(clippy::expect_used)]
                    let c = conn.take().expect("connection consumed twice");
                    match senders[idx].try_send(c) {
                        Ok(()) => {
                            handed = true;
                            next = (idx + 1) % senders.len();
                            shared.counters.conns_accepted.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => {
                            conn = Some(c);
                        }
                    }
                }
                if !handed {
                    // Backpressure instead of collapse: typed busy reply,
                    // charged to the shedder as overflow.
                    shared.counters.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    shared.shed.record_overflow();
                    if let Some(c) = conn {
                        bounce(c, b"SERVER_ERROR busy\r\n");
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => {
                // Transient accept errors (e.g. aborted handshake): brief
                // pause, keep serving.
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Write out what is buffered, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            closing: false,
        })
    }
}

/// The shard event loop: adopt queued connections, sweep each connection
/// (read → parse/execute → write), sleep briefly when idle.
// ORDERING: SeqCst load of `stop` — pairs with shutdown's SeqCst store.
fn shard_loop(shared: &Shared, rx: &Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut read_buf = vec![0u8; 16 * 1024];
    while !shared.stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        // Adopt pending connections, bouncing past the per-shard cap.
        while let Ok(stream) = rx.try_recv() {
            progressed = true;
            if conns.len() >= shared.cfg.max_conns_per_shard {
                shared.counters.conns_rejected.fetch_add(1, Ordering::Relaxed);
                shared.shed.record_overflow();
                bounce(stream, b"SERVER_ERROR busy\r\n");
                continue;
            }
            match Conn::new(stream) {
                Ok(c) => {
                    shared.conns_open.fetch_add(1, Ordering::Relaxed);
                    conns.push(c);
                }
                Err(_) => {
                    // Socket died before setup; nothing to clean up.
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let alive = sweep_conn(shared, &mut conns[i], &mut read_buf, &mut progressed);
            if alive {
                i += 1;
            } else {
                shared.conns_open.fetch_sub(1, Ordering::Relaxed);
                conns.swap_remove(i);
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Stop: best-effort final flush so drained replies reach clients.
    let flush_deadline = Instant::now() + Duration::from_millis(100);
    for conn in &mut conns {
        while !conn.outbuf.is_empty() && Instant::now() < flush_deadline {
            if !flush_outbuf(conn) {
                break;
            }
            if !conn.outbuf.is_empty() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    let n = conns.len() as u64;
    shared.conns_open.fetch_sub(n, Ordering::Relaxed);
}

/// Writes as much buffered output as the socket accepts. Returns false when
/// the connection is dead.
fn flush_outbuf(conn: &mut Conn) -> bool {
    while !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbuf.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Services one connection once. Returns false when the connection should
/// be dropped.
// ORDERING: Relaxed counter bumps only — statistics, not synchronization;
// request admission ordering lives in DrainGate/LoadShedder.
fn sweep_conn(shared: &Shared, conn: &mut Conn, read_buf: &mut [u8], progressed: &mut bool) -> bool {
    // 1. Read whatever is available.
    if !conn.closing {
        loop {
            match conn.stream.read(read_buf) {
                Ok(0) => {
                    // Peer half-closed; process what we have, then close.
                    conn.closing = true;
                    *progressed = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&read_buf[..n]);
                    *progressed = true;
                    if n < read_buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }
    // 2. Parse and execute complete frames.
    let mut quit = false;
    while !quit {
        match proto::parse_frame(&conn.inbuf, &shared.cfg.limits) {
            ParseOutcome::Incomplete => break,
            ParseOutcome::Frame { cmd, consumed } => {
                conn.inbuf.drain(..consumed);
                *progressed = true;
                quit = handle_command(shared, conn, cmd);
            }
            ParseOutcome::Error { reply, consumed } => {
                conn.inbuf.drain(..consumed);
                *progressed = true;
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                conn.outbuf.extend_from_slice(reply.as_bytes());
            }
            ParseOutcome::Fatal { reply } => {
                *progressed = true;
                shared.counters.fatal_closes.fetch_add(1, Ordering::Relaxed);
                conn.outbuf.extend_from_slice(reply.as_bytes());
                conn.inbuf.clear();
                quit = true;
            }
        }
    }
    if quit {
        conn.closing = true;
    }
    // 3. Flush; enforce the slow-reader cap.
    if !flush_outbuf(conn) {
        return false;
    }
    if conn.outbuf.len() > shared.cfg.max_outbuf {
        shared.counters.slow_reader_drops.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    // A closing connection lingers until its outbuf is flushed.
    !(conn.closing && conn.outbuf.is_empty())
}

/// Executes one parsed command against the store, the shedder, and the
/// drain gate. Returns true when the connection should close (quit/fatal).
// ORDERING: Relaxed counter bumps — advisory stats; admission and drain
// correctness live in LoadShedder and DrainGate respectively.
fn handle_command(shared: &Shared, conn: &mut Conn, cmd: Command) -> bool {
    // Commands that bypass admission entirely.
    match &cmd {
        Command::Quit => return true,
        Command::Version => {
            conn.outbuf.extend_from_slice(b"VERSION s3fifo-cache 0.1\r\n");
            return false;
        }
        Command::Stats => {
            write_stats(shared, &mut conn.outbuf);
            return false;
        }
        Command::Metrics => {
            let registry = collect_registry(shared);
            let text = registry_to_prometheus(&registry);
            conn.outbuf.extend_from_slice(text.as_bytes());
            conn.outbuf.extend_from_slice(b"END\r\n");
            return false;
        }
        _ => {}
    }
    let noreply = match &cmd {
        Command::Set { noreply, .. } | Command::Delete { noreply, .. } => *noreply,
        _ => false,
    };
    // Drain gate: no new work once shutdown began.
    let Some(_in_flight) = shared.gate.try_enter() else {
        if !noreply {
            conn.outbuf.extend_from_slice(b"SERVER_ERROR shutting-down\r\n");
        }
        return true;
    };
    // Load shedder: bounce before touching the store.
    let is_write = cmd.is_write();
    let admission = shared.shed.admit(is_write);
    if admission == Admission::Shed {
        shared.counters.shed_replies.fetch_add(1, Ordering::Relaxed);
        if !noreply {
            conn.outbuf.extend_from_slice(if is_write {
                b"SERVER_ERROR shed-write\r\n".as_slice()
            } else {
                b"SERVER_ERROR shed-read\r\n".as_slice()
            });
        }
        return false;
    }
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    // Deadline clock starts at admission; injected (fault-plan) delays are
    // slept against it so a delay fault can push a request over.
    let start = Instant::now();
    let deadline = shared.cfg.deadline;
    let class = if is_write { OpClass::Write } else { OpClass::Read };
    let delay_us = shared.store.next_delay_us(class);
    if delay_us > 0 {
        let remaining = deadline.saturating_sub(start.elapsed());
        let sleep = Duration::from_micros(delay_us).min(remaining + Duration::from_millis(1));
        std::thread::sleep(sleep);
        shared
            .counters
            .injected_delay_us
            .fetch_add(sleep.as_micros() as u64, Ordering::Relaxed);
    }
    let mut reply = Vec::new();
    let timed_out = if start.elapsed() >= deadline {
        // The injected delay alone blew the budget; never touch the store.
        true
    } else {
        execute(shared, cmd, &mut reply);
        start.elapsed() >= deadline
    };
    if timed_out {
        shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
        reply.clear();
        reply.extend_from_slice(b"SERVER_ERROR timeout\r\n");
    }
    let met = !timed_out;
    match admission {
        Admission::Probe => shared.shed.record_probe_outcome(is_write, met),
        _ => shared.shed.record_outcome(is_write, met),
    }
    // noreply suppresses success replies AND errors (memcached semantics);
    // timeouts on noreply ops are visible only to stats.
    if !noreply {
        conn.outbuf.extend_from_slice(&reply);
    }
    false
}

/// Runs the store operation and formats the success/typed-error reply.
fn execute(shared: &Shared, cmd: Command, reply: &mut Vec<u8>) {
    match cmd {
        Command::Get { keys } => {
            for key in &keys {
                match shared.store.get(key) {
                    Ok(Some(v)) => proto::encode_value(reply, key, v.flags, &v.data),
                    Ok(None) => {}
                    Err(e) => {
                        // Typed degradation error replaces the whole reply.
                        reply.clear();
                        reply.extend_from_slice(&store::error_reply(&e));
                        return;
                    }
                }
            }
            reply.extend_from_slice(b"END\r\n");
        }
        Command::Set {
            key,
            flags,
            exptime,
            value,
            ..
        } => match shared.store.set(&key, flags, exptime, &value) {
            Ok(()) => reply.extend_from_slice(b"STORED\r\n"),
            Err(e) => reply.extend_from_slice(&store::error_reply(&e)),
        },
        Command::Delete { key, .. } => {
            if shared.store.delete(&key) {
                reply.extend_from_slice(b"DELETED\r\n");
            } else {
                reply.extend_from_slice(b"NOT_FOUND\r\n");
            }
        }
        // Handled before admission; unreachable here but total anyway.
        Command::Stats | Command::Metrics | Command::Version | Command::Quit => {}
    }
}

/// Formats the STATS reply.
// ORDERING: Relaxed counter loads — advisory stats.
fn write_stats(shared: &Shared, out: &mut Vec<u8>) {
    use std::fmt::Write as _;
    let mut text = String::new();
    let mut stat = |name: &str, value: String| {
        // Invariant: writing to a String cannot fail.
        let _ = writeln!(text, "STAT {name} {value}\r");
    };
    let c = &shared.counters;
    let sc = &shared.store.counters;
    let cache = shared.store.cache_stats();
    let (level, sw, sr, dm, of, pr, wt, wrec, rt, rrec) = shared.shed.snapshot();
    stat("uptime_ms", shared.started.elapsed().as_millis().to_string());
    stat("curr_connections", shared.conns_open.load(Ordering::Relaxed).to_string());
    stat("total_connections", c.conns_accepted.load(Ordering::Relaxed).to_string());
    stat("rejected_connections", c.conns_rejected.load(Ordering::Relaxed).to_string());
    stat("cmd_get", sc.gets.load(Ordering::Relaxed).to_string());
    stat("cmd_set", sc.sets.load(Ordering::Relaxed).to_string());
    stat("get_hits", sc.hits.load(Ordering::Relaxed).to_string());
    stat(
        "get_misses",
        sc.gets
            .load(Ordering::Relaxed)
            .saturating_sub(sc.hits.load(Ordering::Relaxed))
            .to_string(),
    );
    stat("deletes", sc.deletes.load(Ordering::Relaxed).to_string());
    stat("expired", sc.expired.load(Ordering::Relaxed).to_string());
    stat("collisions", sc.collisions.load(Ordering::Relaxed).to_string());
    stat("resident", shared.store.len().to_string());
    stat("capacity", shared.store.capacity().to_string());
    stat("dram_hit_ratio", format!("{:.4}", cache.hit_ratio()));
    stat("requests", c.requests.load(Ordering::Relaxed).to_string());
    stat("timeouts", c.timeouts.load(Ordering::Relaxed).to_string());
    stat("parse_errors", c.parse_errors.load(Ordering::Relaxed).to_string());
    stat("fatal_closes", c.fatal_closes.load(Ordering::Relaxed).to_string());
    stat("slow_reader_drops", c.slow_reader_drops.load(Ordering::Relaxed).to_string());
    stat("injected_delay_us", c.injected_delay_us.load(Ordering::Relaxed).to_string());
    stat("shed_level", level.label().to_string());
    stat("shed_writes", sw.to_string());
    stat("shed_reads", sr.to_string());
    stat("shed_replies", c.shed_replies.load(Ordering::Relaxed).to_string());
    stat("deadline_misses", dm.to_string());
    stat("overflows", of.to_string());
    stat("probes", pr.to_string());
    stat("write_budget_trips", wt.to_string());
    stat("write_budget_recoveries", wrec.to_string());
    stat("read_budget_trips", rt.to_string());
    stat("read_budget_recoveries", rrec.to_string());
    stat("flash_state", shared.store.flash_state().to_string());
    stat("device_failures", sc.device_failures.load(Ordering::Relaxed).to_string());
    stat("corruptions", sc.corruptions.load(Ordering::Relaxed).to_string());
    stat("degraded", sc.degraded.load(Ordering::Relaxed).to_string());
    out.extend_from_slice(text.as_bytes());
    out.extend_from_slice(b"END\r\n");
}

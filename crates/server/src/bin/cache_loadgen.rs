//! Closed-loop load generator and scenario bench driver.
//!
//! Two modes:
//!
//! - `--addr HOST:PORT` drives an already-running server with the nominal
//!   Zipf mix and prints a latency/throughput summary.
//! - `--self-host` (the CI / EXPERIMENTS mode) starts an in-process server
//!   on an ephemeral port per scenario and runs the three standard loads:
//!   `nominal` (smooth Zipf), `burst-storm` (pipelined burst trains over
//!   many clients against a small accept queue), and `degraded`
//!   (write-classed injected delays + a faulty flash tier under a tight
//!   deadline, exercising the shed ladder). Every self-hosted scenario must
//!   drain cleanly on shutdown.
//!
//! ```text
//! cache_loadgen --self-host [--smoke] [--seed N] [--out BENCH.json]
//!               [--prom-out METRICS.prom]
//! cache_loadgen --addr HOST:PORT [--clients N] [--requests N] [--seed N]
//! ```
//!
//! Exit codes: 0 ok; 1 usage/connect error; 2 a self-hosted scenario
//! failed an invariant (unclean drain, protocol errors, or zero
//! completed ops).

use cache_faults::{DelaySpec, ErrorBudgetConfig, FaultKind, FaultPlan, OpClass, Schedule};
use cache_server::loadgen::{self, BurstSpec, LoadgenConfig, LoadgenReport};
use cache_server::server::{Server, ServerConfig, ShutdownReport};
use cache_server::shed::ShedConfig;
use std::net::SocketAddr;
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// One scenario's merged numbers, JSON-serialised by hand (no deps).
struct ScenarioResult {
    name: &'static str,
    report: LoadgenReport,
    shutdown: Option<ShutdownReport>,
    shed_level: String,
}

impl ScenarioResult {
    fn to_json(&self) -> String {
        let r = &self.report;
        let q = |p: f64| r.latencies_us.quantile(p).unwrap_or(0);
        let e = &r.errors;
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"ops\":{},\"elapsed_s\":{:.3},",
                "\"throughput_ops_s\":{:.1},\"p50_us\":{},\"p90_us\":{},",
                "\"p99_us\":{},\"p999_us\":{},\"hits\":{},\"misses\":{},",
                "\"stored\":{},\"errors\":{{\"timeouts\":{},\"shed\":{},",
                "\"busy\":{},\"shutting_down\":{},\"degradation\":{},",
                "\"client_errors\":{},\"io_errors\":{}}},",
                "\"shed_level\":\"{}\",\"drained\":{}}}"
            ),
            self.name,
            r.ops,
            r.elapsed.as_secs_f64(),
            r.throughput(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
            r.hits,
            r.misses,
            r.stored,
            e.timeouts,
            e.shed,
            e.busy,
            e.shutting_down,
            e.degradation,
            e.client_errors,
            e.io_errors,
            self.shed_level,
            self.shutdown.as_ref().is_none_or(|s| s.drained),
        )
    }

    /// Human-readable one-liner for stderr progress.
    fn summary(&self) -> String {
        let r = &self.report;
        let q = |p: f64| r.latencies_us.quantile(p).unwrap_or(0);
        format!(
            "{:<12} ops={:<6} thr={:>8.0}/s p50={:>6}us p99={:>7}us p999={:>7}us \
             timeouts={} shed={} busy={} degr={} cerr={} io={} level={} drained={}",
            self.name,
            r.ops,
            r.throughput(),
            q(0.50),
            q(0.99),
            q(0.999),
            r.errors.timeouts,
            r.errors.shed,
            r.errors.busy,
            r.errors.degradation,
            r.errors.client_errors,
            r.errors.io_errors,
            self.shed_level,
            self.shutdown.as_ref().is_none_or(|s| s.drained),
        )
    }

    /// True when the scenario satisfied the smoke invariants.
    fn healthy(&self) -> bool {
        self.report.ops > 0
            && self.report.errors.client_errors == 0
            && self.shutdown.as_ref().is_none_or(|s| s.drained)
    }
}

/// The `nominal` scenario: plain server, smooth Zipf closed loop.
fn run_nominal(seed: u64, clients: usize, requests: usize) -> Option<ScenarioResult> {
    let handle = match Server::start(ServerConfig::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cache_loadgen: nominal bind failed: {e}");
            return None;
        }
    };
    let cfg = LoadgenConfig::zipf(handle.addr(), clients, requests, seed);
    let report = loadgen::run(&cfg);
    let shed_level = handle.shedder().snapshot().0.label().to_string();
    let shutdown = handle.shutdown();
    Some(ScenarioResult {
        name: "nominal",
        report,
        shutdown: Some(shutdown),
        shed_level,
    })
}

/// The `burst-storm` scenario: burst-train clients against a server with a
/// small accept queue and connection cap, so backpressure (busy bounces)
/// engages while the server keeps serving.
fn run_burst_storm(seed: u64, clients: usize, requests: usize) -> Option<ScenarioResult> {
    let scfg = ServerConfig {
        shards: 2,
        queue_depth: 8,
        max_conns_per_shard: 64,
        ..ServerConfig::default()
    };
    let handle = match Server::start(scfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cache_loadgen: burst-storm bind failed: {e}");
            return None;
        }
    };
    let mut cfg = LoadgenConfig::zipf(handle.addr(), clients, requests, seed ^ 0xB0_0575);
    cfg.burst = Some(BurstSpec {
        burst_len: 32,
        idle: Duration::from_millis(2),
    });
    let report = loadgen::run(&cfg);
    let shed_level = handle.shedder().snapshot().0.label().to_string();
    let shutdown = handle.shutdown();
    Some(ScenarioResult {
        name: "burst-storm",
        report,
        shutdown: Some(shutdown),
        shed_level,
    })
}

/// The `degraded` scenario: write-classed injected delays past a tight
/// deadline plus a bursty-faulty flash tier, so the shed ladder trips on
/// writes and degradation errors surface as typed replies.
fn run_degraded(seed: u64, clients: usize, requests: usize) -> Option<ScenarioResult> {
    let mut scfg = ServerConfig {
        deadline: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    scfg.store.flash_total_bytes = 64 * 1024;
    scfg.store.fault_seed = seed | 1;
    scfg.fault_plan = FaultPlan::new(seed | 1)
        .with(
            FaultKind::TransientWrite,
            Schedule::Burst {
                period: 400,
                burst_len: 80,
                inside: 0.8,
                outside: 0.0,
            },
        )
        .with(
            FaultKind::ReadError,
            Schedule::Burst {
                period: 400,
                burst_len: 80,
                inside: 0.4,
                outside: 0.0,
            },
        )
        .with_delay(DelaySpec::constant(Some(OpClass::Write), 0.5, 6_000, 9_000));
    scfg.shed = ShedConfig {
        write: ErrorBudgetConfig {
            window_ops: 64,
            max_errors: 4,
            probe_interval: 64,
            recovery_probes: 3,
        },
        read: ErrorBudgetConfig {
            window_ops: 256,
            max_errors: 64,
            probe_interval: 64,
            recovery_probes: 3,
        },
    };
    let handle = match Server::start(scfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cache_loadgen: degraded bind failed: {e}");
            return None;
        }
    };
    let mut cfg = LoadgenConfig::zipf(handle.addr(), clients, requests, seed ^ 0xDE_64AD);
    cfg.write_fraction = 0.4;
    let report = loadgen::run(&cfg);
    let shed_level = handle.shedder().snapshot().0.label().to_string();
    let shutdown = handle.shutdown();
    Some(ScenarioResult {
        name: "degraded",
        report,
        shutdown: Some(shutdown),
        shed_level,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") || has_flag(&args, "-h") {
        eprintln!(
            "usage: cache_loadgen --self-host [--smoke] [--seed N] [--clients N] \
             [--requests N] [--out BENCH.json] [--prom-out METRICS.prom]\n\
             \x20      cache_loadgen --addr HOST:PORT [--clients N] [--requests N] [--seed N]"
        );
        return;
    }
    let seed = parse_flag::<u64>(&args, "--seed").unwrap_or(0x5EED_CAFE);
    let smoke = has_flag(&args, "--smoke");
    let clients = parse_flag::<usize>(&args, "--clients").unwrap_or(if smoke { 3 } else { 4 });
    let requests =
        parse_flag::<usize>(&args, "--requests").unwrap_or(if smoke { 600 } else { 4_000 });

    if let Some(addr) = parse_flag::<String>(&args, "--addr") {
        // External mode: nominal mix against a running server.
        let addr: SocketAddr = match addr.parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cache_loadgen: bad --addr: {e}");
                std::process::exit(1);
            }
        };
        let cfg = LoadgenConfig::zipf(addr, clients, requests, seed);
        let report = loadgen::run(&cfg);
        let result = ScenarioResult {
            name: "external",
            report,
            shutdown: None,
            shed_level: "unknown".to_string(),
        };
        eprintln!("{}", result.summary());
        println!("[{}]", result.to_json());
        if result.report.ops == 0 {
            std::process::exit(1);
        }
        return;
    }
    if !has_flag(&args, "--self-host") {
        eprintln!("cache_loadgen: need --addr or --self-host (see --help)");
        std::process::exit(1);
    }

    // Self-host mode: the three standard scenarios, sequentially, each on
    // its own ephemeral-port server.
    let mut results: Vec<ScenarioResult> = Vec::new();
    for (name, runner) in [
        ("nominal", run_nominal as fn(u64, usize, usize) -> Option<ScenarioResult>),
        ("burst-storm", run_burst_storm),
        ("degraded", run_degraded),
    ] {
        eprintln!("cache_loadgen: running scenario {name}");
        match runner(seed, clients, requests) {
            Some(r) => {
                eprintln!("{}", r.summary());
                results.push(r);
            }
            None => std::process::exit(1),
        }
    }

    let json = format!(
        "{{\"bench\":\"cache_server\",\"seed\":{},\"clients\":{},\"requests_per_client\":{},\"scenarios\":[{}]}}",
        seed,
        clients,
        requests,
        results
            .iter()
            .map(ScenarioResult::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    match parse_flag::<String>(&args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cache_loadgen: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("cache_loadgen: wrote {path}");
        }
        None => println!("{json}"),
    }
    if let Some(path) = parse_flag::<String>(&args, "--prom-out") {
        // The nominal scenario's final snapshot stands in for "a healthy
        // server's metrics page" in CI validation.
        let prom = results
            .iter()
            .find_map(|r| r.shutdown.as_ref().map(|s| s.prometheus.clone()))
            .unwrap_or_default();
        if let Err(e) = std::fs::write(&path, prom) {
            eprintln!("cache_loadgen: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("cache_loadgen: wrote {path}");
    }

    let unhealthy: Vec<&str> = results
        .iter()
        .filter(|r| !r.healthy())
        .map(|r| r.name)
        .collect();
    if !unhealthy.is_empty() {
        eprintln!("cache_loadgen: scenario invariants failed: {unhealthy:?}");
        std::process::exit(2);
    }
}

//! The cache server binary.
//!
//! ```text
//! cache_server [--addr HOST:PORT] [--shards N] [--capacity N]
//!              [--flash-bytes N] [--deadline-ms N] [--fault-seed N]
//!              [--delay-p P --delay-min-us N --delay-max-us N]
//!              [--duration-secs N]
//! ```
//!
//! Runs until `--duration-secs` elapses (then drains gracefully and prints
//! a final Prometheus snapshot to stdout) or forever when omitted.

use cache_faults::{DelaySpec, FaultPlan};
use cache_server::server::{Server, ServerConfig};
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: cache_server [--addr HOST:PORT] [--shards N] [--capacity N] \
             [--flash-bytes N] [--deadline-ms N] [--fault-seed N] \
             [--delay-p P --delay-min-us N --delay-max-us N] [--duration-secs N]"
        );
        return;
    }
    let mut cfg = ServerConfig::default();
    if let Some(addr) = parse_flag::<String>(&args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(n) = parse_flag(&args, "--shards") {
        cfg.shards = n;
    }
    if let Some(n) = parse_flag(&args, "--capacity") {
        cfg.store.capacity = n;
    }
    if let Some(n) = parse_flag(&args, "--flash-bytes") {
        cfg.store.flash_total_bytes = n;
    }
    if let Some(ms) = parse_flag::<u64>(&args, "--deadline-ms") {
        cfg.deadline = Duration::from_millis(ms);
    }
    let seed = parse_flag::<u64>(&args, "--fault-seed").unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    if let Some(p) = parse_flag::<f64>(&args, "--delay-p") {
        let min = parse_flag::<u64>(&args, "--delay-min-us").unwrap_or(1_000);
        let max = parse_flag::<u64>(&args, "--delay-max-us").unwrap_or(min.max(2_000));
        plan = plan.with_delay(DelaySpec::constant(None, p, min, max));
    }
    if seed != 0 || !plan.delays.is_empty() {
        cfg.fault_plan = plan;
        cfg.store.fault_seed = seed;
    }
    let duration = parse_flag::<u64>(&args, "--duration-secs");

    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cache_server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("cache_server: listening on {}", handle.addr());
    match duration {
        Some(secs) => {
            std::thread::sleep(Duration::from_secs(secs));
            eprintln!("cache_server: draining");
            let report = handle.shutdown();
            eprintln!(
                "cache_server: drained={} leaked={} requests={}",
                report.drained, report.leaked_in_flight, report.requests
            );
            println!("{}", report.prometheus);
            if !report.drained {
                std::process::exit(2);
            }
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

//! Error-budget-driven load shedding.
//!
//! The shedder reuses [`cache_faults::ErrorBudget`] semantics (sliding
//! error window → trip, canary probes → recover) with *deadline misses and
//! queue overflow* as the error signal, and runs two budgets as a ladder:
//!
//! ```text
//! Normal ──[write budget trips]──▶ ShedWrites ──[read budget trips]──▶ ShedAll
//!   ▲            (writes bounce, reads pass)        (everything bounces)
//!   └──────────── canary probes recover each rung independently ◀──────┘
//! ```
//!
//! The write budget is tighter than the read budget, so under rising
//! overload writes are always shed first — writes are the expensive,
//! eviction-causing operations, and a cache that keeps serving reads while
//! bouncing writes degrades its freshness, not its availability. While a
//! rung is tripped, its budget's probe cadence admits one canary request
//! per interval; canaries that meet their deadline accumulate toward
//! recovery, exactly like the flash ladder's device probes.

use cache_faults::{DegradationState, ErrorBudget, ErrorBudgetConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shedder parameters. Defaults shed writes after >8 deadline misses in a
/// 256-request window and everything after >32 in 512.
#[derive(Debug, Clone, Copy)]
pub struct ShedConfig {
    /// Budget guarding writes (trips first).
    pub write: ErrorBudgetConfig,
    /// Budget guarding reads (trips under sustained overload).
    pub read: ErrorBudgetConfig,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            write: ErrorBudgetConfig {
                window_ops: 256,
                max_errors: 8,
                probe_interval: 64,
                recovery_probes: 3,
            },
            read: ErrorBudgetConfig {
                window_ops: 512,
                max_errors: 32,
                probe_interval: 64,
                recovery_probes: 3,
            },
        }
    }
}

/// Where the shedder currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedLevel {
    /// Everything is admitted.
    Normal,
    /// Writes bounce with `SERVER_ERROR shed-write`, reads pass.
    ShedWrites,
    /// Reads bounce too (canaries excepted).
    ShedAll,
}

impl ShedLevel {
    /// Label for STATS.
    pub fn label(self) -> &'static str {
        match self {
            ShedLevel::Normal => "normal",
            ShedLevel::ShedWrites => "shed-writes",
            ShedLevel::ShedAll => "shed-all",
        }
    }
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve it.
    Accept,
    /// Serve it and report the outcome via
    /// [`LoadShedder::record_probe_outcome`] — it is a recovery canary.
    Probe,
    /// Bounce it with a typed `SERVER_ERROR`.
    Shed,
}

#[derive(Debug)]
struct Budgets {
    write: ErrorBudget,
    read: ErrorBudget,
}

/// The shedder: two error budgets behind one short-critical-section lock,
/// plus lock-free counters for STATS.
#[derive(Debug)]
pub struct LoadShedder {
    budgets: Mutex<Budgets>,
    /// Logical clock: one tick per admission decision.
    ops: AtomicU64,
    shed_writes: AtomicU64,
    shed_reads: AtomicU64,
    deadline_misses: AtomicU64,
    overflows: AtomicU64,
    probes: AtomicU64,
}

impl LoadShedder {
    /// Builds the shedder.
    pub fn new(cfg: ShedConfig) -> Self {
        LoadShedder {
            budgets: Mutex::new(Budgets {
                write: ErrorBudget::new(cfg.write),
                read: ErrorBudget::new(cfg.read),
            }),
            ops: AtomicU64::new(0),
            shed_writes: AtomicU64::new(0),
            shed_reads: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Current ladder rung.
    pub fn level(&self) -> ShedLevel {
        let b = self.budgets.lock();
        match (b.write.state(), b.read.state()) {
            (_, DegradationState::Degraded) => ShedLevel::ShedAll,
            (DegradationState::Degraded, _) => ShedLevel::ShedWrites,
            _ => ShedLevel::Normal,
        }
    }

    /// Decides admission for one request. `is_write` selects the rung:
    /// writes shed at [`ShedLevel::ShedWrites`], reads only at
    /// [`ShedLevel::ShedAll`].
    // ORDERING: Relaxed tick/counters — the logical clock only feeds the
    // budget windows (slack tolerated by design) and the counters are
    // advisory stats; admission truth is decided under the budget lock.
    pub fn admit(&self, is_write: bool) -> Admission {
        let now = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut b = self.budgets.lock();
        let budget = if is_write { &mut b.write } else { &mut b.read };
        match budget.state() {
            DegradationState::Healthy => {
                // A write also bounces while the *read* rung is tripped
                // (ShedAll is a superset of ShedWrites).
                if is_write && b.read.state() == DegradationState::Degraded {
                    drop(b);
                    self.shed_writes.fetch_add(1, Ordering::Relaxed);
                    return Admission::Shed;
                }
                Admission::Accept
            }
            DegradationState::Degraded => {
                if budget.should_probe(now) {
                    // The attempt is marked when the outcome is reported; a
                    // burst of requests between admit and report may all be
                    // admitted as canaries, which only speeds recovery.
                    drop(b);
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    Admission::Probe
                } else {
                    drop(b);
                    if is_write {
                        self.shed_writes.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.shed_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    Admission::Shed
                }
            }
        }
    }

    /// Reports a served request's outcome. Deadline misses are the error
    /// signal that trips the budgets.
    // ORDERING: Relaxed clock read and stat counters, as in admit.
    pub fn record_outcome(&self, is_write: bool, deadline_met: bool) {
        if deadline_met {
            return;
        }
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        let now = self.ops.load(Ordering::Relaxed);
        let mut b = self.budgets.lock();
        // A miss is evidence of overload for both rungs; the tighter write
        // window trips first.
        b.write.record_error(now);
        if is_write {
            // Reads stay healthy under write-only pain: only read-path
            // misses (or overflow, which starves everyone) count there.
        } else {
            b.read.record_error(now);
        }
    }

    /// Reports a canary's outcome (a request admitted as
    /// [`Admission::Probe`]).
    // ORDERING: Relaxed clock read, as in admit.
    pub fn record_probe_outcome(&self, is_write: bool, deadline_met: bool) {
        let now = self.ops.load(Ordering::Relaxed);
        let mut b = self.budgets.lock();
        let budget = if is_write { &mut b.write } else { &mut b.read };
        budget.record_probe(now, deadline_met);
    }

    /// Reports queue/accept overflow: counted against both budgets — when
    /// connections are bouncing, reads are hurting too.
    // ORDERING: Relaxed clock read and stat counter, as in admit.
    pub fn record_overflow(&self) {
        self.overflows.fetch_add(1, Ordering::Relaxed);
        let now = self.ops.load(Ordering::Relaxed);
        let mut b = self.budgets.lock();
        b.write.record_error(now);
        b.read.record_error(now);
    }

    /// STATS snapshot: (level, shed_writes, shed_reads, deadline_misses,
    /// overflows, probes, write trips, write recoveries, read trips, read
    /// recoveries).
    // ORDERING: Relaxed counter loads — advisory stats.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(&self) -> (ShedLevel, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
        let (level, wt, wr, rt, rr) = {
            let b = self.budgets.lock();
            let level = match (b.write.state(), b.read.state()) {
                (_, DegradationState::Degraded) => ShedLevel::ShedAll,
                (DegradationState::Degraded, _) => ShedLevel::ShedWrites,
                _ => ShedLevel::Normal,
            };
            (
                level,
                b.write.trips(),
                b.write.recoveries(),
                b.read.trips(),
                b.read.recoveries(),
            )
        };
        (
            level,
            self.shed_writes.load(Ordering::Relaxed),
            self.shed_reads.load(Ordering::Relaxed),
            self.deadline_misses.load(Ordering::Relaxed),
            self.overflows.load(Ordering::Relaxed),
            self.probes.load(Ordering::Relaxed),
            wt,
            wr,
            rt,
            rr,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> ShedConfig {
        ShedConfig {
            write: ErrorBudgetConfig {
                window_ops: 100,
                max_errors: 3,
                probe_interval: 10,
                recovery_probes: 2,
            },
            read: ErrorBudgetConfig {
                window_ops: 100,
                max_errors: 8,
                probe_interval: 10,
                recovery_probes: 2,
            },
        }
    }

    /// Burns `n` admission ticks so probe cadences elapse.
    fn tick(s: &LoadShedder, n: u64) {
        for _ in 0..n {
            let _ = s.admit(false);
        }
    }

    #[test]
    fn healthy_shedder_admits_everything() {
        let s = LoadShedder::new(tight());
        for _ in 0..50 {
            assert_eq!(s.admit(true), Admission::Accept);
            assert_eq!(s.admit(false), Admission::Accept);
        }
        assert_eq!(s.level(), ShedLevel::Normal);
    }

    #[test]
    fn writes_shed_before_reads() {
        let s = LoadShedder::new(tight());
        tick(&s, 10);
        // 4 write-side deadline misses trip the write budget only.
        for _ in 0..4 {
            s.record_outcome(true, false);
        }
        assert_eq!(s.level(), ShedLevel::ShedWrites);
        assert_eq!(s.admit(true), Admission::Shed, "writes bounce");
        assert_eq!(s.admit(false), Admission::Accept, "reads pass");
    }

    #[test]
    fn sustained_misses_shed_reads_too() {
        let s = LoadShedder::new(tight());
        tick(&s, 10);
        for _ in 0..9 {
            s.record_outcome(false, false);
        }
        assert_eq!(s.level(), ShedLevel::ShedAll);
        // Reads bounce now (first admit after trip is within probe
        // interval).
        assert_eq!(s.admit(false), Admission::Shed);
        assert_eq!(s.admit(true), Admission::Shed);
    }

    #[test]
    fn probes_recover_the_write_rung() {
        let s = LoadShedder::new(tight());
        tick(&s, 10);
        for _ in 0..4 {
            s.record_outcome(true, false);
        }
        assert_eq!(s.level(), ShedLevel::ShedWrites);
        // Advance past the probe interval; the next write is a canary.
        tick(&s, 11);
        let mut recovered = false;
        for _ in 0..100 {
            match s.admit(true) {
                Admission::Probe => {
                    s.record_probe_outcome(true, true);
                    if s.level() == ShedLevel::Normal {
                        recovered = true;
                        break;
                    }
                }
                Admission::Shed => {}
                Admission::Accept => {
                    recovered = s.level() == ShedLevel::Normal;
                    break;
                }
            }
        }
        assert!(recovered, "canaries must recover the rung");
        assert_eq!(s.admit(true), Admission::Accept);
    }

    #[test]
    fn overflow_counts_against_both_budgets() {
        let s = LoadShedder::new(tight());
        tick(&s, 10);
        for _ in 0..9 {
            s.record_overflow();
        }
        assert_eq!(s.level(), ShedLevel::ShedAll);
        let snap = s.snapshot();
        assert_eq!(snap.4, 9, "overflows counted");
        assert!(snap.6 >= 1 && snap.8 >= 1, "both budgets tripped");
    }

    #[test]
    fn failed_probes_keep_shedding() {
        let s = LoadShedder::new(tight());
        tick(&s, 10);
        for _ in 0..4 {
            s.record_outcome(true, false);
        }
        tick(&s, 11);
        for _ in 0..50 {
            if let Admission::Probe = s.admit(true) {
                s.record_probe_outcome(true, false);
            }
        }
        assert_eq!(s.level(), ShedLevel::ShedWrites, "failed canaries never recover");
    }
}

//! The shutdown/drain handshake: an accept-gate flag plus an in-flight
//! request counter.
//!
//! Protocol (mirrored, ordering for ordering, by the loom-lite model in
//! `crates/lint/src/models/drain.rs`, whose planted mutants pin both the
//! step order and the memory orderings):
//!
//! - a worker *joins* ([`DrainGate::try_enter`]) by incrementing the
//!   in-flight counter **first** and checking the gate flag **second**; if
//!   the gate closed in between it backs out. Checking before joining is
//!   the classic bug: a drainer can observe zero in-flight in the window
//!   between the worker's check and its increment, declare the server
//!   drained, and tear state down under a live request.
//! - shutdown closes the gate, then waits for the counter to reach zero
//!   ([`DrainGate::await_drained`]). Once it observes zero, every request
//!   that got in has fully finished (its effects are visible), and every
//!   request that had not joined yet is guaranteed to bounce off the gate.
//!
//! The flag/counter pair is a store-buffer (Dekker) pattern: the worker
//! writes the counter then reads the flag, shutdown writes the flag then
//! reads the counter. With only acquire/release, both sides may read the
//! old value (worker sees the gate open *and* the drainer sees zero
//! in-flight), admitting a request after drain — hence SeqCst on all four
//! accesses.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Accept-gate flag + in-flight counter + drain barrier.
#[derive(Debug, Default)]
pub struct DrainGate {
    closed: AtomicBool,
    in_flight: AtomicUsize,
}

/// RAII guard for one in-flight request; dropping it leaves the gate.
#[derive(Debug)]
pub struct InFlight<'a> {
    gate: &'a DrainGate,
}

impl Drop for InFlight<'_> {
    // ORDERING: SeqCst decrement — the release side of the drain barrier
    // must also participate in the SeqCst total order with the gate flag
    // (see module docs: Dekker pattern); Release alone would allow the
    // drainer's counter load to pass its own flag store. SeqCst also
    // publishes the request's effects to the thread that observes zero.
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl DrainGate {
    /// An open gate with nothing in flight.
    pub fn new() -> Self {
        DrainGate::default()
    }

    /// Tries to start a request: returns a guard while the gate is open,
    /// `None` once shutdown began.
    // ORDERING: SeqCst on both the join increment and the gate check — the
    // counter-write/flag-read here and the flag-write/counter-read in
    // `close`/`await_drained` form a store-buffer pattern that only a
    // single total order (SeqCst) makes safe; see module docs.
    pub fn try_enter(&self) -> Option<InFlight<'_>> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(InFlight { gate: self })
    }

    /// Closes the gate: new [`DrainGate::try_enter`] calls fail from now on.
    // ORDERING: SeqCst store — must be totally ordered with the workers'
    // join increments (store-buffer pattern, see module docs).
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// True once [`DrainGate::close`] has been called.
    // ORDERING: SeqCst load, same total order as close/try_enter.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Requests currently in flight (exact only at quiescence).
    // ORDERING: SeqCst load — participates in the drain barrier's total
    // order so a zero observed here really means drained.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Waits (bounded by `timeout`) for the in-flight count to reach zero.
    /// Returns true when drained; false on timeout. Call after
    /// [`DrainGate::close`], or the wait races fresh admissions.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.in_flight() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return self.in_flight() == 0;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enter_then_close_then_drain() {
        let g = DrainGate::new();
        let guard = g.try_enter().expect("gate starts open");
        assert_eq!(g.in_flight(), 1);
        g.close();
        assert!(g.try_enter().is_none(), "closed gate admits nobody");
        assert!(!g.await_drained(Duration::from_millis(5)), "still in flight");
        drop(guard);
        assert!(g.await_drained(Duration::from_millis(100)));
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn rejected_enter_leaves_no_residue() {
        let g = DrainGate::new();
        g.close();
        for _ in 0..100 {
            assert!(g.try_enter().is_none());
        }
        assert_eq!(g.in_flight(), 0, "bounced requests must not leak counts");
    }

    #[test]
    fn concurrent_drain_observes_every_request() {
        let g = Arc::new(DrainGate::new());
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0usize;
                for _ in 0..5_000 {
                    match g.try_enter() {
                        Some(guard) => {
                            admitted += 1;
                            // ORDERING: Relaxed — joined before the assert.
                            done.fetch_add(1, Ordering::Relaxed);
                            drop(guard);
                        }
                        None => break,
                    }
                }
                admitted
            }));
        }
        std::thread::sleep(Duration::from_millis(2));
        g.close();
        assert!(g.await_drained(Duration::from_secs(5)), "drain must finish");
        let admitted: usize = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        // Every admitted request completed before drain reported success.
        assert_eq!(done.load(Ordering::Relaxed), admitted);
        assert_eq!(g.in_flight(), 0);
    }
}

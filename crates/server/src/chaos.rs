//! The chaos suite: seeded fault plans turned into misbehaving clients.
//!
//! Every scenario runs a real server on an ephemeral port, drives it with
//! chaos derived deterministically from one seed, and asserts the
//! robustness ladder holds:
//!
//! - **no panics** — a panicked shard/acceptor thread cannot serve, so
//!   every scenario ends with a health probe plus a graceful shutdown that
//!   must report a clean drain;
//! - **no lost updates or resurrections** — acknowledged histories pass
//!   `cache-check`'s linearizability-lite witness search;
//! - **bounded tail while shedding** — an overloaded server answers
//!   *something* (shed/timeout replies) quickly instead of queueing
//!   without bound.

use crate::loadgen::{self, BurstSpec, LoadgenConfig};
use crate::server::{Server, ServerConfig};
use crate::shed::ShedLevel;
use crate::store::StoreConfig;
use cache_check::check_history;
use cache_ds::SplitMix64;
use cache_faults::{DelaySpec, ErrorBudgetConfig, FaultKind, FaultPlan, OpClass, Schedule};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One fixed master seed; every scenario derives its streams from it so a
/// failure reproduces bit-for-bit.
const CHAOS_SEED: u64 = 0xC4A0_5EED;

fn small_server(mutate: impl FnOnce(&mut ServerConfig)) -> ServerConfig {
    let mut cfg = ServerConfig {
        shards: 2,
        queue_depth: 16,
        max_conns_per_shard: 32,
        deadline: Duration::from_millis(100),
        store: StoreConfig {
            capacity: 4096,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    mutate(&mut cfg);
    cfg
}

/// Round-trips one request on a fresh blocking connection; the suite's
/// "is the server still alive?" probe.
fn probe_healthy(addr: SocketAddr) -> bool {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    if s.write_all(b"set probe 0 0 2\r\nok\r\nget probe\r\n").is_err() {
        return false;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(5).any(|w| w == b"END\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    text.contains("STORED") && text.contains("VALUE probe") && text.contains("ok")
}

#[test]
fn nominal_load_is_linearizable_and_drains_clean() {
    let handle = Server::start(small_server(|_| {})).expect("bind");
    let addr = handle.addr();
    let mut cfg = LoadgenConfig::zipf(addr, 3, 400, CHAOS_SEED);
    cfg.record_ops = true;
    cfg.keys = 64;
    let report = loadgen::run(&cfg);
    assert_eq!(report.errors.client_errors, 0, "generator speaks the protocol");
    assert_eq!(report.errors.io_errors, 0, "nominal load loses no connections");
    assert!(report.hits > 0, "zipf reuse must produce hits");
    assert!(report.stored > 0);
    let violations = check_history(&report.history);
    assert!(
        violations.is_empty(),
        "acked history must linearize, got {violations:?}"
    );
    assert!(probe_healthy(addr));
    let shutdown = handle.shutdown();
    assert!(shutdown.drained, "graceful shutdown drains in-flight work");
    assert_eq!(shutdown.leaked_in_flight, 0);
    assert!(shutdown.prometheus.contains("cache_server"));
}

#[test]
// ORDERING: Relaxed counter reads — cross-thread visibility is bounded by
// the polling loop, not by memory ordering.
fn slow_readers_are_dropped_without_harming_others() {
    // Tiny outbuf cap so a non-reading client trips the slow-reader guard
    // quickly.
    let handle = Server::start(small_server(|c| {
        c.max_outbuf = 2048;
    }))
    .expect("bind");
    let addr = handle.addr();
    // Seed a value big enough that pipelined replies dwarf both the outbuf
    // cap and the kernel's socket buffers (which silently absorb smaller
    // backlogs).
    let mut setup = TcpStream::connect(addr).expect("connect");
    let big = vec![b'x'; 16 * 1024];
    let mut req = format!("set hot 0 0 {}\r\n", big.len()).into_bytes();
    req.extend_from_slice(&big);
    req.extend_from_slice(b"\r\n");
    setup.write_all(&req).expect("seed set");
    let mut ack = [0u8; 64];
    let _ = setup.read(&mut ack);
    // The slow readers: pipeline hundreds of gets (~4 MB of replies each),
    // never read a byte.
    let mut rng = SplitMix64::new(CHAOS_SEED ^ 1);
    let mut slow = Vec::new();
    for _ in 0..3 {
        let mut s = TcpStream::connect(addr).expect("connect slow");
        let n = 224 + rng.next_below(64);
        let burst = "get hot\r\n".repeat(n as usize);
        let _ = s.write_all(burst.as_bytes());
        slow.push(s); // keep the socket open, unread
    }
    // Give the shards time to fill the outbufs and drop the laggards.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.counters().slow_reader_drops.load(std::sync::atomic::Ordering::Relaxed) == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        handle.counters().slow_reader_drops.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "a reader lagging past the outbuf cap must be disconnected"
    );
    // A well-behaved client is unaffected.
    assert!(probe_healthy(addr), "healthy clients keep working");
    drop(slow);
    assert!(handle.shutdown().drained);
}

#[test]
fn malformed_frames_never_kill_the_server() {
    let handle = Server::start(small_server(|_| {})).expect("bind");
    let addr = handle.addr();
    let mut rng = SplitMix64::new(CHAOS_SEED ^ 2);
    // A seeded pile of garbage: truncated commands, binary noise, oversized
    // counts, bad data blocks, pathological whitespace.
    let fixed: &[&[u8]] = &[
        b"\x00\x01\x02\xff\xfe\r\n",
        b"set k 0 0 notanumber\r\n",
        b"set k 0 0 5\r\nab\r\n",
        b"set k 0 0 99999999999\r\nxx\r\n",
        b"get\r\n",
        b"get \r\n",
        b"frobnicate all the things\r\n",
        b"set \xc3\x28 0 0 2\r\nhi\r\n",
        b"delete\r\n",
        b"   \r\n",
        b"get k k k k k k k k k k k k k k k k k k k k k k k k k k k k\r\n",
    ];
    for round in 0..40 {
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
        let payload: Vec<u8> = if round % 3 == 0 {
            // Pure seeded noise, sometimes enormous (exercises the
            // line-length fatal path).
            let len = 1 + rng.next_below(6000) as usize;
            (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
        } else {
            fixed[(rng.next_below(fixed.len() as u64)) as usize].to_vec()
        };
        let _ = s.write_all(&payload);
        // Drain whatever the server says (CLIENT_ERROR / close); the
        // assertion is that it answered or closed rather than wedged.
        let mut sink = [0u8; 4096];
        loop {
            match s.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
    assert!(probe_healthy(addr), "server survives the garbage barrage");
    let report = handle.shutdown();
    assert!(report.drained);
}

#[test]
// ORDERING: Relaxed counter reads — post-storm assertions on quiesced
// counters, no synchronization carried by the loads.
fn connection_storm_gets_backpressure_not_collapse() {
    // One shard with tiny queues: most of the storm must bounce with
    // `busy` instead of being buffered without bound.
    // Overflow bounces feed the shedder by design, so the post-storm
    // health check depends on budget recovery; quick probe cadence keeps
    // the test fast.
    let fast_recovery = ErrorBudgetConfig {
        window_ops: 64,
        max_errors: 8,
        probe_interval: 4,
        recovery_probes: 1,
    };
    let handle = Server::start(small_server(|c| {
        c.shards = 1;
        c.queue_depth = 2;
        c.max_conns_per_shard = 4;
        c.shed.write = fast_recovery;
        c.shed.read = fast_recovery;
    }))
    .expect("bind");
    let addr = handle.addr();
    let mut rng = SplitMix64::new(CHAOS_SEED ^ 3);
    let mut held = Vec::new();
    let mut busy_seen = 0u64;
    for _ in 0..120 {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                if rng.next_below(4) == 0 {
                    // Some connections actually try to talk.
                    let _ = s.write_all(b"get storm\r\n");
                    let mut buf = [0u8; 256];
                    if let Ok(n) = s.read(&mut buf) {
                        if buf[..n].windows(4).any(|w| w == b"busy") {
                            busy_seen += 1;
                        }
                    }
                }
                held.push(s); // hold them open to keep the caps saturated
            }
            Err(_) => {
                // Kernel backlog overflow also counts as backpressure.
                busy_seen += 1;
            }
        }
    }
    let rejected = handle
        .counters()
        .conns_rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        rejected > 0 || busy_seen > 0,
        "storm must hit the bounded-accept ladder (rejected={rejected}, busy={busy_seen})"
    );
    drop(held);
    // The storm over, new clients are served again.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut healthy = false;
    while Instant::now() < deadline {
        if probe_healthy(addr) {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(healthy, "server recovers once the storm subsides");
    assert!(handle.shutdown().drained);
}

#[test]
fn device_fault_burst_degrades_then_recovers() {
    // Flash tier with a one-shot fault burst: reads/writes fault hard for
    // the first 60 device ops, then the device heals; the ladder must trip
    // to DRAM-only (typed errors) and probe its way back to healthy.
    let plan = FaultPlan::new(CHAOS_SEED ^ 4)
        .with(
            FaultKind::TransientWrite,
            Schedule::Burst {
                period: u64::MAX,
                burst_len: 60,
                inside: 1.0,
                outside: 0.0,
            },
        )
        .with(
            FaultKind::ReadError,
            Schedule::Burst {
                period: u64::MAX,
                burst_len: 60,
                inside: 0.5,
                outside: 0.0,
            },
        );
    let handle = Server::start(small_server(|c| {
        c.store.flash_total_bytes = 8192;
        c.store.fault_seed = 0; // plan.seed already carries the stream
        c.fault_plan = plan;
    }))
    .expect("bind");
    let addr = handle.addr();
    let mut cfg = LoadgenConfig::zipf(addr, 2, 600, CHAOS_SEED ^ 5);
    cfg.keys = 48;
    cfg.write_fraction = 0.5;
    cfg.delete_fraction = 0.0;
    let report = loadgen::run(&cfg);
    assert!(
        report.errors.degradation > 0,
        "device burst must surface typed degradation errors"
    );
    assert_eq!(report.errors.client_errors, 0);
    // Keep driving until the probe ladder recovers the device.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.ttl_store().flash_state() != "healthy" && Instant::now() < deadline {
        let mut cfg = LoadgenConfig::zipf(addr, 1, 200, CHAOS_SEED ^ 6);
        cfg.keys = 48;
        cfg.write_fraction = 0.5;
        cfg.delete_fraction = 0.0;
        let _ = loadgen::run(&cfg);
    }
    assert_eq!(
        handle.ttl_store().flash_state(),
        "healthy",
        "the ladder must recover after the burst"
    );
    assert!(probe_healthy(addr));
    assert!(handle.shutdown().drained);
}

#[test]
fn overload_sheds_writes_first_with_bounded_tail() {
    // Write-classed delay faults push writes past a 5 ms deadline: the
    // write budget trips (ShedWrites), reads never miss and stay admitted,
    // bounced requests come back fast, and the server keeps answering.
    let plan = FaultPlan::new(CHAOS_SEED ^ 7).with_delay(DelaySpec::constant(
        Some(OpClass::Write),
        0.6,
        6_000,
        9_000,
    ));
    let handle = Server::start(small_server(|c| {
        c.deadline = Duration::from_millis(5);
        c.fault_plan = plan;
        c.shed.write = ErrorBudgetConfig {
            window_ops: 64,
            max_errors: 4,
            probe_interval: 4096, // hold the rung down for the whole run
            recovery_probes: 3,
        };
        c.shed.read = ErrorBudgetConfig {
            window_ops: 256,
            max_errors: 64,
            probe_interval: 4096,
            recovery_probes: 3,
        };
    }))
    .expect("bind");
    let addr = handle.addr();
    let mut cfg = LoadgenConfig::zipf(addr, 2, 500, CHAOS_SEED ^ 8);
    cfg.keys = 64;
    cfg.write_fraction = 0.5;
    cfg.delete_fraction = 0.0;
    let report = loadgen::run(&cfg);
    assert!(report.errors.timeouts > 0, "delay faults must cause timeouts");
    assert!(report.errors.shed > 0, "the tripped budget must shed load");
    let level = handle.shedder().level();
    assert_ne!(level, ShedLevel::ShedAll, "reads stay up under write-led shed");
    // Bounded tail: even during shedding every round trip (including
    // bounces) completes well under a second.
    let p99 = report.latencies_us.quantile(0.99).unwrap_or(0);
    assert!(
        p99 < 500_000,
        "p99 must stay bounded while shedding, got {p99}us"
    );
    // Writes are (correctly) still shed, so the health check is read-only.
    let mut s = TcpStream::connect(addr).expect("connect");
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    s.write_all(b"get anything\r\n").expect("write");
    let mut buf = [0u8; 256];
    let n = s.read(&mut buf).expect("read");
    assert!(
        buf[..n].windows(5).any(|w| w == b"END\r\n"),
        "reads must still be served under ShedWrites"
    );
    assert!(handle.shutdown().drained);
}

#[test]
fn kill_mid_load_loses_no_acked_updates() {
    let handle = Server::start(small_server(|_| {})).expect("bind");
    let addr = handle.addr();
    let loader = std::thread::spawn(move || {
        let mut cfg = LoadgenConfig::zipf(addr, 2, 4_000, CHAOS_SEED ^ 9);
        cfg.record_ops = true;
        cfg.keys = 64;
        cfg.burst = Some(BurstSpec {
            burst_len: 4,
            idle: Duration::from_micros(200),
        });
        cfg.read_timeout = Duration::from_secs(2);
        loadgen::run(&cfg)
    });
    // Kill the server mid-run: drop without graceful drain.
    std::thread::sleep(Duration::from_millis(150));
    drop(handle);
    let report = loader.join().expect("loadgen must not panic");
    assert!(report.ops > 0, "the kill landed mid-run, not before it");
    assert!(
        report.errors.io_errors > 0 || report.errors.shutting_down > 0,
        "clients observed the kill"
    );
    // The acked prefix of the history is still consistent: every reply the
    // server sent before dying linearizes (no lost updates, no
    // resurrections).
    let violations = check_history(&report.history);
    assert!(
        violations.is_empty(),
        "acked-prefix history must linearize, got {violations:?}"
    );
}

#[test]
fn stats_and_metrics_are_well_formed() {
    let handle = Server::start(small_server(|_| {})).expect("bind");
    let addr = handle.addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    s.write_all(b"set m 0 0 1\r\nx\r\nget m\r\nstats\r\nmetrics\r\n")
        .expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(3);
    while Instant::now() < deadline {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                let ends = String::from_utf8_lossy(&buf).matches("END\r\n").count();
                if ends >= 3 {
                    // get END + stats END + metrics END
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf).to_string();
    assert!(text.contains("STAT cmd_get 1"));
    assert!(text.contains("STAT shed_level normal"));
    assert!(text.contains("STAT flash_state none"));
    // Prometheus lines: `# TYPE name kind` headers then `name value`.
    assert!(text.contains("# TYPE"));
    assert!(text.contains("cache_server_frontend_requests"));
    assert!(handle.shutdown().drained);
}

//! Property fuzz for the protocol parser: arbitrary, truncated, mutated,
//! and oversized frames must never panic the parser — every input yields a
//! well-formed outcome (a frame, a recoverable `CLIENT_ERROR`/`ERROR`
//! reply, an `Incomplete` wait, or a fatal close) with sane `consumed`
//! accounting.

use cache_server::proto::{parse_frame, Limits, ParseOutcome};
use cache_server::{Command, ParseOutcome as Outcome};
use proptest::prelude::*;

fn tight_limits() -> Limits {
    Limits {
        max_line_len: 256,
        max_value_len: 1024,
        max_get_keys: 8,
    }
}

/// Checks the structural invariants every outcome must satisfy.
fn assert_outcome_sane(buf: &[u8], outcome: &ParseOutcome, limits: &Limits) -> Result<(), TestCaseError> {
    match outcome {
        Outcome::Incomplete => {
            // Incomplete only while the buffer could still grow into a
            // frame: it must be shorter than the hard line cap plus the
            // largest legal value block.
            prop_assert!(
                buf.len() <= limits.max_line_len + limits.max_value_len + 2,
                "unbounded buffering on {} bytes",
                buf.len()
            );
        }
        Outcome::Frame { consumed, .. } => {
            prop_assert!(*consumed > 0, "a frame must consume bytes");
            prop_assert!(*consumed <= buf.len(), "over-consumed");
        }
        Outcome::Error { reply, consumed } => {
            prop_assert!(*consumed > 0, "a recoverable error must make progress");
            prop_assert!(*consumed <= buf.len(), "over-consumed");
            prop_assert!(
                reply.starts_with("CLIENT_ERROR") || reply.starts_with("ERROR"),
                "recoverable reply must be a client error, got {reply:?}"
            );
            prop_assert!(reply.ends_with("\r\n"));
        }
        Outcome::Fatal { reply } => {
            prop_assert!(
                reply.starts_with("CLIENT_ERROR") || reply.starts_with("SERVER_ERROR"),
                "fatal reply must be typed, got {reply:?}"
            );
            prop_assert!(reply.ends_with("\r\n"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure byte soup: never panics, outcomes are structurally sane.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255u8, 0..2048),
    ) {
        let limits = tight_limits();
        let outcome = parse_frame(&bytes, &limits);
        assert_outcome_sane(&bytes, &outcome, &limits)?;
    }

    /// Drain loop: feeding arbitrary bytes through the parser the way the
    /// server does (drain `consumed`, stop on Incomplete/Fatal) always
    /// terminates — no infinite loop, no over-consumption.
    #[test]
    fn drain_loop_always_terminates(
        bytes in proptest::collection::vec(0u8..=255u8, 0..4096),
    ) {
        let limits = tight_limits();
        let mut buf = bytes;
        let mut steps = 0usize;
        loop {
            steps += 1;
            prop_assert!(steps <= 10_000, "parser loop did not terminate");
            match parse_frame(&buf, &limits) {
                Outcome::Incomplete | Outcome::Fatal { .. } => break,
                Outcome::Frame { consumed, .. } | Outcome::Error { consumed, .. } => {
                    prop_assert!(consumed > 0 && consumed <= buf.len());
                    buf.drain(..consumed);
                }
            }
        }
    }

    /// A valid `set` frame with one byte mutated: parses to something sane
    /// (a frame, an error reply, incomplete, or a close) — never a panic.
    #[test]
    fn mutated_set_frames_never_panic(
        key_len in 1usize..12,
        val_len in 0usize..64,
        flip_at in 0usize..1024,
        flip_to in 0u8..=255u8,
    ) {
        let limits = tight_limits();
        let key: String = (0..key_len).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        let value = vec![b'v'; val_len];
        let mut frame = format!("set {key} 7 60 {val_len}\r\n").into_bytes();
        frame.extend_from_slice(&value);
        frame.extend_from_slice(b"\r\n");
        let idx = flip_at % frame.len();
        frame[idx] = flip_to;
        let outcome = parse_frame(&frame, &limits);
        assert_outcome_sane(&frame, &outcome, &limits)?;
    }

    /// Every truncation of a valid pipelined exchange is Incomplete, a
    /// frame, or a recoverable error — truncation alone is never fatal
    /// (fatal is reserved for oversize and framing corruption).
    #[test]
    fn truncated_valid_frames_are_not_fatal(
        cut in 0usize..256,
    ) {
        let limits = tight_limits();
        let full = b"get alpha beta\r\nset gamma 1 0 5\r\nhello\r\ndelete alpha noreply\r\n";
        let cut = cut % (full.len() + 1);
        let buf = &full[..cut];
        let outcome = parse_frame(buf, &limits);
        assert_outcome_sane(buf, &outcome, &limits)?;
        prop_assert!(
            !matches!(outcome, Outcome::Fatal { .. }),
            "truncation of valid input must not be fatal at cut {cut}"
        );
    }

    /// Oversized declared values are rejected fatally (close, do not
    /// buffer), regardless of the key.
    #[test]
    fn oversized_values_close_the_connection(
        key_len in 1usize..16,
        excess in 1u64..1_000_000,
    ) {
        let limits = tight_limits();
        let key: String = (0..key_len).map(|i| (b'k' + (i % 8) as u8) as char).collect();
        let bytes = limits.max_value_len as u64 + excess;
        let frame = format!("set {key} 0 0 {bytes}\r\n");
        let outcome = parse_frame(frame.as_bytes(), &limits);
        prop_assert!(
            matches!(outcome, Outcome::Fatal { .. }),
            "oversize must close, got {outcome:?}"
        );
    }

    /// Well-formed frames round-trip to the expected command for random
    /// keys and values (parser correctness, not just crash-freedom).
    #[test]
    fn well_formed_frames_roundtrip(
        key_len in 1usize..32,
        val in proptest::collection::vec(0u8..=255u8, 0..512),
        flags in 0u32..u32::MAX,
        exptime in 0u64..100_000,
    ) {
        let limits = tight_limits();
        let key: String = (0..key_len)
            .map(|i| (b'!' + ((i * 7) % 94) as u8) as char)
            .collect();
        let mut frame = format!("set {key} {flags} {exptime} {}\r\n", val.len()).into_bytes();
        frame.extend_from_slice(&val);
        frame.extend_from_slice(b"\r\nget ");
        frame.extend_from_slice(key.as_bytes());
        frame.extend_from_slice(b"\r\n");
        match parse_frame(&frame, &limits) {
            Outcome::Frame { cmd: Command::Set { key: k, flags: f, exptime: e, value, noreply }, consumed } => {
                prop_assert_eq!(k, key.clone());
                prop_assert_eq!(f, flags);
                prop_assert_eq!(e, exptime);
                prop_assert_eq!(value, val);
                prop_assert!(!noreply);
                match parse_frame(&frame[consumed..], &limits) {
                    Outcome::Frame { cmd: Command::Get { keys }, .. } => {
                        prop_assert_eq!(keys, vec![key]);
                    }
                    other => prop_assert!(false, "get must parse, got {:?}", other),
                }
            }
            other => prop_assert!(false, "set must parse, got {:?}", other),
        }
    }
}

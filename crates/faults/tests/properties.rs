//! Property tests for the fault-handling building blocks: backoff jitter
//! stays inside the policy's bounds, and the error-budget window counts
//! every error exactly once against a naive reference model.

use cache_faults::{Backoff, DegradationState, ErrorBudget, ErrorBudgetConfig, RetryPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every delay the backoff yields is capped at `max_delay` and never
    /// falls below `min(base_delay.max(1), max_delay)`, for arbitrary
    /// policies including degenerate ones (`max_delay < base_delay`,
    /// zero base).
    #[test]
    fn backoff_delays_stay_inside_policy_bounds(
        max_retries in 0u32..20,
        base_delay in 0u64..1_000,
        max_delay in 0u64..2_000,
        seed in 0u64..1_000,
    ) {
        let policy = RetryPolicy { max_retries, base_delay, max_delay };
        let mut b = Backoff::new(policy, seed);
        let floor = base_delay.max(1).min(max_delay);
        let mut yielded = 0u32;
        while let Some(d) = b.next_delay() {
            yielded += 1;
            prop_assert!(d <= max_delay, "delay {d} exceeds max_delay {max_delay}");
            prop_assert!(d >= floor, "delay {d} below floor {floor}");
            prop_assert!(yielded <= max_retries, "more delays than retries");
        }
        prop_assert_eq!(yielded, max_retries, "must yield exactly max_retries delays");
        prop_assert!(b.next_delay().is_none(), "stays exhausted");
    }

    /// The schedule is a pure function of (policy, seed), and `reset`
    /// restarts the attempt budget without disturbing boundedness.
    #[test]
    fn backoff_is_deterministic_and_resettable(
        max_retries in 1u32..10,
        base_delay in 1u64..100,
        max_delay in 1u64..500,
        seed in 0u64..1_000,
    ) {
        let policy = RetryPolicy { max_retries, base_delay, max_delay };
        let collect = |b: &mut Backoff| -> Vec<u64> {
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        let a = collect(&mut Backoff::new(policy, seed));
        let b2 = collect(&mut Backoff::new(policy, seed));
        prop_assert_eq!(&a, &b2, "same seed must reproduce the schedule");
        let mut r = Backoff::new(policy, seed);
        let _ = collect(&mut r);
        r.reset();
        prop_assert_eq!(r.attempts(), 0);
        let again = collect(&mut r);
        prop_assert_eq!(again.len(), max_retries as usize);
        for d in again {
            prop_assert!(d <= max_delay);
        }
    }

    /// The sliding window agrees with a naive reference: after recording an
    /// error at time `now`, exactly the errors with `now - t < window_ops`
    /// are counted — each one once, none twice, none resurrected. Trips
    /// happen exactly when a Healthy budget exceeds `max_errors`.
    #[test]
    fn error_window_counts_each_error_exactly_once(
        deltas in proptest::collection::vec(0u64..60, 1..120),
        window_ops in 1u64..80,
        max_errors in 0u32..12,
    ) {
        let cfg = ErrorBudgetConfig {
            window_ops,
            max_errors,
            probe_interval: 10,
            recovery_probes: 2,
        };
        let mut budget = ErrorBudget::new(cfg);
        let mut reference: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut reference_trips = 0u64;
        let mut healthy = true;
        for &d in &deltas {
            now += d; // logical clock is non-decreasing
            let tripped = budget.record_error(now);
            reference.retain(|&t| now - t < window_ops);
            reference.push(now);
            prop_assert_eq!(
                budget.errors_in_window(),
                reference.len(),
                "window disagrees with reference at t={}", now
            );
            let expect_trip = healthy && reference.len() > max_errors as usize;
            prop_assert_eq!(tripped, expect_trip, "trip decision at t={}", now);
            if expect_trip {
                healthy = false;
                reference_trips += 1;
            }
        }
        prop_assert_eq!(budget.trips(), reference_trips);
        prop_assert_eq!(
            budget.state() == DegradationState::Healthy,
            healthy
        );
    }

    /// Recovery requires exactly `recovery_probes` *consecutive* successful
    /// probes; any failure restarts the streak, and recovery clears the
    /// error window so old errors cannot double-trip the fresh budget.
    #[test]
    fn recovery_needs_a_consecutive_probe_streak(
        outcomes in proptest::collection::vec(0u64..2, 1..40),
        recovery_probes in 1u32..6,
    ) {
        let cfg = ErrorBudgetConfig {
            window_ops: 1_000,
            max_errors: 0,
            probe_interval: 1,
            recovery_probes,
        };
        let mut budget = ErrorBudget::new(cfg);
        prop_assert!(budget.record_error(1), "max_errors=0 trips on the first error");
        let mut streak = 0u32;
        let mut recovered = false;
        let mut now = 10u64;
        for &o in &outcomes {
            let ok = o == 1;
            if recovered {
                break;
            }
            now += cfg.probe_interval;
            let done = budget.record_probe(now, ok);
            streak = if ok { streak + 1 } else { 0 };
            let expect_done = streak >= recovery_probes;
            prop_assert_eq!(done, expect_done, "recovery decision at probe t={}", now);
            if done {
                recovered = true;
            }
        }
        if recovered {
            prop_assert_eq!(budget.state(), DegradationState::Healthy);
            prop_assert_eq!(budget.errors_in_window(), 0, "recovery must clear the window");
            prop_assert_eq!(budget.recoveries(), 1);
        } else {
            prop_assert_eq!(budget.state(), DegradationState::Degraded);
        }
    }
}

//! The error-budget trip wire and degradation state machine.
//!
//! The flash cache runs this ladder (DESIGN.md "Failure model"):
//!
//! ```text
//! Healthy --[errors in window > budget]--> Degraded
//! Degraded --[probe interval elapsed]----> probe the device
//! Degraded --[`recovery_probes` consecutive probe successes]--> Healthy
//! ```
//!
//! Time is logical (operation count), matching the simulator's clock.

use std::collections::VecDeque;

/// Parameters of the error budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudgetConfig {
    /// Sliding window length in operations.
    pub window_ops: u64,
    /// Errors tolerated inside one window before tripping.
    pub max_errors: u32,
    /// While degraded, probe the device every this many operations.
    pub probe_interval: u64,
    /// Consecutive successful probes required to recover.
    pub recovery_probes: u32,
}

impl Default for ErrorBudgetConfig {
    fn default() -> Self {
        ErrorBudgetConfig {
            window_ops: 1000,
            max_errors: 10,
            probe_interval: 100,
            recovery_probes: 3,
        }
    }
}

/// Where the tier currently sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationState {
    /// Flash is in use.
    Healthy,
    /// The budget tripped; the cache runs DRAM-only and probes the device.
    Degraded,
}

/// Sliding-window error counter plus the degraded/probing/recovery logic.
#[derive(Debug, Clone)]
pub struct ErrorBudget {
    cfg: ErrorBudgetConfig,
    /// Logical times of errors inside the current window.
    errors: VecDeque<u64>,
    state: DegradationState,
    /// Time the budget tripped or the last probe was made.
    last_probe: u64,
    consecutive_probe_successes: u32,
    trips: u64,
    recoveries: u64,
}

impl ErrorBudget {
    /// Builds the budget.
    pub fn new(cfg: ErrorBudgetConfig) -> Self {
        ErrorBudget {
            cfg,
            errors: VecDeque::new(),
            state: DegradationState::Healthy,
            last_probe: 0,
            consecutive_probe_successes: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current ladder position.
    pub fn state(&self) -> DegradationState {
        self.state
    }

    /// Times the budget has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times the device recovered.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Errors currently inside the window.
    pub fn errors_in_window(&self) -> usize {
        self.errors.len()
    }

    fn expire(&mut self, now: u64) {
        while let Some(&t) = self.errors.front() {
            if now.saturating_sub(t) >= self.cfg.window_ops {
                self.errors.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records a (post-retry) operation failure at logical time `now`.
    /// Returns `true` when this error trips the budget (Healthy →
    /// Degraded transition).
    pub fn record_error(&mut self, now: u64) -> bool {
        self.expire(now);
        self.errors.push_back(now);
        if self.state == DegradationState::Healthy
            && self.errors.len() > self.cfg.max_errors as usize
        {
            self.state = DegradationState::Degraded;
            self.trips += 1;
            self.last_probe = now;
            self.consecutive_probe_successes = 0;
            return true;
        }
        false
    }

    /// True when, at time `now`, a degraded tier should attempt a probe
    /// operation against the device.
    pub fn should_probe(&self, now: u64) -> bool {
        self.state == DegradationState::Degraded
            && now.saturating_sub(self.last_probe) >= self.cfg.probe_interval
    }

    /// Reports a probe's outcome. Returns `true` when this probe completes
    /// recovery (Degraded → Healthy transition).
    pub fn record_probe(&mut self, now: u64, ok: bool) -> bool {
        if self.state != DegradationState::Degraded {
            return false;
        }
        self.last_probe = now;
        if ok {
            self.consecutive_probe_successes += 1;
            if self.consecutive_probe_successes >= self.cfg.recovery_probes {
                self.state = DegradationState::Healthy;
                self.errors.clear();
                self.consecutive_probe_successes = 0;
                self.recoveries += 1;
                return true;
            }
        } else {
            self.consecutive_probe_successes = 0;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ErrorBudgetConfig {
        ErrorBudgetConfig {
            window_ops: 100,
            max_errors: 3,
            probe_interval: 10,
            recovery_probes: 2,
        }
    }

    #[test]
    fn trips_only_past_budget() {
        let mut b = ErrorBudget::new(cfg());
        assert!(!b.record_error(1));
        assert!(!b.record_error(2));
        assert!(!b.record_error(3));
        assert_eq!(b.state(), DegradationState::Healthy);
        assert!(b.record_error(4), "4th error in window must trip");
        assert_eq!(b.state(), DegradationState::Degraded);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn window_expiry_forgives_old_errors() {
        let mut b = ErrorBudget::new(cfg());
        for t in 0..3 {
            assert!(!b.record_error(t));
        }
        // 100 ops later the window is clean; three more errors fit.
        for t in 200..203 {
            assert!(!b.record_error(t), "expired errors must not count");
        }
        assert_eq!(b.errors_in_window(), 3);
        assert_eq!(b.state(), DegradationState::Healthy);
    }

    #[test]
    fn probe_cadence_and_recovery() {
        let mut b = ErrorBudget::new(cfg());
        for t in 0..4 {
            b.record_error(t);
        }
        assert_eq!(b.state(), DegradationState::Degraded);
        // Too soon to probe.
        assert!(!b.should_probe(5));
        assert!(b.should_probe(13), "probe_interval elapsed");
        assert!(!b.record_probe(13, true), "one success is not recovery");
        assert!(!b.should_probe(14), "interval restarts after a probe");
        assert!(b.should_probe(23));
        assert!(b.record_probe(23, true), "second success recovers");
        assert_eq!(b.state(), DegradationState::Healthy);
        assert_eq!(b.recoveries(), 1);
        assert_eq!(b.errors_in_window(), 0, "recovery clears the window");
    }

    #[test]
    fn failed_probe_resets_the_streak() {
        let mut b = ErrorBudget::new(cfg());
        for t in 0..4 {
            b.record_error(t);
        }
        assert!(!b.record_probe(13, true));
        assert!(!b.record_probe(23, false), "failure resets");
        assert!(!b.record_probe(33, true));
        assert_eq!(b.state(), DegradationState::Degraded);
        assert!(b.record_probe(43, true), "needs a fresh streak of 2");
        assert_eq!(b.state(), DegradationState::Healthy);
    }

    #[test]
    fn no_double_trip_while_degraded() {
        let mut b = ErrorBudget::new(cfg());
        for t in 0..20 {
            b.record_error(t);
        }
        assert_eq!(b.trips(), 1, "degraded state absorbs further errors");
    }

    #[test]
    fn healthy_probe_reports_are_ignored() {
        let mut b = ErrorBudget::new(cfg());
        assert!(!b.record_probe(1, true));
        assert_eq!(b.state(), DegradationState::Healthy);
    }

    #[test]
    fn full_trip_recover_trip_cycle() {
        let mut b = ErrorBudget::new(cfg());
        for t in 0..4 {
            b.record_error(t);
        }
        b.record_probe(20, true);
        b.record_probe(30, true);
        assert_eq!(b.state(), DegradationState::Healthy);
        // Device fails again later: a second trip is counted.
        for t in 1000..1004 {
            b.record_error(t);
        }
        assert_eq!(b.state(), DegradationState::Degraded);
        assert_eq!(b.trips(), 2);
    }
}

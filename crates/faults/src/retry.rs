//! Bounded retries with decorrelated-jitter backoff.
//!
//! Delays are *simulated* time units (the simulator measures logical time,
//! §6.1), so retry behavior is deterministic and unit-testable; a real
//! deployment would map a unit onto microseconds.

use cache_ds::SplitMix64;

/// How a fallible device operation is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Base backoff delay in simulated units.
    pub base_delay: u64,
    /// Upper bound on a single backoff delay.
    pub max_delay: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: 10,
            max_delay: 1000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Decorrelated-jitter backoff: each delay is drawn uniformly from
/// `[base, prev * 3)` and capped at `max` — the "decorrelated jitter"
/// variant recommended by the AWS architecture blog, which spreads retry
/// storms better than plain exponential backoff.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: SplitMix64,
    prev: u64,
    attempts: u32,
}

impl Backoff {
    /// Starts a backoff sequence for one logical operation.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            rng: SplitMix64::new(seed ^ 0xBAC0FF),
            prev: policy.base_delay,
            attempts: 0,
        }
    }

    /// Returns the next delay, or `None` once retries are exhausted.
    pub fn next_delay(&mut self) -> Option<u64> {
        if self.attempts >= self.policy.max_retries {
            return None;
        }
        self.attempts += 1;
        let base = self.policy.base_delay.max(1);
        let upper = self.prev.saturating_mul(3).max(base + 1);
        let delay = (base + self.rng.next_below(upper - base)).min(self.policy.max_delay);
        self.prev = delay.max(base);
        Some(delay)
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets the sequence for a fresh operation (keeps the RNG stream).
    pub fn reset(&mut self) {
        self.prev = self.policy.base_delay;
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_max_retries() {
        let mut b = Backoff::new(
            RetryPolicy {
                max_retries: 3,
                base_delay: 10,
                max_delay: 1000,
            },
            1,
        );
        let mut n = 0;
        while b.next_delay().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(b.attempts(), 3);
        assert!(b.next_delay().is_none(), "stays exhausted");
    }

    #[test]
    fn delays_bounded_by_policy() {
        let policy = RetryPolicy {
            max_retries: 100,
            base_delay: 10,
            max_delay: 250,
        };
        let mut b = Backoff::new(policy, 99);
        while let Some(d) = b.next_delay() {
            assert!((10..=250).contains(&d), "delay {d} out of bounds");
        }
    }

    #[test]
    fn jitter_varies_with_seed() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_delay: 10,
            max_delay: 100_000,
        };
        let collect = |seed| {
            let mut b = Backoff::new(policy, seed);
            std::iter::from_fn(|| b.next_delay()).collect::<Vec<_>>()
        };
        assert_ne!(collect(1), collect(2), "different seeds, different jitter");
        assert_eq!(collect(1), collect(1), "same seed, same schedule");
    }

    #[test]
    fn no_retries_policy_fails_immediately() {
        let mut b = Backoff::new(RetryPolicy::no_retries(), 5);
        assert!(b.next_delay().is_none());
    }

    #[test]
    fn reset_restarts_the_sequence() {
        let policy = RetryPolicy::default();
        let mut b = Backoff::new(policy, 3);
        while b.next_delay().is_some() {}
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay().is_some());
    }

    #[test]
    fn delays_grow_from_base_on_average() {
        // Decorrelated jitter should trend upward from the base delay.
        let policy = RetryPolicy {
            max_retries: 6,
            base_delay: 10,
            max_delay: 1_000_000,
        };
        let mut sum_first = 0u64;
        let mut sum_last = 0u64;
        for seed in 0..200 {
            let mut b = Backoff::new(policy, seed);
            let ds: Vec<u64> = std::iter::from_fn(|| b.next_delay()).collect();
            sum_first += ds[0];
            sum_last += ds[ds.len() - 1];
        }
        assert!(
            sum_last > sum_first,
            "later delays should exceed the first on average ({sum_last} vs {sum_first})"
        );
    }
}

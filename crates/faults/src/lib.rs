//! Deterministic fault injection for the storage tiers.
//!
//! The paper's §5.4 flash experiments assume a perfectly reliable device;
//! production flash throws transient write failures, unreadable sectors,
//! checksum mismatches, device-full conditions, and latency spikes. This
//! crate provides the failure model the rest of the workspace builds on:
//!
//! - [`FaultPlan`] / [`FaultInjector`] — a seeded, schedule-driven decision
//!   source: "does operation #n of this class fault, and how?". Fully
//!   deterministic from the seed, so every torture run is replayable.
//! - [`Backoff`] — bounded decorrelated-jitter retry backoff (the AWS
//!   architecture-blog variant), in simulated time units.
//! - [`ErrorBudget`] — the degradation ladder's trip wire: a sliding-window
//!   error counter that trips to [`DegradationState::Degraded`], probes the
//!   device while degraded, and recovers after a run of successful probes.
//!
//! The flash cache composes these: transient faults are retried with
//! [`Backoff`]; repeated failures trip the [`ErrorBudget`] and the cache
//! falls back to DRAM-only operation; recovery probes re-admit the flash
//! tier. See `cache-flash` for the integration and `cache-concurrent` for
//! the multi-threaded torture harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod plan;
pub mod retry;

pub use budget::{DegradationState, ErrorBudget, ErrorBudgetConfig};
pub use plan::{
    DelaySpec, DeviceFault, FaultInjector, FaultKind, FaultPlan, FaultStats, OpClass, Schedule,
};
pub use retry::{Backoff, RetryPolicy};

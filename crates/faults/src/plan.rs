//! Fault taxonomy, probability schedules, and the seeded injector.

use cache_ds::SplitMix64;

/// The kinds of fault a device can throw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A write fails but the device stays healthy; retrying may succeed.
    TransientWrite,
    /// A read fails (unreadable sector); the object is effectively lost.
    ReadError,
    /// The device reports no space even though accounting says otherwise
    /// (e.g. garbage collection lagging behind).
    DeviceFull,
    /// A read returns data failing its checksum; the object must be
    /// discarded.
    Corruption,
    /// The operation succeeds but takes far longer than usual.
    LatencySpike,
}

impl FaultKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TransientWrite,
        FaultKind::ReadError,
        FaultKind::DeviceFull,
        FaultKind::Corruption,
        FaultKind::LatencySpike,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientWrite => "transient-write",
            FaultKind::ReadError => "read-error",
            FaultKind::DeviceFull => "device-full",
            FaultKind::Corruption => "corruption",
            FaultKind::LatencySpike => "latency-spike",
        }
    }
}

/// A fault as surfaced by a device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Whether a retry of the same operation can plausibly succeed.
    pub retryable: bool,
}

impl DeviceFault {
    /// Builds the fault for `kind` with its conventional retryability:
    /// transient writes, device-full, and latency spikes are retryable;
    /// read errors and corruption are not (the data is gone).
    pub fn of(kind: FaultKind) -> Self {
        let retryable = matches!(
            kind,
            FaultKind::TransientWrite | FaultKind::DeviceFull | FaultKind::LatencySpike
        );
        DeviceFault { kind, retryable }
    }
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind.label())
    }
}

impl From<DeviceFault> for cache_types::CacheError {
    fn from(fault: DeviceFault) -> Self {
        match fault.kind {
            FaultKind::Corruption => cache_types::CacheError::Corruption(fault.kind.label().into()),
            _ => cache_types::CacheError::DeviceFailure(fault.kind.label().into()),
        }
    }
}

/// Which class of device operation is being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A read of a (supposedly) resident object.
    Read,
    /// A write/admission of an object.
    Write,
}

/// A fault probability as a function of operation index.
///
/// All schedules are pure functions of the op index, so a `(seed, plan)`
/// pair fully determines every injection decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Constant probability.
    Constant(f64),
    /// Linear ramp from `start` to `end` over the first `over_ops`
    /// operations, then holding `end`.
    Ramp {
        /// Probability at op 0.
        start: f64,
        /// Probability from `over_ops` onward.
        end: f64,
        /// Ramp length in operations (must be > 0).
        over_ops: u64,
    },
    /// Periodic bursts: probability `inside` for the first `burst_len` ops
    /// of every `period`-op cycle, `outside` for the rest.
    Burst {
        /// Cycle length in operations (must be > 0).
        period: u64,
        /// Burst length at the start of each cycle.
        burst_len: u64,
        /// Probability inside the burst.
        inside: f64,
        /// Probability outside the burst.
        outside: f64,
    },
}

impl Schedule {
    /// Probability of a fault at operation `op`, clamped to `[0, 1]`.
    pub fn probability(&self, op: u64) -> f64 {
        let p = match *self {
            Schedule::Constant(p) => p,
            Schedule::Ramp {
                start,
                end,
                over_ops,
            } => {
                if over_ops == 0 || op >= over_ops {
                    end
                } else {
                    start + (end - start) * (op as f64 / over_ops as f64)
                }
            }
            Schedule::Burst {
                period,
                burst_len,
                inside,
                outside,
            } => {
                if period == 0 || op % period.max(1) < burst_len {
                    inside
                } else {
                    outside
                }
            }
        };
        p.clamp(0.0, 1.0)
    }
}

/// A seeded latency (delay) fault: the operation *succeeds* but is slowed
/// by a deterministic number of delay units (the consumer decides what a
/// unit means — the cache server interprets them as microseconds, the
/// simulators as logical latency).
///
/// Delays ride alongside the error schedules so slow-IO and slow-client
/// scenarios are first-class: the same `(seed, plan)` pair fully determines
/// every delay decision *and* every delay magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySpec {
    /// Which operation class is slowed; `None` slows both.
    pub class: Option<OpClass>,
    /// When the delay fires (same schedule language as error faults).
    pub schedule: Schedule,
    /// Smallest delay, in units.
    pub min_units: u64,
    /// Largest delay, in units (inclusive; clamped up to `min_units`).
    pub max_units: u64,
}

impl DelaySpec {
    /// A constant-probability delay of `min_units..=max_units` for `class`.
    pub fn constant(class: Option<OpClass>, p: f64, min_units: u64, max_units: u64) -> Self {
        DelaySpec {
            class,
            schedule: Schedule::Constant(p),
            min_units,
            max_units,
        }
    }
}

/// A seeded description of which faults a device throws and when.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the injection RNG.
    pub seed: u64,
    /// Per-kind probability schedules. Kinds not listed never fire.
    pub schedules: Vec<(FaultKind, Schedule)>,
    /// Simulated latency units added by one latency spike.
    pub spike_latency: u64,
    /// Seeded delay (slow-operation) faults; empty means never slow.
    pub delays: Vec<DelaySpec>,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            schedules: Vec::new(),
            spike_latency: 0,
            delays: Vec::new(),
        }
    }

    /// An empty plan with the given seed; add schedules with
    /// [`FaultPlan::with`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            schedules: Vec::new(),
            spike_latency: 100,
            delays: Vec::new(),
        }
    }

    /// Adds a schedule for `kind`.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, schedule: Schedule) -> Self {
        self.schedules.push((kind, schedule));
        self
    }

    /// Convenience: constant-rate transient write failures.
    #[must_use]
    pub fn with_transient_writes(self, p: f64) -> Self {
        self.with(FaultKind::TransientWrite, Schedule::Constant(p))
    }

    /// Convenience: constant-rate read errors.
    #[must_use]
    pub fn with_read_errors(self, p: f64) -> Self {
        self.with(FaultKind::ReadError, Schedule::Constant(p))
    }

    /// Convenience: constant-rate corruption.
    #[must_use]
    pub fn with_corruption(self, p: f64) -> Self {
        self.with(FaultKind::Corruption, Schedule::Constant(p))
    }

    /// Adds a delay (slow-operation) fault.
    #[must_use]
    pub fn with_delay(mut self, spec: DelaySpec) -> Self {
        self.delays.push(spec);
        self
    }

    /// Convenience: constant-rate read+write delays of
    /// `min_units..=max_units`.
    #[must_use]
    pub fn with_delays(self, p: f64, min_units: u64, max_units: u64) -> Self {
        self.with_delay(DelaySpec::constant(None, p, min_units, max_units))
    }

    /// True when no schedule can ever fire.
    pub fn is_noop(&self) -> bool {
        self.schedules.is_empty() && self.delays.is_empty()
    }
}

/// Counters of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient write failures injected.
    pub transient_writes: u64,
    /// Read errors injected.
    pub read_errors: u64,
    /// Device-full conditions injected.
    pub device_full: u64,
    /// Corruptions injected.
    pub corruptions: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Total simulated latency units added by spikes.
    pub spike_latency_units: u64,
    /// Delay faults injected (see [`DelaySpec`]).
    pub delays: u64,
    /// Total delay units injected across all delay faults.
    pub delay_units: u64,
}

impl FaultStats {
    /// Total injected *error* faults (spikes included; delay faults are
    /// counted separately in [`FaultStats::delays`] because the slowed
    /// operation still succeeds).
    pub fn total(&self) -> u64 {
        self.transient_writes
            + self.read_errors
            + self.device_full
            + self.corruptions
            + self.latency_spikes
    }

    fn record(&mut self, kind: FaultKind, spike_latency: u64) {
        match kind {
            FaultKind::TransientWrite => self.transient_writes += 1,
            FaultKind::ReadError => self.read_errors += 1,
            FaultKind::DeviceFull => self.device_full += 1,
            FaultKind::Corruption => self.corruptions += 1,
            FaultKind::LatencySpike => {
                self.latency_spikes += 1;
                self.spike_latency_units += spike_latency;
            }
        }
    }
}

/// The seeded decision source: evaluates a [`FaultPlan`] operation by
/// operation.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Separate RNG stream for delay decisions so adding or removing delay
    /// specs never perturbs the error-fault stream (and vice versa).
    delay_rng: SplitMix64,
    op: u64,
    delay_op: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed ^ 0xFA_0175);
        let delay_rng = SplitMix64::new(plan.seed ^ 0xDE_1A7);
        FaultInjector {
            plan,
            rng,
            delay_rng,
            op: 0,
            delay_op: 0,
            stats: FaultStats::default(),
        }
    }

    /// An injector that never faults.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// Decides whether the next operation of class `class` faults.
    ///
    /// Schedules are evaluated in plan order; the first that fires wins, so
    /// at most one fault is injected per operation. [`FaultKind::LatencySpike`]
    /// applies to both classes; write-side kinds only to writes, read-side
    /// kinds only to reads.
    pub fn next_fault(&mut self, class: OpClass) -> Option<DeviceFault> {
        let op = self.op;
        self.op += 1;
        if self.plan.schedules.is_empty() {
            return None;
        }
        for i in 0..self.plan.schedules.len() {
            let (kind, schedule) = self.plan.schedules[i];
            let applies = match kind {
                FaultKind::TransientWrite | FaultKind::DeviceFull => class == OpClass::Write,
                FaultKind::ReadError | FaultKind::Corruption => class == OpClass::Read,
                FaultKind::LatencySpike => true,
            };
            if !applies {
                continue;
            }
            // One RNG draw per applicable schedule keeps the stream aligned
            // with the schedule list regardless of which kinds fire.
            let draw = self.rng.next_f64();
            if draw < schedule.probability(op) {
                self.stats.record(kind, self.plan.spike_latency);
                return Some(DeviceFault::of(kind));
            }
        }
        None
    }

    /// Decides whether the next operation of class `class` is slowed, and by
    /// how many units. Returns 0 when no delay fires.
    ///
    /// Delay decisions run on their own op counter and RNG stream: calling
    /// (or not calling) `next_delay` never changes what [`Self::next_fault`]
    /// injects. Specs are evaluated in plan order; the first that fires wins
    /// and its magnitude is drawn uniformly from `min_units..=max_units`.
    pub fn next_delay(&mut self, class: OpClass) -> u64 {
        let op = self.delay_op;
        self.delay_op += 1;
        if self.plan.delays.is_empty() {
            return 0;
        }
        for i in 0..self.plan.delays.len() {
            let spec = self.plan.delays[i];
            if spec.class.is_some_and(|c| c != class) {
                continue;
            }
            // One draw per applicable spec keeps the stream aligned with the
            // spec list regardless of which specs fire (same discipline as
            // the error schedules).
            let draw = self.delay_rng.next_f64();
            if draw < spec.schedule.probability(op) {
                let lo = spec.min_units;
                let hi = spec.max_units.max(lo);
                let units = lo + self.delay_rng.next_below(hi - lo + 1);
                self.stats.delays += 1;
                self.stats.delay_units += units;
                return units;
            }
        }
        0
    }

    /// Operations decided so far.
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Counters of injected faults.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Simulated latency units added by one spike under this plan.
    pub fn spike_latency(&self) -> u64 {
        self.plan.spike_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_rate_is_respected() {
        let plan = FaultPlan::new(7).with_transient_writes(0.1);
        let mut inj = FaultInjector::new(plan);
        let n = 100_000;
        let faults = (0..n)
            .filter(|_| inj.next_fault(OpClass::Write).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
        assert_eq!(inj.stats().transient_writes, faults as u64);
    }

    #[test]
    fn injection_is_deterministic() {
        let plan = FaultPlan::new(42)
            .with_transient_writes(0.05)
            .with_read_errors(0.02);
        let run = |mut inj: FaultInjector| -> Vec<Option<DeviceFault>> {
            (0..1000)
                .map(|i| {
                    inj.next_fault(if i % 2 == 0 {
                        OpClass::Write
                    } else {
                        OpClass::Read
                    })
                })
                .collect()
        };
        let a = run(FaultInjector::new(plan.clone()));
        let b = run(FaultInjector::new(plan));
        assert_eq!(a, b);
    }

    #[test]
    fn kinds_respect_op_class() {
        let plan = FaultPlan::new(3)
            .with(FaultKind::TransientWrite, Schedule::Constant(1.0))
            .with(FaultKind::ReadError, Schedule::Constant(1.0));
        let mut inj = FaultInjector::new(plan);
        for _ in 0..100 {
            let w = inj.next_fault(OpClass::Write).expect("write always faults");
            assert_eq!(w.kind, FaultKind::TransientWrite);
            let r = inj.next_fault(OpClass::Read).expect("read always faults");
            assert_eq!(r.kind, FaultKind::ReadError);
        }
    }

    #[test]
    fn ramp_schedule_increases() {
        let s = Schedule::Ramp {
            start: 0.0,
            end: 1.0,
            over_ops: 100,
        };
        assert_eq!(s.probability(0), 0.0);
        assert!((s.probability(50) - 0.5).abs() < 1e-12);
        assert_eq!(s.probability(100), 1.0);
        assert_eq!(s.probability(10_000), 1.0);
    }

    #[test]
    fn burst_schedule_alternates() {
        let s = Schedule::Burst {
            period: 10,
            burst_len: 2,
            inside: 1.0,
            outside: 0.0,
        };
        assert_eq!(s.probability(0), 1.0);
        assert_eq!(s.probability(1), 1.0);
        assert_eq!(s.probability(2), 0.0);
        assert_eq!(s.probability(10), 1.0);
        assert_eq!(s.probability(19), 0.0);
    }

    #[test]
    fn probabilities_clamp() {
        assert_eq!(Schedule::Constant(7.0).probability(0), 1.0);
        assert_eq!(Schedule::Constant(-3.0).probability(0), 0.0);
    }

    #[test]
    fn noop_plan_never_fires() {
        let mut inj = FaultInjector::disabled();
        assert!(inj.next_fault(OpClass::Write).is_none());
        assert!(inj.next_fault(OpClass::Read).is_none());
        assert_eq!(inj.stats().total(), 0);
        assert!(FaultPlan::none().is_noop());
    }

    #[test]
    fn delay_faults_are_deterministic_and_bounded() {
        let plan = FaultPlan::new(99)
            .with_delays(0.25, 3, 17)
            .with_delay(DelaySpec::constant(Some(OpClass::Read), 0.5, 100, 100));
        let run = |mut inj: FaultInjector| -> Vec<u64> {
            (0..2000)
                .map(|i| {
                    inj.next_delay(if i % 2 == 0 {
                        OpClass::Write
                    } else {
                        OpClass::Read
                    })
                })
                .collect()
        };
        let a = run(FaultInjector::new(plan.clone()));
        let b = run(FaultInjector::new(plan.clone()));
        assert_eq!(a, b, "delay stream must be a pure function of (seed, plan)");
        // Magnitudes come only from the configured ranges.
        for &d in &a {
            assert!(
                d == 0 || (3..=17).contains(&d) || d == 100,
                "delay {d} outside configured ranges"
            );
        }
        assert!(a.iter().any(|&d| d > 0), "delays never fired");
        let mut inj = FaultInjector::new(plan);
        let total: u64 = (0..2000)
            .map(|i| {
                inj.next_delay(if i % 2 == 0 {
                    OpClass::Write
                } else {
                    OpClass::Read
                })
            })
            .sum();
        assert_eq!(inj.stats().delay_units, total);
        assert_eq!(inj.stats().delays, a.iter().filter(|&&d| d > 0).count() as u64);
    }

    #[test]
    fn delay_stream_is_independent_of_error_stream() {
        let base = FaultPlan::new(7).with_transient_writes(0.1);
        let with_delays = base.clone().with_delays(0.5, 1, 5);
        let faults = |mut inj: FaultInjector| -> Vec<Option<DeviceFault>> {
            (0..1000).map(|_| inj.next_fault(OpClass::Write)).collect()
        };
        // Adding delay specs must not perturb the error-fault stream.
        assert_eq!(
            faults(FaultInjector::new(base)),
            faults(FaultInjector::new(with_delays.clone()))
        );
        // Interleaving delay queries must not perturb it either.
        let mut inj = FaultInjector::new(with_delays.clone());
        let interleaved: Vec<Option<DeviceFault>> = (0..1000)
            .map(|_| {
                let _ = inj.next_delay(OpClass::Write);
                inj.next_fault(OpClass::Write)
            })
            .collect();
        assert_eq!(interleaved, faults(FaultInjector::new(with_delays)));
    }

    #[test]
    fn delay_class_filter_applies() {
        let plan = FaultPlan::new(11)
            .with_delay(DelaySpec::constant(Some(OpClass::Write), 1.0, 7, 7));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.next_delay(OpClass::Write), 7);
        assert_eq!(inj.next_delay(OpClass::Read), 0);
        assert!(!FaultPlan::new(1).with_delays(1.0, 1, 1).is_noop());
    }

    #[test]
    fn retryability_convention() {
        assert!(DeviceFault::of(FaultKind::TransientWrite).retryable);
        assert!(DeviceFault::of(FaultKind::DeviceFull).retryable);
        assert!(DeviceFault::of(FaultKind::LatencySpike).retryable);
        assert!(!DeviceFault::of(FaultKind::ReadError).retryable);
        assert!(!DeviceFault::of(FaultKind::Corruption).retryable);
    }
}

//! An FxHash-style multiplicative hasher (no external dependency).
//!
//! The simulator's hot maps are keyed by 64-bit object ids. SipHash (the
//! `RandomState` default) burns ~1 ns/byte on DoS resistance the simulator
//! does not need; the previous `IdHasher` (SplitMix64 finalizer) costs two
//! multiplies and four shift-xors per key. [`FxHasher`] is the rustc hasher:
//! one rotate, one xor, one multiply per 8-byte word — the cheapest mixing
//! that still spreads sequential ids across hashbrown's low-bit buckets
//! (the odd multiplier propagates every input bit into the low bits used for
//! bucket selection).
//!
//! Simulation results never depend on map iteration order, so swapping the
//! hasher is behavior-neutral; it only changes replay speed.

/// The multiplier from FxHash (`0x51_7c_c1_b7_27_22_0a_95`), derived from
/// the golden ratio; odd, so multiplication is a bijection on `u64`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: `state = (state.rotl(5) ^ word) * SEED` per 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rare on the hot maps): fold in 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] for arbitrary key types.
pub type FxMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`] for arbitrary key types.
pub type FxSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash, Hasher};

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_u64(0), hash_u64(u64::MAX));
    }

    #[test]
    fn sequential_ids_spread_low_bits() {
        // hashbrown selects buckets from the hash's low bits; sequential ids
        // must not collapse into a few buckets.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1000u64 {
            buckets.insert(hash_u64(i) & 0xFFF);
        }
        assert!(buckets.len() > 800, "got {} distinct buckets", buckets.len());
    }

    #[test]
    fn bytes_path_matches_width() {
        // Hashing the same logical value through different write methods may
        // differ (that is fine); each must at least be deterministic.
        let b = FxBuildHasher::default();
        let h1 = b.hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        let h2 = b.hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxMap<u64, u32> = FxMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&500));
        let mut s: FxSet<&str> = FxSet::default();
        s.insert("a");
        assert!(s.contains("a"));
    }
}

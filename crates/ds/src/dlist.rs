//! A slab-backed doubly-linked list with stable, generation-checked handles.
//!
//! LRU-family eviction algorithms need O(1) "move this object to the head"
//! given only the object's map entry. A pointer-based list would force
//! `unsafe`; instead nodes live in a `Vec` slab and links are `u32` indices.
//! Each slot carries a generation counter so a stale [`Handle`] (one whose
//! node was removed and the slot reused) is detected rather than silently
//! corrupting the list.
//!
//! The list is ordered head → tail. LRU policies put the most recently used
//! object at the head and evict from the tail; FIFO policies push at the head
//! and pop from the tail so that eviction order equals insertion order.

const NIL: u32 = u32::MAX;

/// A stable reference to a node in a [`DList`].
///
/// Handles become invalid when the node is removed; using an invalid handle
/// returns `None`/`false` rather than panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Node<T> {
    prev: u32,
    next: u32,
    gen: u32,
    val: Option<T>,
}

/// Doubly-linked list backed by a slab of nodes.
///
/// # Examples
///
/// ```
/// use cache_ds::DList;
///
/// let mut lru: DList<u64> = DList::new();
/// let a = lru.push_front(1);
/// lru.push_front(2);
/// lru.move_to_front(a);          // promote on hit
/// assert_eq!(lru.pop_back(), Some(2)); // evict the least recent
/// ```
#[derive(Debug)]
pub struct DList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for DList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        DList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Creates an empty list with room for `cap` nodes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        DList {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of elements in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the list has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, val: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.nodes[idx as usize];
            debug_assert!(node.val.is_none());
            node.val = Some(val);
            node.prev = NIL;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NIL, "DList slab exhausted");
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                gen: 0,
                val: Some(val),
            });
            idx
        }
    }

    fn handle_of(&self, idx: u32) -> Handle {
        Handle {
            idx,
            gen: self.nodes[idx as usize].gen,
        }
    }

    fn valid(&self, h: Handle) -> bool {
        (h.idx as usize) < self.nodes.len() && {
            let n = &self.nodes[h.idx as usize];
            n.gen == h.gen && n.val.is_some()
        }
    }

    /// Inserts at the head, returning a handle to the new node.
    pub fn push_front(&mut self, val: T) -> Handle {
        let idx = self.alloc(val);
        let old_head = self.head;
        self.nodes[idx as usize].next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
        self.handle_of(idx)
    }

    /// Inserts at the tail, returning a handle to the new node.
    pub fn push_back(&mut self, val: T) -> Handle {
        let idx = self.alloc(val);
        let old_tail = self.tail;
        self.nodes[idx as usize].prev = old_tail;
        if old_tail != NIL {
            self.nodes[old_tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        self.handle_of(idx)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn release(&mut self, idx: u32) -> T {
        let node = &mut self.nodes[idx as usize];
        // Invariant: live handles point at occupied slots.
        let val = node.val.take().expect("releasing empty slot");
        node.gen = node.gen.wrapping_add(1);
        node.prev = NIL;
        node.next = NIL;
        self.free.push(idx);
        self.len -= 1;
        val
    }

    /// Removes the node behind `h`, returning its value, or `None` when the
    /// handle is stale.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        if !self.valid(h) {
            return None;
        }
        self.unlink(h.idx);
        Some(self.release(h.idx))
    }

    /// Removes and returns the tail element.
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        Some(self.release(idx))
    }

    /// Removes and returns the head element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.unlink(idx);
        Some(self.release(idx))
    }

    /// Moves the node behind `h` to the head (LRU promotion). Returns false
    /// when the handle is stale.
    pub fn move_to_front(&mut self, h: Handle) -> bool {
        if !self.valid(h) {
            return false;
        }
        if self.head == h.idx {
            return true;
        }
        self.unlink(h.idx);
        let old_head = self.head;
        let n = &mut self.nodes[h.idx as usize];
        n.prev = NIL;
        n.next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = h.idx;
        } else {
            self.tail = h.idx;
        }
        self.head = h.idx;
        true
    }

    /// Moves the node behind `h` to the tail. Returns false when the handle
    /// is stale.
    pub fn move_to_back(&mut self, h: Handle) -> bool {
        if !self.valid(h) {
            return false;
        }
        if self.tail == h.idx {
            return true;
        }
        self.unlink(h.idx);
        let old_tail = self.tail;
        let n = &mut self.nodes[h.idx as usize];
        n.next = NIL;
        n.prev = old_tail;
        if old_tail != NIL {
            self.nodes[old_tail as usize].next = h.idx;
        } else {
            self.head = h.idx;
        }
        self.tail = h.idx;
        true
    }

    /// Returns a reference to the value behind `h`.
    pub fn get(&self, h: Handle) -> Option<&T> {
        if self.valid(h) {
            self.nodes[h.idx as usize].val.as_ref()
        } else {
            None
        }
    }

    /// Returns a mutable reference to the value behind `h`.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        if self.valid(h) {
            self.nodes[h.idx as usize].val.as_mut()
        } else {
            None
        }
    }

    /// Reference to the head value.
    pub fn front(&self) -> Option<&T> {
        if self.head == NIL {
            None
        } else {
            self.nodes[self.head as usize].val.as_ref()
        }
    }

    /// Reference to the tail value.
    pub fn back(&self) -> Option<&T> {
        if self.tail == NIL {
            None
        } else {
            self.nodes[self.tail as usize].val.as_ref()
        }
    }

    /// Handle of the head node.
    pub fn front_handle(&self) -> Option<Handle> {
        if self.head == NIL {
            None
        } else {
            Some(self.handle_of(self.head))
        }
    }

    /// Handle of the tail node.
    pub fn back_handle(&self) -> Option<Handle> {
        if self.tail == NIL {
            None
        } else {
            Some(self.handle_of(self.tail))
        }
    }

    /// Handle of the node before the tail-ward neighbour of `h` (towards the
    /// head); `None` when `h` is the head or stale.
    pub fn prev_handle(&self, h: Handle) -> Option<Handle> {
        if !self.valid(h) {
            return None;
        }
        let p = self.nodes[h.idx as usize].prev;
        if p == NIL {
            None
        } else {
            Some(self.handle_of(p))
        }
    }

    /// Handle of the neighbour of `h` towards the tail; `None` when `h` is
    /// the tail or stale.
    pub fn next_handle(&self, h: Handle) -> Option<Handle> {
        if !self.valid(h) {
            return None;
        }
        let n = self.nodes[h.idx as usize].next;
        if n == NIL {
            None
        } else {
            Some(self.handle_of(n))
        }
    }

    /// Iterates head → tail.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cur: self.head,
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }
}

/// Head-to-tail iterator over a [`DList`].
pub struct Iter<'a, T> {
    list: &'a DList<T>,
    cur: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next;
        node.val.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn push_pop_fifo_order() {
        let mut l = DList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        // Head-insert, tail-evict: FIFO order.
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn push_back_pop_front_matches() {
        let mut l = DList::new();
        l.push_back('a');
        l.push_back('b');
        assert_eq!(l.pop_front(), Some('a'));
        assert_eq!(l.pop_front(), Some('b'));
    }

    #[test]
    fn move_to_front_promotes() {
        let mut l = DList::new();
        let _h1 = l.push_front(1);
        let h2 = l.push_front(2);
        let _h3 = l.push_front(3);
        // List is 3,2,1; promote 2 → 2,3,1.
        assert!(l.move_to_front(h2));
        let v: Vec<_> = l.iter().copied().collect();
        assert_eq!(v, vec![2, 3, 1]);
        assert_eq!(l.pop_back(), Some(1));
    }

    #[test]
    fn move_to_back_demotes() {
        let mut l = DList::new();
        let h1 = l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert!(l.move_to_back(h1)); // already tail, no-op
        let h3 = l.front_handle().unwrap();
        assert!(l.move_to_back(h3));
        let v: Vec<_> = l.iter().copied().collect();
        assert_eq!(v, vec![2, 1, 3]);
    }

    #[test]
    fn remove_middle() {
        let mut l = DList::new();
        l.push_front(1);
        let h2 = l.push_front(2);
        l.push_front(3);
        assert_eq!(l.remove(h2), Some(2));
        let v: Vec<_> = l.iter().copied().collect();
        assert_eq!(v, vec![3, 1]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn stale_handle_is_rejected() {
        let mut l = DList::new();
        let h = l.push_front(1);
        assert_eq!(l.remove(h), Some(1));
        // Slot is reused with a bumped generation.
        let h2 = l.push_front(2);
        assert_ne!(h, h2);
        assert_eq!(l.remove(h), None);
        assert!(!l.move_to_front(h));
        assert!(l.get(h).is_none());
        assert_eq!(l.get(h2), Some(&2));
    }

    #[test]
    fn front_back_accessors() {
        let mut l = DList::new();
        assert!(l.front().is_none());
        assert!(l.back().is_none());
        assert!(l.front_handle().is_none());
        assert!(l.back_handle().is_none());
        l.push_front(10);
        l.push_front(20);
        assert_eq!(l.front(), Some(&20));
        assert_eq!(l.back(), Some(&10));
    }

    #[test]
    fn neighbour_handles() {
        let mut l = DList::new();
        let h1 = l.push_front(1);
        let h2 = l.push_front(2);
        let h3 = l.push_front(3);
        assert_eq!(l.prev_handle(h1), Some(h2));
        assert_eq!(l.prev_handle(h3), None);
        assert_eq!(l.next_handle(h3), Some(h2));
        assert_eq!(l.next_handle(h1), None);
    }

    #[test]
    fn get_mut_updates_value() {
        let mut l = DList::new();
        let h = l.push_front(5);
        *l.get_mut(h).unwrap() = 9;
        assert_eq!(l.get(h), Some(&9));
    }

    #[test]
    fn clear_empties() {
        let mut l = DList::new();
        for i in 0..10 {
            l.push_front(i);
        }
        l.clear();
        assert!(l.is_empty());
        assert!(l.pop_back().is_none());
    }

    #[test]
    fn slab_reuses_slots() {
        let mut l = DList::new();
        for i in 0..100 {
            l.push_front(i);
        }
        for _ in 0..100 {
            l.pop_back();
        }
        for i in 0..100 {
            l.push_front(i);
        }
        // Slab should not have grown beyond 100 slots.
        assert!(l.nodes.len() <= 100);
        assert_eq!(l.len(), 100);
    }

    proptest! {
        /// Differential test against `VecDeque`: a random interleaving of
        /// head-pushes and tail-pops must match the reference model.
        #[test]
        fn fifo_matches_vecdeque(ops in proptest::collection::vec(0u8..3, 0..400)) {
            let mut dl = DList::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut counter = 0u32;
            for op in ops {
                match op {
                    0 => {
                        dl.push_front(counter);
                        model.push_front(counter);
                        counter += 1;
                    }
                    1 => {
                        prop_assert_eq!(dl.pop_back(), model.pop_back());
                    }
                    _ => {
                        prop_assert_eq!(dl.pop_front(), model.pop_front());
                    }
                }
                prop_assert_eq!(dl.len(), model.len());
            }
            let got: Vec<u32> = dl.iter().copied().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }

        /// LRU-style usage: promotions keep the list a permutation of the
        /// live set and never lose or duplicate elements.
        #[test]
        fn promotions_preserve_contents(seed_ops in proptest::collection::vec((0u8..4, 0usize..32), 0..400)) {
            let mut dl = DList::new();
            let mut handles: Vec<Handle> = Vec::new();
            let mut live: Vec<u32> = Vec::new();
            let mut counter = 0u32;
            for (op, pick) in seed_ops {
                match op {
                    0 => {
                        let h = dl.push_front(counter);
                        handles.push(h);
                        live.push(counter);
                        counter += 1;
                    }
                    1 if !handles.is_empty() => {
                        let h = handles[pick % handles.len()];
                        dl.move_to_front(h);
                    }
                    2 if !handles.is_empty() => {
                        let i = pick % handles.len();
                        let h = handles.swap_remove(i);
                        if let Some(v) = dl.remove(h) {
                            let pos = live.iter().position(|&x| x == v).unwrap();
                            live.swap_remove(pos);
                        }
                    }
                    _ => {
                        if let Some(v) = dl.pop_back() {
                            let pos = live.iter().position(|&x| x == v).unwrap();
                            live.swap_remove(pos);
                        }
                    }
                }
            }
            let mut got: Vec<u32> = dl.iter().copied().collect();
            got.sort_unstable();
            live.sort_unstable();
            prop_assert_eq!(got, live);
        }
    }
}

//! Count-min sketch with periodic aging, plus TinyLFU's doorkeeper.
//!
//! TinyLFU (Einziger et al.) estimates object frequencies with a count-min
//! sketch whose counters are halved every *W* insertions (the "reset"
//! operation), approximating a sliding window. A small Bloom filter — the
//! *doorkeeper* — absorbs the long tail of objects seen exactly once so they
//! never occupy sketch counters.

use crate::bloom::BloomFilter;
use crate::rng::mix64;

/// Number of hash rows in the sketch, as in the TinyLFU paper.
const ROWS: usize = 4;
/// Counter saturation value (4-bit counters in the original).
const MAX_COUNT: u8 = 15;

/// A 4-row count-min sketch with 4-bit-style saturating counters and
/// periodic halving.
///
/// # Examples
///
/// ```
/// use cache_ds::CountMinSketch;
///
/// let mut freq = CountMinSketch::new(1024);
/// for _ in 0..5 {
///     freq.increment(7);
/// }
/// assert!(freq.estimate(7) >= 5); // never underestimates (pre-aging)
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: [Vec<u8>; ROWS],
    width_mask: u64,
    additions: u64,
    reset_at: u64,
}

impl CountMinSketch {
    /// Creates a sketch sized for roughly `counters` distinct objects; the
    /// sketch is halved after `counters` increments (TinyLFU's window).
    pub fn new(counters: usize) -> Self {
        let width = counters.max(16).next_power_of_two();
        CountMinSketch {
            rows: std::array::from_fn(|_| vec![0u8; width]),
            width_mask: (width - 1) as u64,
            additions: 0,
            reset_at: width as u64,
        }
    }

    #[inline]
    fn index(&self, key: u64, row: usize) -> usize {
        // Each row gets an independent hash by mixing in the row number.
        (mix64(key ^ (row as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) & self.width_mask)
            as usize
    }

    /// Increments the estimated count of `key` by one, aging the sketch when
    /// the window is exhausted.
    pub fn increment(&mut self, key: u64) {
        let mut incremented = false;
        for row in 0..ROWS {
            let idx = self.index(key, row);
            let c = &mut self.rows[row][idx];
            if *c < MAX_COUNT {
                *c += 1;
                incremented = true;
            }
        }
        if incremented {
            self.additions += 1;
            if self.additions >= self.reset_at {
                self.halve();
            }
        }
    }

    /// Estimated count of `key` (an overestimate with bounded error).
    pub fn estimate(&self, key: u64) -> u32 {
        let mut min = MAX_COUNT;
        for row in 0..ROWS {
            let idx = self.index(key, row);
            min = min.min(self.rows[row][idx]);
        }
        u32::from(min)
    }

    /// Halves every counter — the TinyLFU reset that approximates a sliding
    /// window.
    pub fn halve(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.additions /= 2;
    }

    /// Total increments since the last halving.
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

/// TinyLFU frequency filter: doorkeeper Bloom filter in front of a count-min
/// sketch, with a shared aging window.
#[derive(Debug, Clone)]
pub struct Doorkeeper {
    door: BloomFilter,
    sketch: CountMinSketch,
    window: u64,
    additions: u64,
}

impl Doorkeeper {
    /// Creates a filter sized for `capacity` cached objects; the structure
    /// resets every `16 * capacity` accesses (a common TinyLFU setting).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(16);
        Doorkeeper {
            door: BloomFilter::new(cap, 0.01),
            sketch: CountMinSketch::new(cap),
            window: (cap as u64) * 16,
            additions: 0,
        }
    }

    /// Records an access to `key`.
    pub fn record(&mut self, key: u64) {
        if !self.door.contains(key) {
            self.door.insert(key);
        } else {
            self.sketch.increment(key);
        }
        self.additions += 1;
        if self.additions >= self.window {
            self.door.clear();
            self.sketch.halve();
            self.additions = 0;
        }
    }

    /// Estimated access frequency of `key` inside the current window.
    pub fn estimate(&self, key: u64) -> u32 {
        let base = if self.door.contains(key) { 1 } else { 0 };
        base + self.sketch.estimate(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_never_underestimates_within_window() {
        let mut s = CountMinSketch::new(1024);
        for _ in 0..5 {
            s.increment(42);
        }
        assert!(s.estimate(42) >= 5);
    }

    #[test]
    fn counters_saturate() {
        let mut s = CountMinSketch::new(64);
        for _ in 0..100 {
            s.increment(7);
        }
        assert!(s.estimate(7) <= u32::from(MAX_COUNT));
    }

    #[test]
    fn halving_halves() {
        let mut s = CountMinSketch::new(1024);
        for _ in 0..8 {
            s.increment(1);
        }
        let before = s.estimate(1);
        s.halve();
        assert_eq!(s.estimate(1), before / 2);
    }

    #[test]
    fn unrelated_keys_mostly_zero() {
        let mut s = CountMinSketch::new(4096);
        for i in 0..100u64 {
            s.increment(i);
        }
        let nonzero = (1000u64..2000).filter(|&k| s.estimate(k) > 0).count();
        assert!(nonzero < 100, "too much sketch noise: {nonzero}");
    }

    #[test]
    fn popular_beats_unpopular() {
        let mut s = CountMinSketch::new(4096);
        for _ in 0..10 {
            s.increment(1);
        }
        s.increment(2);
        assert!(s.estimate(1) > s.estimate(2));
    }

    #[test]
    fn doorkeeper_counts_first_access_once() {
        let mut d = Doorkeeper::new(1024);
        d.record(9);
        assert_eq!(d.estimate(9), 1);
        d.record(9);
        assert!(d.estimate(9) >= 2);
    }

    #[test]
    fn doorkeeper_resets_after_window() {
        let mut d = Doorkeeper::new(16);
        for _ in 0..10 {
            d.record(5);
        }
        let before = d.estimate(5);
        assert!(before >= 5);
        // Flood with distinct keys to trigger the periodic reset.
        for i in 0..(16 * 16 + 1) {
            d.record(1000 + i);
        }
        assert!(d.estimate(5) < before);
    }

    #[test]
    fn sketch_additions_tracking() {
        let mut s = CountMinSketch::new(64);
        s.increment(1);
        s.increment(2);
        assert_eq!(s.additions(), 2);
    }
}

//! Software prefetch hints for the dense replay path.
//!
//! The dense simulator knows every future slot index up front, so it can
//! warm per-slot state a dozen requests ahead. A plain (`black_box`) load
//! works but *retires*: when it misses DRAM it clogs the reorder buffer and
//! stalls the core almost as badly as the demand miss it was meant to hide.
//! The hardware prefetch instruction (`prefetcht0` on x86-64) is a pure
//! hint — it never faults, writes nothing, and retires immediately — which
//! is exactly the contract needed here.

/// Prefetches the cache line holding `slice[idx]` into all cache levels.
///
/// A no-op when `idx` is out of bounds or on architectures without a
/// prefetch intrinsic. Never faults and has no observable effect on program
/// state — it only warms the cache.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    if let Some(r) = slice.get(idx) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `r` is a live shared reference into `slice`, so the
        // derived pointer is valid and dereferenceable. PREFETCHT0 is an
        // architectural hint: it performs no memory access visible to the
        // program, cannot fault, and has no side effects beyond cache
        // warming, so no aliasing or validity obligations extend past the
        // pointer being valid — which `r` guarantees.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                std::ptr::from_ref(r).cast::<i8>(),
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_observably_inert() {
        let v: Vec<u64> = (0..1024).collect();
        prefetch_read(&v, 0);
        prefetch_read(&v, 1023);
        prefetch_read(&v, 1024); // out of bounds: silently ignored
        prefetch_read(&v, usize::MAX);
        assert_eq!(v[1023], 1023);
        let empty: [u8; 0] = [];
        prefetch_read(&empty, 0);
    }
}

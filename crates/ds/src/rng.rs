//! Small deterministic RNG and hashing helpers.
//!
//! Policies that need randomness (LHD's eviction sampling, probabilistic
//! admission) use [`SplitMix64`] so simulation runs are reproducible from a
//! single `u64` seed without pulling `rand` into every crate.

/// SplitMix64 pseudo-random generator (Steele et al., "Fast Splittable
/// Pseudorandom Number Generators").
///
/// Passes BigCrush when used as a stream; more than adequate for eviction
/// sampling and synthetic workload shuffling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds produce independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection-free mapping; the modulo bias is
        // below 2^-64 * bound which is negligible for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Mixes a 64-bit value into a well-distributed hash (the SplitMix64
/// finalizer). Used for object-id hashing in sketches and ghost tables.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast `Hasher` for 64-bit object ids, based on the SplitMix64 finalizer.
///
/// `HashMap<ObjId, _, IdHashBuilder>` avoids SipHash overhead on the
/// simulator's hot path while still spreading sequential ids well (see
/// [`mix64`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher {
    state: u64,
}

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rare): fold bytes in 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix64(self.state ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdHashBuilder = std::hash::BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by object ids, using the fast [`crate::fx::FxHasher`]
/// (one multiply per key vs two for [`IdHasher`]; the aliases moved to Fx in
/// the dense-ID fast-path PR — simulation results don't depend on hasher
/// choice, only replay speed does).
pub type IdMap<V> = std::collections::HashMap<u64, V, crate::fx::FxBuildHasher>;

/// A `HashSet` of object ids using the fast [`crate::fx::FxHasher`].
pub type IdSet = std::collections::HashSet<u64, crate::fx::FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn id_map_basic_ops() {
        let mut m: IdMap<u32> = IdMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&7), Some(&14));
        m.remove(&7);
        assert!(!m.contains_key(&7));
    }

    #[test]
    fn id_hasher_differs_across_keys() {
        use std::hash::{BuildHasher, Hash, Hasher};
        let b = IdHashBuilder::default();
        let hash = |v: u64| {
            let mut h = b.build_hasher();
            v.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash(1), hash(2));
        assert_ne!(hash(0), hash(u64::MAX));
    }

    #[test]
    fn mix64_spreads_sequential_ids() {
        // Sequential inputs must not collide in the low bits (bucket index).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1000u64 {
            buckets.insert(mix64(i) & 0xFFF);
        }
        assert!(
            buckets.len() > 800,
            "got {} distinct buckets",
            buckets.len()
        );
    }
}

//! Streaming histograms with percentile queries.
//!
//! The evaluation aggregates thousands of per-trace results into percentile
//! summaries (Fig. 6, Fig. 11) and per-eviction distributions (Fig. 4
//! frequency-at-eviction, eviction ages). [`Histogram`] covers wide-range
//! integer data with logarithmic buckets; [`summarize`] computes the exact
//! percentiles the figures report from a list of floats.

/// A log2-bucketed histogram over `u64` samples.
///
/// Bucket `i` holds values in `[2^(i-1), 2^i)` (bucket 0 holds the value 0),
/// giving ≤ 2× relative error on percentile queries over any range — plenty
/// for eviction-age distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Approximate value at quantile `q ∈ [0, 1]` (`None` when empty).
    ///
    /// Returns the geometric midpoint of the bucket containing the quantile,
    /// clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let rep = if i == 0 {
                    0
                } else {
                    // Geometric middle of [2^(i-1), 2^i).
                    let lo = 1u64 << (i - 1);
                    lo + lo / 2
                };
                return Some(rep.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fraction of samples equal to zero. Used for the one-hit-wonder share
    /// of the frequency-at-eviction distribution (Fig. 4).
    pub fn zero_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[0] as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile summary of a set of float observations (one per trace), as
/// used in Fig. 6 and Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// 10th percentile.
    pub p10: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

/// Exact percentile of a sorted slice using linear interpolation
/// (the same convention as numpy's default).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes the percentile [`Summary`] of `values` (need not be sorted).
///
/// # Panics
///
/// Panics when `values` is empty.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "summarize of empty slice");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    Summary {
        p10: percentile_sorted(&v, 0.10),
        p25: percentile_sorted(&v, 0.25),
        p50: percentile_sorted(&v, 0.50),
        p75: percentile_sorted(&v, 0.75),
        p90: percentile_sorted(&v, 0.90),
        mean,
        n: v.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(4));
    }

    #[test]
    fn zero_fraction_tracks_zeros() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        h.record(9);
        assert!((h.zero_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q1 = h.quantile(0.1).unwrap();
        let q5 = h.quantile(0.5).unwrap();
        let q9 = h.quantile(0.9).unwrap();
        assert!(q1 <= q5 && q5 <= q9);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    /// Regression pin (PR 4 audit, see TESTING.md): an empty histogram's
    /// min/max must be `None`, never the internal `u64::MAX`/`0` sentinels
    /// — an exporter trusting raw sentinel values would print
    /// 18446744073709551615 as a "minimum".
    #[test]
    fn empty_min_max_never_leak_sentinels() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        // One sample flips every accessor to Some of that sample.
        let mut h = h;
        h.record(7);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.quantile(0.5), Some(7));
    }

    /// Merging with an empty histogram must not poison min/max with the
    /// empty side's sentinels, in either direction.
    #[test]
    fn merge_with_empty_keeps_min_max_honest() {
        let empty = Histogram::new();
        let mut a = Histogram::new();
        a.record(10);
        a.record(20);
        a.merge(&empty);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(20));
        let mut b = Histogram::new();
        b.merge(&a);
        assert_eq!(b.min(), Some(10));
        assert_eq!(b.max(), Some(20));
        let mut c = Histogram::new();
        c.merge(&empty);
        assert_eq!(c.min(), None, "empty ∪ empty stays empty");
        assert_eq!(c.max(), None);
    }

    #[test]
    fn quantile_within_factor_two() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(100);
        }
        let q = h.quantile(0.5).unwrap() as f64;
        assert!(q >= 50.0 && q <= 200.0, "q = {q}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn percentile_exact_values() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((percentile_sorted(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 1.0) - 5.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 0.5) - 3.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fields_ordered() {
        let vals: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = summarize(&vals);
        assert!(s.p10 <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75 && s.p75 <= s.p90);
        assert!((s.mean - 50.0).abs() < 1e-9);
        assert_eq!(s.n, 101);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_panics() {
        summarize(&[]);
    }

    #[test]
    fn singleton_percentile() {
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }
}

//! The paper's bucketed fingerprint ghost table (§4.2).
//!
//! S3-FIFO's ghost queue G stores object *identities* (no data) of objects
//! recently evicted from the small queue. §4.2 describes the production
//! implementation: a bucket-based hash table whose entries hold a 4-byte
//! fingerprint and an eviction timestamp measured in the number of objects
//! inserted into G. An entry is logically part of G only while fewer than
//! `capacity` insertions have happened since it was added; expired entries
//! are *not* eagerly removed — they are overwritten lazily when their slot is
//! needed (hash collision), exactly as the paper specifies.
//!
//! The simulation policies in `s3fifo` use an exact id-based ghost for
//! bit-exact metrics; this table is the compact production variant and is
//! exercised by `s3fifo::cache::S3FifoCache` and the concurrent prototype.

use crate::rng::mix64;

/// Entries per bucket. Eight 12-byte entries keep a bucket within two cache
/// lines.
const ASSOC: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// 4-byte fingerprint of the object id; 0 is reserved for "empty"
    /// (fingerprints hash to 1..=u32::MAX).
    fingerprint: u32,
    /// Number of ghost insertions at the time this entry was written
    /// (1-based; 0 means the slot was never used).
    seq: u64,
}

/// Fixed-size fingerprint ghost table with FIFO-window expiry.
///
/// # Examples
///
/// ```
/// use cache_ds::GhostTable;
///
/// let mut ghost = GhostTable::new(2);
/// ghost.insert(1);
/// ghost.insert(2);
/// ghost.insert(3); // id 1 is now outside the 2-insertion window
/// assert!(!ghost.contains(1));
/// assert!(ghost.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct GhostTable {
    buckets: Vec<[Entry; ASSOC]>,
    bucket_mask: u64,
    /// Window size: an entry is alive while `insertions - seq < capacity`.
    capacity: u64,
    /// Total insertions so far (monotonic).
    insertions: u64,
}

impl GhostTable {
    /// Creates a table that remembers the last `capacity` ghost insertions.
    ///
    /// The bucket array is sized with ~25 % headroom so that live entries
    /// are rarely displaced by collisions before they expire.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let slots = (cap + cap / 4).max(ASSOC);
        let nbuckets = (slots / ASSOC + 1).next_power_of_two();
        GhostTable {
            buckets: vec![[Entry::default(); ASSOC]; nbuckets],
            bucket_mask: (nbuckets - 1) as u64,
            capacity: cap as u64,
            insertions: 0,
        }
    }

    #[inline]
    fn locate(&self, id: u64) -> (usize, u32) {
        let h = mix64(id);
        let bucket = (h & self.bucket_mask) as usize;
        // Upper 32 bits as fingerprint, avoiding the reserved 0 value.
        let fp = ((h >> 32) as u32).max(1);
        (bucket, fp)
    }

    #[inline]
    fn alive(&self, e: &Entry) -> bool {
        // Wrapping distance: `insertions` is monotonic modulo 2^64 (0 is
        // skipped as the never-used sentinel), so the subtraction stays
        // meaningful across a counter wrap instead of underflowing.
        e.seq != 0 && self.insertions.wrapping_sub(e.seq) < self.capacity
    }

    /// Records that `id` was evicted (inserted into the ghost queue).
    ///
    /// If `id` is already present its timestamp is refreshed, which matches a
    /// FIFO ghost where the entry is re-enqueued.
    pub fn insert(&mut self, id: u64) {
        let (bucket, fp) = self.locate(id);
        // Monotonic modulo 2^64; 0 stays reserved for "never used", so the
        // counter skips it when it wraps. (Within one wrap the distance in
        // `alive` is exact; across a wrap it is off by the skipped 0 — one
        // count per 2^64 insertions, which no workload will notice.)
        self.insertions = self.insertions.wrapping_add(1);
        if self.insertions == 0 {
            self.insertions = 1;
        }
        let now = self.insertions;
        let bucket = &mut self.buckets[bucket];
        // Prefer an existing entry for the same fingerprint, then any dead
        // slot, otherwise displace the oldest entry (lazy expiry).
        let mut victim = 0usize;
        let mut victim_seq = u64::MAX;
        for (i, e) in bucket.iter_mut().enumerate() {
            if e.fingerprint == fp {
                e.seq = now;
                return;
            }
            if e.seq < victim_seq {
                victim_seq = e.seq;
                victim = i;
            }
        }
        bucket[victim] = Entry {
            fingerprint: fp,
            seq: now,
        };
    }

    /// Returns true when `id` is still within the ghost window.
    pub fn contains(&self, id: u64) -> bool {
        let (bucket, fp) = self.locate(id);
        self.buckets[bucket]
            .iter()
            .any(|e| e.fingerprint == fp && self.alive(e))
    }

    /// Removes `id` (used when an object hits in the ghost queue and is
    /// resurrected into the main queue). Returns true when it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let (bucket, fp) = self.locate(id);
        let (insertions, capacity) = (self.insertions, self.capacity);
        // Same liveness rule as `alive` (inlined: that helper borrows
        // `self`, which is mutably borrowed here).
        let alive = |e: &Entry| e.seq != 0 && insertions.wrapping_sub(e.seq) < capacity;
        for e in &mut self.buckets[bucket] {
            if e.fingerprint == fp && alive(e) {
                *e = Entry::default();
                return true;
            }
        }
        false
    }

    /// Total ghost insertions so far.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Window size in entries.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Counts live entries by scanning (test/diagnostic use only; O(slots)).
    pub fn live_entries(&self) -> usize {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .filter(|e| self.alive(e))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_then_contains() {
        let mut g = GhostTable::new(100);
        g.insert(42);
        assert!(g.contains(42));
        assert!(!g.contains(43));
    }

    #[test]
    fn entries_expire_after_window() {
        let mut g = GhostTable::new(10);
        g.insert(1);
        for i in 100..110 {
            g.insert(i);
        }
        // 10 insertions have happened since id 1; it is out of the window.
        assert!(!g.contains(1));
    }

    #[test]
    fn entry_alive_just_inside_window() {
        let mut g = GhostTable::new(10);
        g.insert(1);
        for i in 100..109 {
            g.insert(i);
        }
        // 9 insertions since id 1: still alive (window is 10).
        assert!(g.contains(1));
    }

    #[test]
    fn reinsert_refreshes_timestamp() {
        let mut g = GhostTable::new(10);
        g.insert(1);
        for i in 100..105 {
            g.insert(i);
        }
        g.insert(1); // refresh
        for i in 200..205 {
            g.insert(i);
        }
        assert!(g.contains(1));
    }

    #[test]
    fn remove_deletes_entry() {
        let mut g = GhostTable::new(100);
        g.insert(7);
        assert!(g.remove(7));
        assert!(!g.contains(7));
        assert!(!g.remove(7));
    }

    #[test]
    fn live_entries_bounded_by_window() {
        let mut g = GhostTable::new(64);
        for i in 0..10_000u64 {
            g.insert(i);
        }
        // At most `capacity` entries can be alive; collisions may displace
        // some early.
        assert!(g.live_entries() <= 64);
        assert!(g.live_entries() > 32, "too many live entries displaced");
    }

    #[test]
    fn most_recent_window_is_retained() {
        let mut g = GhostTable::new(1000);
        for i in 0..5000u64 {
            g.insert(i);
        }
        // The freshest 1000 ids should mostly still be found (a few may be
        // lost to bucket displacement).
        let found = (4000u64..5000).filter(|&i| g.contains(i)).count();
        assert!(found > 900, "only {found} of the freshest 1000 retained");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// An id whose last insertion lies further than `capacity`
        /// insertions in the past must read as expired (fingerprint
        /// collisions could in principle violate this, but with ≤ 512
        /// distinct 64-bit ids the probability is ~2^-40 per case).
        #[test]
        fn expiry_is_never_late(
            ids in proptest::collection::vec(0u64..512, 1..400),
            cap in 1usize..64,
        ) {
            let mut g = GhostTable::new(cap);
            let mut last_insert: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for &id in &ids {
                g.insert(id);
                last_insert.insert(id, g.insertions());
            }
            let now = g.insertions();
            for (&id, &seq) in &last_insert {
                if now - seq >= cap as u64 {
                    prop_assert!(!g.contains(id), "id {id} outlived the window");
                }
            }
        }

        /// The most recent insertion is always alive.
        #[test]
        fn freshest_entry_alive(ids in proptest::collection::vec(0u64..1000, 1..300)) {
            let mut g = GhostTable::new(32);
            for &id in &ids {
                g.insert(id);
                prop_assert!(g.contains(id), "freshly inserted {id} missing");
            }
        }
    }

    #[test]
    fn tiny_capacity_works() {
        let mut g = GhostTable::new(1);
        g.insert(1);
        assert!(g.contains(1));
        g.insert(2);
        assert!(!g.contains(1));
        assert!(g.contains(2));
    }

    /// The exact window boundary for several capacities: an entry survives
    /// `capacity - 1` subsequent insertions and dies on the `capacity`-th.
    #[test]
    fn boundary_at_exact_capacity() {
        for cap in [1usize, 2, 3, 8, 17] {
            let mut g = GhostTable::new(cap);
            g.insert(1);
            for i in 0..cap as u64 - 1 {
                g.insert(1000 + i);
                assert!(
                    g.contains(1),
                    "cap {cap}: id 1 expired after only {} subsequent inserts",
                    i + 1
                );
            }
            g.insert(2000);
            assert!(!g.contains(1), "cap {cap}: id 1 outlived the window");
        }
    }

    #[test]
    fn reinsert_after_remove_is_fresh() {
        let mut g = GhostTable::new(10);
        g.insert(5);
        assert!(g.remove(5));
        assert!(!g.contains(5));
        // Re-inserting after a remove must behave like a brand-new entry.
        g.insert(5);
        assert!(g.contains(5));
        for i in 100..109 {
            g.insert(i);
        }
        assert!(g.contains(5), "re-inserted entry expired early");
        g.insert(109);
        assert!(!g.contains(5));
        assert!(g.remove(5) == false, "expired entry reported removable");
    }

    /// Counter wraparound: the insertion counter is monotonic modulo 2^64
    /// with 0 reserved. Crossing the wrap must not panic (the old code's
    /// `insertions - seq` underflowed in debug builds) and must keep the
    /// window behaving.
    #[test]
    fn insertion_counter_wraparound() {
        let mut g = GhostTable::new(8);
        g.insertions = u64::MAX - 3;
        for id in 0..12u64 {
            g.insert(id);
            assert!(g.contains(id), "freshly inserted {id} missing near wrap");
        }
        // The counter skipped 0 and kept going.
        assert!(g.insertions() < 16, "counter did not wrap: {}", g.insertions());
        assert_ne!(g.insertions(), 0);
        // Entries inserted 8+ insertions ago (pre-wrap) are expired; the
        // freshest 8 are within the window.
        assert!(!g.contains(0));
        assert!(!g.contains(1));
        for id in 5..12u64 {
            assert!(g.contains(id), "id {id} should be inside the window");
        }
        // contains/remove on pre-wrap survivors and expired ids never panic.
        assert!(!g.remove(0));
        assert!(g.remove(11));
    }
}

//! Dense-id interning and intrusive array queues — the libCacheSim layout.
//!
//! The simulator replays the same trace through many policies. Paying a hash
//! lookup per request per policy is the dominant cost of a sweep, so the
//! fast path interns each trace's 64-bit object ids into contiguous `u32`
//! *slots* once ([`DenseIds`]), and dense policies store per-object state in
//! plain `Vec`s indexed by slot. Queue membership uses intrusive prev/next
//! links stored in one [`DenseLinks`] array per policy ([`DenseQueue`] is a
//! head/tail/len view over it), so a hit or an eviction touches a handful of
//! cache lines and zero hash buckets.
//!
//! Orientation matches [`crate::dlist::DList`]: head = newest insert, `next`
//! links walk head → tail, `prev` links walk tail → head, and FIFO eviction
//! pops the tail.

use crate::fx::FxBuildHasher;
use std::collections::HashMap;

/// Sentinel for "no slot" / "no neighbour".
pub const NIL: u32 = u32::MAX;

/// A one-time interning of 64-bit object ids to contiguous `u32` slots.
///
/// Built once per trace and shared read-only (behind an `Arc`) by every
/// simulation job replaying that trace. Slots are assigned in first-
/// appearance order, so `len()` equals the trace footprint.
#[derive(Debug, Default)]
pub struct DenseIds {
    slot_of: HashMap<u64, u32, FxBuildHasher>,
    orig: Vec<u64>,
}

impl DenseIds {
    /// Interns `ids` in order, returning the table plus the per-occurrence
    /// slot sequence (same length as the input).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` distinct ids appear (a trace with
    /// four billion distinct objects does not fit the dense fast path).
    pub fn intern(ids: impl Iterator<Item = u64>) -> (Self, Vec<u32>) {
        let (lo, _) = ids.size_hint();
        let mut table = DenseIds {
            slot_of: HashMap::with_capacity_and_hasher(lo / 4 + 16, FxBuildHasher::default()),
            orig: Vec::new(),
        };
        let mut slots = Vec::with_capacity(lo);
        for id in ids {
            let next = table.orig.len() as u32;
            let slot = *table.slot_of.entry(id).or_insert(next);
            if slot == next {
                assert!(next < NIL, "dense-id domain exhausted");
                table.orig.push(id);
            }
            slots.push(slot);
        }
        (table, slots)
    }

    /// The slot assigned to `id`, if `id` appeared during interning.
    #[inline]
    pub fn slot_of(&self, id: u64) -> Option<u32> {
        self.slot_of.get(&id).copied()
    }

    /// The original id interned at `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot >= len()`.
    #[inline]
    pub fn orig(&self, slot: u32) -> u64 {
        self.orig[slot as usize]
    }

    /// Number of distinct ids (the trace footprint).
    #[inline]
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// True when no ids were interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }
}

/// Per-slot intrusive prev/next links shared by all queues of one policy.
///
/// A slot belongs to at most one queue at a time (policies move objects
/// *between* queues, never into two at once), so a single pair of link
/// arrays serves every queue of a policy.
#[derive(Debug, Clone)]
pub struct DenseLinks {
    prev: Vec<u32>,
    next: Vec<u32>,
}

impl DenseLinks {
    /// Links for a domain of `n` slots, all initially detached.
    pub fn new(n: usize) -> Self {
        DenseLinks {
            prev: vec![NIL; n],
            next: vec![NIL; n],
        }
    }
}

/// Head/tail/len view of one queue whose nodes live in a [`DenseLinks`].
///
/// All operations are O(1). Callers must uphold the membership contract:
/// `push_front` only detached slots, `remove`/`move_to_front` only slots
/// currently in *this* queue (policies track membership in their own state
/// arrays).
#[derive(Debug, Clone, Copy)]
pub struct DenseQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for DenseQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl DenseQueue {
    /// An empty queue.
    pub const fn new() -> Self {
        DenseQueue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of queued slots.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no slots are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head (newest) slot, or `None` when empty.
    #[inline]
    pub fn head(&self) -> Option<u32> {
        if self.head == NIL {
            None
        } else {
            Some(self.head)
        }
    }

    /// The tail (oldest) slot, or `None` when empty.
    #[inline]
    pub fn tail(&self) -> Option<u32> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }

    /// The neighbour of `s` toward the head, or `None` when `s` is the head.
    #[inline]
    pub fn toward_head(&self, l: &DenseLinks, s: u32) -> Option<u32> {
        let p = l.prev[s as usize];
        if p == NIL {
            None
        } else {
            Some(p)
        }
    }

    /// Inserts detached slot `s` at the head.
    #[inline]
    pub fn push_front(&mut self, l: &mut DenseLinks, s: u32) {
        debug_assert!(l.prev[s as usize] == NIL && l.next[s as usize] == NIL);
        let old_head = self.head;
        l.next[s as usize] = old_head;
        l.prev[s as usize] = NIL;
        if old_head != NIL {
            l.prev[old_head as usize] = s;
        } else {
            self.tail = s;
        }
        self.head = s;
        self.len += 1;
    }

    #[inline]
    fn unlink(&mut self, l: &mut DenseLinks, s: u32) {
        let (p, n) = (l.prev[s as usize], l.next[s as usize]);
        if p != NIL {
            l.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            l.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    /// Removes and returns the tail slot.
    #[inline]
    pub fn pop_back(&mut self, l: &mut DenseLinks) -> Option<u32> {
        if self.tail == NIL {
            return None;
        }
        let s = self.tail;
        self.unlink(l, s);
        l.prev[s as usize] = NIL;
        l.next[s as usize] = NIL;
        self.len -= 1;
        Some(s)
    }

    /// Detaches slot `s`, which must be in this queue.
    #[inline]
    pub fn remove(&mut self, l: &mut DenseLinks, s: u32) {
        self.unlink(l, s);
        l.prev[s as usize] = NIL;
        l.next[s as usize] = NIL;
        self.len -= 1;
    }

    /// Moves slot `s`, which must be in this queue, to the head.
    #[inline]
    pub fn move_to_front(&mut self, l: &mut DenseLinks, s: u32) {
        if self.head == s {
            return;
        }
        self.unlink(l, s);
        let old_head = self.head;
        l.prev[s as usize] = NIL;
        l.next[s as usize] = old_head;
        if old_head != NIL {
            l.prev[old_head as usize] = s;
        } else {
            self.tail = s;
        }
        self.head = s;
    }

    /// Iterates slots head → tail (diagnostics and tests; not a hot path).
    pub fn iter<'a>(&'a self, l: &'a DenseLinks) -> impl Iterator<Item = u32> + 'a {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = cur;
            cur = l.next[s as usize];
            Some(s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_first_appearance_order() {
        let ids = [10u64, 20, 10, 30, 20, 10];
        let (t, slots) = DenseIds::intern(ids.iter().copied());
        assert_eq!(slots, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.orig(0), 10);
        assert_eq!(t.orig(2), 30);
        assert_eq!(t.slot_of(20), Some(1));
        assert_eq!(t.slot_of(999), None);
    }

    #[test]
    fn empty_intern() {
        let (t, slots) = DenseIds::intern(std::iter::empty());
        assert!(t.is_empty());
        assert!(slots.is_empty());
    }

    #[test]
    fn queue_fifo_order_matches_dlist_orientation() {
        let mut l = DenseLinks::new(8);
        let mut q = DenseQueue::new();
        q.push_front(&mut l, 0);
        q.push_front(&mut l, 1);
        q.push_front(&mut l, 2);
        // Head-insert, tail-evict: FIFO order.
        assert_eq!(q.pop_back(&mut l), Some(0));
        assert_eq!(q.pop_back(&mut l), Some(1));
        assert_eq!(q.pop_back(&mut l), Some(2));
        assert_eq!(q.pop_back(&mut l), None);
        assert!(q.is_empty());
    }

    #[test]
    fn move_to_front_promotes() {
        let mut l = DenseLinks::new(8);
        let mut q = DenseQueue::new();
        for s in [1u32, 2, 3] {
            q.push_front(&mut l, s);
        }
        q.move_to_front(&mut l, 2); // list was 3,2,1 → 2,3,1
        let v: Vec<u32> = q.iter(&l).collect();
        assert_eq!(v, vec![2, 3, 1]);
        assert_eq!(q.pop_back(&mut l), Some(1));
    }

    #[test]
    fn remove_middle_and_reuse() {
        let mut l = DenseLinks::new(8);
        let mut q = DenseQueue::new();
        for s in [1u32, 2, 3] {
            q.push_front(&mut l, s);
        }
        q.remove(&mut l, 2);
        assert_eq!(q.iter(&l).collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(q.len(), 2);
        // A removed slot is detached and can be pushed again.
        q.push_front(&mut l, 2);
        assert_eq!(q.iter(&l).collect::<Vec<_>>(), vec![2, 3, 1]);
    }

    #[test]
    fn toward_head_walks_and_stops() {
        let mut l = DenseLinks::new(8);
        let mut q = DenseQueue::new();
        for s in [1u32, 2, 3] {
            q.push_front(&mut l, s); // 3,2,1
        }
        assert_eq!(q.toward_head(&l, 1), Some(2));
        assert_eq!(q.toward_head(&l, 2), Some(3));
        assert_eq!(q.toward_head(&l, 3), None);
    }

    #[test]
    fn two_queues_share_one_links_array() {
        let mut l = DenseLinks::new(8);
        let mut small = DenseQueue::new();
        let mut main = DenseQueue::new();
        small.push_front(&mut l, 0);
        small.push_front(&mut l, 1);
        main.push_front(&mut l, 2);
        // Migrate 0 from small to main (S3-FIFO promotion).
        small.remove(&mut l, 0);
        main.push_front(&mut l, 0);
        assert_eq!(small.iter(&l).collect::<Vec<_>>(), vec![1]);
        assert_eq!(main.iter(&l).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn differential_against_dlist() {
        // Random interleaving of push/pop/promote/remove must match DList.
        use crate::dlist::DList;
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::new(0xD15E);
        let n = 64usize;
        let mut l = DenseLinks::new(n);
        let mut q = DenseQueue::new();
        let mut dl: DList<u32> = DList::new();
        let mut handles = vec![None; n];
        let mut queued = vec![false; n];
        for _ in 0..10_000 {
            let slot = rng.next_below(n as u64) as u32;
            match rng.next_below(4) {
                0 => {
                    if !queued[slot as usize] {
                        q.push_front(&mut l, slot);
                        handles[slot as usize] = Some(dl.push_front(slot));
                        queued[slot as usize] = true;
                    }
                }
                1 => {
                    let a = q.pop_back(&mut l);
                    let b = dl.pop_back();
                    assert_eq!(a, b);
                    if let Some(s) = a {
                        queued[s as usize] = false;
                    }
                }
                2 => {
                    if queued[slot as usize] {
                        q.move_to_front(&mut l, slot);
                        dl.move_to_front(handles[slot as usize].unwrap());
                    }
                }
                _ => {
                    if queued[slot as usize] {
                        q.remove(&mut l, slot);
                        dl.remove(handles[slot as usize].unwrap());
                        queued[slot as usize] = false;
                    }
                }
            }
            assert_eq!(q.len() as usize, dl.len());
        }
        let got: Vec<u32> = q.iter(&l).collect();
        let want: Vec<u32> = dl.iter().copied().collect();
        assert_eq!(got, want);
    }
}

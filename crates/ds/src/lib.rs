//! Core data structures for the S3-FIFO reproduction.
//!
//! This crate provides the building blocks shared by the eviction policies,
//! the simulator, and the concurrent cache prototype:
//!
//! - [`dlist::DList`] — a slab-backed doubly-linked list with generation-
//!   checked handles, used by every LRU-family policy.
//! - [`sketch::CountMinSketch`] and [`sketch::Doorkeeper`] — the frequency
//!   estimator TinyLFU uses.
//! - [`bloom::BloomFilter`] — used by the B-LRU baseline and flash admission.
//! - [`ghost::GhostTable`] — the paper's bucketed fingerprint ghost queue
//!   (§4.2): fingerprints plus insertion sequence numbers with lazy expiry.
//! - [`ring::MpmcRing`] — a bounded lock-free MPMC queue (Vyukov sequence
//!   counters).
//! - [`prefetch::prefetch_read`] — bounds-checked software prefetch hint for
//!   the dense replay loops. Together with the ring, the only `unsafe` code
//!   in the workspace.
//! - [`rng::SplitMix64`] — a tiny deterministic RNG for sampled policies.
//! - [`hist::Histogram`] — streaming histogram with percentile queries.
//! - [`fx::FxHasher`] — FxHash-style multiplicative hasher backing the hot
//!   [`rng::IdMap`]/[`rng::IdSet`] aliases.
//! - [`dense::DenseIds`] / [`dense::DenseQueue`] — per-trace id interning and
//!   intrusive array queues for the dense-ID simulation fast path.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bloom;
pub mod dense;
pub mod dlist;
pub mod fx;
pub mod ghost;
pub mod hist;
pub mod prefetch;
pub mod ring;
pub mod rng;
pub mod sketch;

pub use bloom::BloomFilter;
pub use dense::{DenseIds, DenseLinks, DenseQueue, NIL};
pub use dlist::{DList, Handle};
pub use fx::{FxBuildHasher, FxHasher, FxMap, FxSet};
pub use ghost::GhostTable;
pub use hist::Histogram;
pub use prefetch::prefetch_read;
pub use ring::MpmcRing;
pub use rng::{IdHashBuilder, IdHasher, IdMap, IdSet, SplitMix64};
pub use sketch::{CountMinSketch, Doorkeeper};

//! Core data structures for the S3-FIFO reproduction.
//!
//! This crate provides the building blocks shared by the eviction policies,
//! the simulator, and the concurrent cache prototype:
//!
//! - [`dlist::DList`] — a slab-backed doubly-linked list with generation-
//!   checked handles, used by every LRU-family policy.
//! - [`sketch::CountMinSketch`] and [`sketch::Doorkeeper`] — the frequency
//!   estimator TinyLFU uses.
//! - [`bloom::BloomFilter`] — used by the B-LRU baseline and flash admission.
//! - [`ghost::GhostTable`] — the paper's bucketed fingerprint ghost queue
//!   (§4.2): fingerprints plus insertion sequence numbers with lazy expiry.
//! - [`ring::MpmcRing`] — a bounded lock-free MPMC queue (Vyukov sequence
//!   counters); the only `unsafe` code in the workspace.
//! - [`rng::SplitMix64`] — a tiny deterministic RNG for sampled policies.
//! - [`hist::Histogram`] — streaming histogram with percentile queries.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bloom;
pub mod dlist;
pub mod ghost;
pub mod hist;
pub mod ring;
pub mod rng;
pub mod sketch;

pub use bloom::BloomFilter;
pub use dlist::{DList, Handle};
pub use ghost::GhostTable;
pub use hist::Histogram;
pub use ring::MpmcRing;
pub use rng::{IdHashBuilder, IdHasher, IdMap, IdSet, SplitMix64};
pub use sketch::{CountMinSketch, Doorkeeper};

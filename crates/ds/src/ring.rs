//! A bounded lock-free multi-producer multi-consumer FIFO ring.
//!
//! §4.2 of the paper argues for ring-buffer FIFO queues: eviction only bumps
//! a tail pointer and insertion a head pointer, both implementable with
//! atomics and no locks. This module implements Dmitry Vyukov's bounded MPMC
//! queue, in which every slot carries a sequence number that encodes whether
//! the slot is ready for the next enqueue or dequeue. The concurrent S3-FIFO
//! prototype (`cache-concurrent`) builds its small and main queues from this
//! ring.
//!
//! This is the only `unsafe` code in the workspace.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads a value to a cache line to avoid false sharing between the enqueue
/// and dequeue cursors.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Sequence number protocol:
    /// - `seq == pos`      → slot is free for the enqueuer at `pos`;
    /// - `seq == pos + 1`  → slot holds data for the dequeuer at `pos`;
    /// - otherwise the slot is owned by another lap.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC FIFO queue (Vyukov).
///
/// # Examples
///
/// ```
/// use cache_ds::MpmcRing;
///
/// let q = MpmcRing::new(4);
/// q.push("a").unwrap();
/// q.push("b").unwrap();
/// assert_eq!(q.pop(), Some("a")); // FIFO order
/// ```
pub struct MpmcRing<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: `MpmcRing` hands each value from exactly one producer to exactly
// one consumer (the sequence protocol guarantees exclusive slot ownership),
// so sending the queue between threads only requires `T: Send`.
unsafe impl<T: Send> Send for MpmcRing<T> {}
// SAFETY: All shared-state mutation goes through atomics; slot payloads are
// accessed only by the unique owner for that (position, lap), so `&MpmcRing`
// can be shared across threads when `T: Send`.
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// Creates a ring with capacity `cap` rounded up to a power of two
    /// (minimum 2).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let buf: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            buf,
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Approximate number of queued items (exact when quiescent).
    // ORDERING: Relaxed — the result is advisory by contract; readers must
    // not infer payload visibility from it.
    pub fn len(&self) -> usize {
        let tail = self.dequeue_pos.0.load(Ordering::Relaxed);
        let head = self.enqueue_pos.0.load(Ordering::Relaxed);
        head.saturating_sub(tail)
    }

    /// True when the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue; returns `Err(val)` when the ring is full.
    // ORDERING: the Acquire `seq` load pairs with the dequeuer's Release
    // store, ordering our payload write after the previous lap's read; the
    // Release `seq` store publishes the payload to the dequeuer's Acquire
    // load. Cursor CASes/loads are Relaxed: they only arbitrate ownership,
    // the seq protocol carries all payload ordering. Verified exhaustively
    // by the loom-lite model (crates/lint/src/models/ring.rs).
    pub fn push(&self, val: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot is free for this position; try to claim it.
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: The CAS above made us the unique enqueuer
                        // for `pos`; no other thread reads or writes this
                        // slot's payload until we publish `seq = pos + 1`
                        // below, so the exclusive write is sound.
                        unsafe { (*slot.val.get()).write(val) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                // The slot still holds data from the previous lap: full.
                return Err(val);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; returns `None` when the ring is empty.
    // ORDERING: mirror image of `push` — Acquire `seq` load synchronizes
    // with the enqueuer's Release store (payload fully written before we
    // read it); our Release store hands the recycled slot to the enqueuer
    // one lap ahead. Cursor orderings Relaxed as in `push`.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                // Slot holds data for this position; try to claim it.
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: The CAS made us the unique dequeuer for
                        // `pos`, and the Acquire load of `seq == pos + 1`
                        // synchronizes with the enqueuer's Release store, so
                        // the payload is fully written and exclusively ours.
                        let val = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(val);
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = MpmcRing::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert!(q.push(99).is_err());
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let q: MpmcRing<u32> = MpmcRing::new(5);
        assert_eq!(q.capacity(), 8);
        let q: MpmcRing<u32> = MpmcRing::new(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraparound_many_laps() {
        let q = MpmcRing::new(4);
        for lap in 0..100 {
            for i in 0..4 {
                q.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn len_tracks() {
        let q = MpmcRing::new(8);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    // ORDERING: Relaxed — the drop counter is asserted only after the
    // queue is gone and all drops ran on this thread.
    #[test]
    fn drop_runs_destructors() {
        let counter = Arc::new(AtomicU64::new(0));
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            // ORDERING: Relaxed — monotonic count, read post-quiescence.
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q = MpmcRing::new(8);
            for _ in 0..5 {
                assert!(q.push(D(counter.clone())).is_ok());
            }
            q.pop(); // one dropped here
        }
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Single-threaded differential test against `VecDeque`.
        #[test]
        fn matches_vecdeque_model(ops in proptest::collection::vec(0u8..2, 0..300)) {
            let q: MpmcRing<u32> = MpmcRing::new(16);
            let mut model = std::collections::VecDeque::new();
            let mut counter = 0u32;
            for op in ops {
                if op == 0 {
                    let ok = q.push(counter).is_ok();
                    let model_ok = model.len() < q.capacity();
                    prop_assert_eq!(ok, model_ok);
                    if ok {
                        model.push_back(counter);
                    }
                    counter += 1;
                } else {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }

    // ORDERING: Relaxed counters throughout — thread joins order the
    // final quiescent asserts.
    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 20_000;
        let q = Arc::new(MpmcRing::new(1024));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let v = (p as u64) * PER_PRODUCER + i;
                    let mut item = v;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let q = q.clone();
            let sum = sum.clone();
            let count = count.clone();
            handles.push(std::thread::spawn(move || {
                let total = PRODUCERS as u64 * PER_PRODUCER;
                loop {
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    } else if count.load(Ordering::Relaxed) >= total {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = PRODUCERS as u64 * PER_PRODUCER;
        assert_eq!(count.load(Ordering::Relaxed), total);
        // Sum of 0..total since ids are a permutation of that range.
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }
}

//! A plain Bloom filter.
//!
//! Used by the B-LRU baseline (§5.2 "Common algorithms") — which only admits
//! an object into the cache on its *second* request — and as the probabilistic
//! flash-admission comparison point in `cache-flash`.

use crate::rng::mix64;

/// A fixed-size Bloom filter over `u64` keys using double hashing.
///
/// # Examples
///
/// ```
/// use cache_ds::BloomFilter;
///
/// let mut seen = BloomFilter::new(10_000, 0.01);
/// assert!(!seen.contains(42));
/// seen.insert(42);
/// assert!(seen.contains(42)); // no false negatives
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` with the given target
    /// false-positive rate (clamped to `[1e-6, 0.5]`).
    pub fn new(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-6, 0.5);
        // Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * p.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter {
            bits: vec![0u64; m.div_ceil(64) as usize],
            num_bits: m,
            num_hashes: k,
            inserted: 0,
        }
    }

    #[inline]
    fn positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        // Kirsch–Mitzenmacher double hashing: g_i(x) = h1(x) + i·h2(x).
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0xA5A5_A5A5_A5A5_A5A5) | 1;
        let m = self.num_bits;
        (0..self.num_hashes).map(move |i| h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<u64> = self.positions(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Returns true when `key` may have been inserted (with the configured
    /// false-positive probability), false when it definitely was not.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }

    /// Number of `insert` calls since creation or the last [`Self::clear`].
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Resets the filter to empty.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Size of the bit array (for overhead accounting).
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0..1000u64 {
            f.insert(i * 7919);
        }
        for i in 0..1000u64 {
            assert!(f.contains(i * 7919));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u64 {
            f.insert(i);
        }
        let fps = (10_000u64..110_000).filter(|&k| f.contains(k)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(100, 0.01);
        assert!(!f.contains(1));
        assert!(!f.contains(u64::MAX));
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(100, 0.01);
        f.insert(5);
        assert!(f.contains(5));
        f.clear();
        assert!(!f.contains(5));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn tiny_expected_items_still_works() {
        let mut f = BloomFilter::new(0, 0.01);
        f.insert(1);
        assert!(f.contains(1));
        assert!(f.num_bits() >= 64);
    }
}

//! Trace request representation.
//!
//! A trace is an ordered sequence of [`Request`]s. Logical time is the index
//! of the request in the trace; the simulator supplies it when replaying so
//! that requests themselves stay compact.

/// Identifier of a cached object.
///
/// Production traces key objects by block number, URL hash, or key hash; all
/// of those collapse to a 64-bit id in this workspace.
pub type ObjId = u64;

/// The operation a request performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read the object; a miss triggers insertion (read-through).
    #[default]
    Get,
    /// Write/overwrite the object (always an insertion or update).
    Set,
    /// Remove the object from the cache if present.
    Delete,
}

/// A single cache request.
///
/// `time` is logical time measured in request count, which is how the paper
/// measures eviction age and demotion speed ("We use logical time measured in
/// request count", §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Object identifier.
    pub id: ObjId,
    /// Object size in bytes. Simulations that ignore size use `1`.
    pub size: u32,
    /// Logical timestamp (request index within the trace).
    pub time: u64,
    /// Operation kind.
    pub op: Op,
}

impl Request {
    /// Creates a unit-size `Get` request, the common case in simulations
    /// that ignore object size (§5.1.2).
    #[inline]
    pub fn get(id: ObjId, time: u64) -> Self {
        Request {
            id,
            size: 1,
            time,
            op: Op::Get,
        }
    }

    /// Creates a `Get` request with an explicit byte size, used by byte
    /// miss ratio experiments (§5.2.3).
    #[inline]
    pub fn get_sized(id: ObjId, size: u32, time: u64) -> Self {
        Request {
            id,
            size,
            time,
            op: Op::Get,
        }
    }

    /// Creates a `Delete` request (§4.2 discusses deletion handling).
    #[inline]
    pub fn delete(id: ObjId, time: u64) -> Self {
        Request {
            id,
            size: 0,
            time,
            op: Op::Delete,
        }
    }

    /// Returns true when this request can produce a cache hit.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.op == Op::Get
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_request_defaults() {
        let r = Request::get(42, 7);
        assert_eq!(r.id, 42);
        assert_eq!(r.size, 1);
        assert_eq!(r.time, 7);
        assert_eq!(r.op, Op::Get);
        assert!(r.is_read());
    }

    #[test]
    fn sized_request_keeps_size() {
        let r = Request::get_sized(1, 4096, 0);
        assert_eq!(r.size, 4096);
    }

    #[test]
    fn delete_is_not_read() {
        let r = Request::delete(3, 1);
        assert!(!r.is_read());
        assert_eq!(r.size, 0);
    }

    #[test]
    fn op_default_is_get() {
        assert_eq!(Op::default(), Op::Get);
    }

    #[test]
    fn request_is_copy_and_comparable() {
        let r = Request::get_sized(9, 512, 3);
        let r2 = r;
        assert_eq!(r, r2);
    }
}

//! The eviction-policy abstraction used by the simulator.
//!
//! A [`Policy`] owns the cache metadata for a fixed capacity (in bytes, or in
//! objects when every request has size 1) and processes one request at a
//! time. Evicted objects are reported through an out-parameter so the
//! simulator can compute the paper's eviction-time metrics: frequency of
//! objects at eviction (Fig. 4) and quick-demotion speed/precision (Fig. 10).

use crate::request::{ObjId, Request};

/// The result of processing a read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The object was found in the cache.
    Hit,
    /// The object was not cached; it has been inserted (read-through).
    Miss,
    /// The request was not a read (e.g. a delete); no hit/miss applies.
    NotRead,
    /// The object is larger than the whole cache and was not admitted.
    Uncacheable,
}

impl Outcome {
    /// Returns true for [`Outcome::Miss`] and [`Outcome::Uncacheable`],
    /// i.e. whenever the backend must be consulted.
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, Outcome::Miss | Outcome::Uncacheable)
    }

    /// Returns true for [`Outcome::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        self == Outcome::Hit
    }
}

/// A record describing one object leaving the cache.
///
/// Policies emit one `Eviction` per object they remove to make room. The
/// simulator uses these to reconstruct the paper's Fig. 4 (frequency at
/// eviction) and Fig. 10 (quick-demotion speed and precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted object.
    pub id: ObjId,
    /// Its size in bytes.
    pub size: u32,
    /// Logical time at which the object was (last) inserted.
    pub insert_time: u64,
    /// Logical time of the last access (equal to `insert_time` when the
    /// object was never hit after insertion — a one-hit wonder).
    pub last_access_time: u64,
    /// Number of accesses *after* insertion (0 for a one-hit wonder).
    pub freq: u32,
    /// True when the object was evicted from a probationary structure
    /// (S3-FIFO's small queue, TinyLFU's window, ARC's T1, …) without ever
    /// reaching the main region. Drives the demotion-speed metric.
    pub from_probationary: bool,
}

impl Eviction {
    /// True when the object received no access between insertion and
    /// eviction — the paper's "one-hit wonder at eviction".
    #[inline]
    pub fn is_one_hit_wonder(&self) -> bool {
        self.freq == 0
    }

    /// Logical age of the object at eviction, the paper's "eviction age".
    #[inline]
    pub fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.insert_time)
    }
}

/// Running counters every policy keeps; used for cheap sanity checks and by
/// the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Number of read requests processed.
    pub gets: u64,
    /// Number of read misses.
    pub misses: u64,
    /// Number of objects evicted (not counting explicit deletes).
    pub evictions: u64,
    /// Bytes requested by reads.
    pub get_bytes: u64,
    /// Bytes missed by reads.
    pub miss_bytes: u64,
}

impl PolicyStats {
    /// Request miss ratio; 0 when no requests were observed.
    pub fn miss_ratio(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.misses as f64 / self.gets as f64
        }
    }

    /// Byte miss ratio; 0 when no bytes were requested.
    pub fn byte_miss_ratio(&self) -> f64 {
        if self.get_bytes == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / self.get_bytes as f64
        }
    }

    /// Records a read of `size` bytes with hit/miss flag `miss`.
    #[inline]
    pub fn record_get(&mut self, size: u32, miss: bool) {
        self.gets += 1;
        self.get_bytes += u64::from(size);
        if miss {
            self.misses += 1;
            self.miss_bytes += u64::from(size);
        }
    }
}

/// A cache eviction policy driven by the simulator.
///
/// Implementations are single-threaded; the concurrent prototype in
/// `cache-concurrent` has its own interface because lock-free caches cannot
/// report evictions through `&mut Vec`. The `Send` bound lets a policy (or
/// a structure embedding `Box<dyn Policy>`, like the flash tier) move
/// behind a mutex shared across server threads — implementations own plain
/// data, so the bound costs nothing.
pub trait Policy: Send {
    /// Human-readable algorithm name, e.g. `"S3-FIFO(0.10)"`.
    fn name(&self) -> String;

    /// Total capacity in bytes (or objects, when sizes are all 1).
    fn capacity(&self) -> u64;

    /// Bytes currently used by cached objects.
    fn used(&self) -> u64;

    /// Number of objects currently cached.
    fn len(&self) -> usize;

    /// True when no objects are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `id` is currently cached (ghost entries do not count).
    fn contains(&self, id: ObjId) -> bool;

    /// Processes one request at logical time `req.time`, appending an
    /// [`Eviction`] record for every object removed to make room.
    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome;

    /// Checks the policy's internal structural invariants (byte accounting
    /// matches the queues, no duplicate residency, counters within their
    /// caps, ghost bounds, …), returning a description of the first
    /// violation found.
    ///
    /// Called between requests by the invariant observer
    /// (`cache-check`) and the differential fuzzer; implementations may be
    /// O(n) in the number of cached objects — this is a verification hook,
    /// not a production path. The default performs no checks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Returns accumulated statistics.
    fn stats(&self) -> PolicyStats;
}

/// A cache eviction policy driven by the dense-ID simulation fast path.
///
/// Dense policies receive each request together with its pre-interned dense
/// *slot* — a contiguous `u32` index assigned per trace (first-appearance
/// order) — and store all per-object state in `Vec`s indexed by slot instead
/// of per-key hash-map nodes. The request still carries the original
/// [`ObjId`], so [`Eviction`] records are identical to the keyed path and
/// miss ratios are bit-for-bit comparable.
///
/// Implementations must make *exactly* the same caching decisions as their
/// keyed [`Policy`] counterpart; the simulator's equivalence test enforces
/// this for every registry policy with a dense variant.
pub trait DensePolicy {
    /// Human-readable algorithm name — must match the keyed variant exactly.
    fn name(&self) -> String;

    /// Total capacity in bytes (or objects, when sizes are all 1).
    fn capacity(&self) -> u64;

    /// Bytes currently used by cached objects.
    fn used(&self) -> u64;

    /// Number of objects currently cached.
    fn len(&self) -> usize;

    /// True when no objects are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Processes one request whose object was interned at `slot`, appending
    /// an [`Eviction`] record for every object removed to make room.
    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome;

    /// Checks structural invariants, mirroring [`Policy::validate`]; used by
    /// the differential fuzzer to catch dense-path corruption even when the
    /// observable decisions still happen to agree. The default performs no
    /// checks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Warms the per-slot state for a request that will arrive shortly.
    ///
    /// The replay loop knows the whole slot sequence up front, so it calls
    /// this a few requests ahead; implementations issue a non-retiring
    /// prefetch hint for the slot's state (`cache_ds::prefetch_read`) to
    /// pull the cache line in while earlier requests execute, turning the
    /// cold-tail misses of a skewed trace from serial into overlapped. Must
    /// not change any observable state. Default: no-op.
    fn prefetch(&self, _slot: u32) {}

    /// Replays a whole interned request stream, invoking `on_eviction` with
    /// the request index for every eviction.
    ///
    /// This default loops through [`DensePolicy::request_dense`] behind
    /// dynamic dispatch; concrete policies override it with a monomorphized
    /// copy of the same loop (see `cache_policies::dense::replay_loop`) so
    /// the per-request path inlines. With `ignore_size`, requests are
    /// replayed at size 1 without materializing a copy of the trace.
    ///
    /// # Panics
    ///
    /// Panics when `slots` and `requests` have different lengths.
    fn replay(
        &mut self,
        slots: &[u32],
        requests: &[Request],
        ignore_size: bool,
        on_eviction: &mut dyn FnMut(usize, &Eviction),
    ) {
        assert_eq!(slots.len(), requests.len(), "slot/request length mismatch");
        let mut evs: Vec<Eviction> = Vec::with_capacity(16);
        for (i, (&slot, r)) in slots.iter().zip(requests.iter()).enumerate() {
            let req = if ignore_size {
                Request { size: 1, ..(*r) }
            } else {
                *r
            };
            evs.clear();
            self.request_dense(slot, &req, &mut evs);
            for e in &evs {
                on_eviction(i, e);
            }
        }
    }

    /// Returns accumulated statistics.
    fn stats(&self) -> PolicyStats;
}

/// Convenience: run a full trace through a policy, discarding eviction
/// records, and return the final statistics.
pub fn run_trace<P: Policy + ?Sized>(policy: &mut P, reqs: &[Request]) -> PolicyStats {
    let mut evs = Vec::new();
    for r in reqs {
        evs.clear();
        policy.request(r, &mut evs);
    }
    policy.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Hit.is_hit());
        assert!(!Outcome::Hit.is_miss());
        assert!(Outcome::Miss.is_miss());
        assert!(Outcome::Uncacheable.is_miss());
        assert!(!Outcome::NotRead.is_miss());
    }

    #[test]
    fn eviction_one_hit_wonder_flag() {
        let e = Eviction {
            id: 1,
            size: 1,
            insert_time: 10,
            last_access_time: 10,
            freq: 0,
            from_probationary: true,
        };
        assert!(e.is_one_hit_wonder());
        assert_eq!(e.age(25), 15);
    }

    #[test]
    fn stats_ratios() {
        let mut s = PolicyStats::default();
        s.record_get(100, true);
        s.record_get(100, false);
        s.record_get(200, true);
        assert_eq!(s.gets, 3);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.byte_miss_ratio() - 300.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PolicyStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.byte_miss_ratio(), 0.0);
    }

    #[test]
    fn eviction_age_saturates() {
        let e = Eviction {
            id: 1,
            size: 1,
            insert_time: 10,
            last_access_time: 10,
            freq: 0,
            from_probationary: false,
        };
        assert_eq!(e.age(5), 0);
    }
}

//! Shared request, eviction, and policy-trait definitions for the S3-FIFO
//! reproduction workspace.
//!
//! Every eviction algorithm in the workspace implements the [`Policy`] trait
//! defined here, and every workload generator produces streams of
//! [`Request`]s. Keeping these in a leaf crate lets the simulator, the
//! baseline algorithms, and the paper's contribution (the `s3fifo` crate)
//! evolve independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod policy;
pub mod request;

pub use error::CacheError;
pub use policy::{DensePolicy, Eviction, Outcome, Policy, PolicyStats};
pub use request::{ObjId, Op, Request};

//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by caches, trace parsers, and the simulator.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes (this enum grew the device-fault variants that way)
/// do not break them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// Capacity was zero or otherwise unusable.
    InvalidCapacity(String),
    /// A configuration parameter was out of range.
    InvalidParameter(String),
    /// A trace file could not be parsed.
    TraceFormat(String),
    /// An I/O error, stringified to keep the type `Clone + Eq`.
    Io(String),
    /// A storage-device operation failed after exhausting its retries.
    DeviceFailure(String),
    /// Stored data failed its integrity check (checksum mismatch).
    Corruption(String),
    /// The tier tripped its error budget and is running degraded
    /// (DRAM-only); the operation was not attempted against the device.
    Degraded(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidCapacity(m) => write!(f, "invalid capacity: {m}"),
            CacheError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            CacheError::TraceFormat(m) => write!(f, "trace format error: {m}"),
            CacheError::Io(m) => write!(f, "i/o error: {m}"),
            CacheError::DeviceFailure(m) => write!(f, "device failure: {m}"),
            CacheError::Corruption(m) => write!(f, "corruption: {m}"),
            CacheError::Degraded(m) => write!(f, "tier degraded: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = CacheError::InvalidCapacity("zero".into());
        assert!(e.to_string().contains("zero"));
        let e = CacheError::TraceFormat("bad line 3".into());
        assert!(e.to_string().contains("bad line 3"));
    }

    #[test]
    fn fault_variants_display() {
        let e = CacheError::DeviceFailure("write failed after 3 retries".into());
        assert!(e.to_string().contains("device failure"));
        let e = CacheError::Corruption("checksum mismatch on obj 7".into());
        assert!(e.to_string().contains("corruption"));
        let e = CacheError::Degraded("error budget tripped".into());
        assert!(e.to_string().contains("degraded"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: CacheError = io.into();
        assert!(matches!(e, CacheError::Io(_)));
    }
}

//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by caches, trace parsers, and the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Capacity was zero or otherwise unusable.
    InvalidCapacity(String),
    /// A configuration parameter was out of range.
    InvalidParameter(String),
    /// A trace file could not be parsed.
    TraceFormat(String),
    /// An I/O error, stringified to keep the type `Clone + Eq`.
    Io(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidCapacity(m) => write!(f, "invalid capacity: {m}"),
            CacheError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            CacheError::TraceFormat(m) => write!(f, "trace format error: {m}"),
            CacheError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = CacheError::InvalidCapacity("zero".into());
        assert!(e.to_string().contains("zero"));
        let e = CacheError::TraceFormat("bad line 3".into());
        assert!(e.to_string().contains("bad line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: CacheError = io.into();
        assert!(matches!(e, CacheError::Io(_)));
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest this workspace uses: the [`proptest!`] macro over
//! functions whose arguments are drawn from [`Strategy`] values (integer
//! ranges, tuples, and [`collection::vec`]), the `prop_assert*` macros, and
//! [`ProptestConfig::with_cases`]. Differences from the real crate:
//!
//! - cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic (failures print the case number, which is stable);
//! - there is no shrinking — a failing case reports its inputs via the
//!   assertion message only;
//! - test functions inside [`proptest!`] must carry an explicit `#[test]`
//!   attribute (the repo's style already does).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; these tests drive up to ~2000-op
        // sequences per case, so keep the same default.
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stable seed for `(test path, case index)`, FNV-1a over the path.
pub fn seed_for(path: &str, case: u32) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case) << 1 | 1)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                ((self.start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                ((*self.start() as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.pick(rng), self.1.pick(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.pick(rng), self.1.pick(rng), self.2.pick(rng))
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Defines randomized tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::from_seed($crate::seed_for(path, case));
                $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {path} failed at case {case}: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{seed_for, Strategy, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u8..7).pick(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0usize..1).pick(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.pick(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b", 0), seed_for("a::b", 0));
        assert_ne!(seed_for("a::b", 0), seed_for("a::b", 1));
        assert_ne!(seed_for("a::b", 0), seed_for("a::c", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: draws tuples and vecs, asserts, and the
        /// trailing-comma form parses.
        #[test]
        fn macro_smoke(
            pairs in crate::collection::vec((0u8..4, 0u64..100), 1..50),
            cap in 1usize..16,
        ) {
            prop_assert!(!pairs.is_empty());
            prop_assert!(cap >= 1 && cap < 16);
            for (a, b) in pairs {
                prop_assert!(a < 4, "a = {a}");
                prop_assert_ne!(b, 100);
                prop_assert_eq!(a as u64 * b, b * a as u64);
            }
        }
    }

    proptest! {
        /// Default-config form (no inner attribute) also parses.
        #[test]
        fn default_config_form(xs in crate::collection::vec(0u32..5, 0..10)) {
            prop_assert!(xs.len() < 10);
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`,
//! `criterion_group!` / `criterion_main!` — over a simple
//! warmup-then-measure timing loop. No statistics, plots, or saved
//! baselines; each benchmark prints one line with ns/iter and derived
//! throughput. Swap the path dependency for the real crate when a registry
//! is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    /// Total measured time of the last `iter` call.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    measure_time: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that fills the
        // measurement window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let t = start.elapsed();
            if t >= self.measure_time / 4 || n >= 1 << 30 {
                // Scale up to roughly fill the window, then measure.
                let target = self.measure_time.as_nanos().max(1);
                let scale = (target / t.as_nanos().max(1)).clamp(1, 1 << 12);
                let iters = n.saturating_mul(scale as u64).max(1);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
                return;
            }
            n = n.saturating_mul(2);
        }
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let extra = match throughput {
        Some(Throughput::Elements(e)) => {
            let per_sec = e as f64 * 1e9 / ns.max(1e-9);
            format!("  ({:.2} Melem/s)", per_sec / 1e6)
        }
        Some(Throughput::Bytes(bytes)) => {
            let per_sec = bytes as f64 * 1e9 / ns.max(1e-9);
            format!("  ({:.2} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<40} {ns:>12.1} ns/iter{extra}");
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = self.criterion.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
    }

    /// Finishes the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
pub struct Criterion {
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short window: these are smoke benches in CI, not statistics.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion {
            measure_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn bencher(&self) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            measure_time: self.measure_time,
        }
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// Declares a function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measure_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &i| {
            b.iter(|| black_box(i + 1));
        });
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` API it actually uses: a cheaply
//! cloneable immutable byte container ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the little-endian cursor traits ([`Buf`],
//! [`BufMut`]). Semantics match the real crate for this subset; swap the
//! path dependency for the real `bytes` when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer (refcounted).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice. The shim copies it once; the real crate
    /// borrows it, but both are O(1) per subsequent clone.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: s.into() }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new `Bytes` holding a copy of `self[range]`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-cursor operations (little-endian subset).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-cursor operations (little-endian subset).
///
/// # Panics
///
/// Like the real crate, the `get_*`/`copy_to_slice` methods panic when the
/// buffer has fewer than the required bytes remaining; callers must check
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_clone_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn bytes_mut_builder_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"AB");
        m.put_u8(7);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(42);
        let b = m.freeze();
        assert_eq!(b.len(), 2 + 1 + 4 + 8);
        let mut cur: &[u8] = &b;
        let mut hdr = [0u8; 2];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"AB");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn static_bytes_compare_by_content() {
        assert_eq!(Bytes::from_static(b"v"), Bytes::from(vec![b'v']));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1];
        cur.get_u32_le();
    }
}

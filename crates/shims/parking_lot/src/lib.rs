//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards are returned directly, not inside a `Result`). A thread that
//! panics while holding a lock poisons the std primitive; the shim recovers
//! the inner guard, matching `parking_lot`'s behavior of simply releasing
//! the lock. Performance differs from the real crate (std mutexes are
//! heavier under contention) but semantics for correctness testing are the
//! same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the write guard only if no other guard is held.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

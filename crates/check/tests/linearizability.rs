//! Integration: every concurrent cache's logged torture history passes the
//! linearizability-lite checker.

use cache_check::check_history;
use cache_concurrent::oplog::{run_logged_torture, LoggedTortureConfig};
use cache_concurrent::ConcurrentCache;
use std::sync::Arc;

fn all_caches(capacity: usize) -> Vec<Arc<dyn ConcurrentCache>> {
    vec![
        Arc::new(cache_concurrent::s3fifo::ConcurrentS3Fifo::new(capacity)),
        Arc::new(cache_concurrent::lru::MutexLru::strict(capacity)),
        Arc::new(cache_concurrent::lru::MutexLru::optimized(capacity)),
        Arc::new(cache_concurrent::clock::ConcurrentClock::new(capacity)),
        Arc::new(cache_concurrent::locked::locked_tinylfu(capacity)),
        Arc::new(cache_concurrent::locked::locked_twoq(capacity)),
        Arc::new(cache_concurrent::segcache::SegcacheLike::new(capacity)),
    ]
}

#[test]
fn logged_torture_histories_are_consistent() {
    let cfg = LoggedTortureConfig {
        threads: 4,
        ops_per_thread: 800,
        keys: 48,
        ..LoggedTortureConfig::default()
    };
    for cache in all_caches(64) {
        let name = cache.name();
        let log = run_logged_torture(cache, &cfg);
        assert_eq!(log.len(), cfg.threads * cfg.ops_per_thread);
        let violations = check_history(&log);
        assert!(
            violations.is_empty(),
            "{name}: {} violations; first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn tiny_cache_under_contention_stays_consistent() {
    // A cache much smaller than the key set maximizes eviction races.
    // (ConcurrentS3Fifo requires at least 10 entries.)
    let cfg = LoggedTortureConfig {
        threads: 4,
        ops_per_thread: 500,
        keys: 96,
        ..LoggedTortureConfig::default()
    };
    for cache in all_caches(12) {
        let name = cache.name();
        let log = run_logged_torture(cache, &cfg);
        let violations = check_history(&log);
        assert!(
            violations.is_empty(),
            "{name}: first violation: {}",
            violations[0]
        );
    }
}

//! Seeded concurrent property test: random multi-threaded op streams must
//! leave every concurrent cache variant structurally consistent.
//!
//! The oracle is [`ConcurrentCache::audit_quiescent`] — a full-table walk at
//! quiescence checking no duplicate residency, no stale index handles, no
//! live∩ghost keys, and occupancy within capacity plus a bounded in-flight
//! allowance. Unlike the mid-run statistical checks in the torture harness,
//! the audit is exact: at quiescence every structure is walked completely.
//!
//! On failure the offending request stream shrinks through the same ddmin
//! used by the differential fuzzer ([`cache_check::fuzz::shrink_with`]), so
//! a violation prints as a minimal op sequence, not a 20 000-request blob.

use bytes::Bytes;
use cache_check::fuzz::{generate_trace, shrink_with, FuzzConfig};
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::ConcurrentCache;
use cache_types::{Op, Request};
use std::sync::Arc;

const THREADS: usize = 4;
const CAPACITY: usize = 256;
/// Per-thread budget of transient artifacts a lock-free design may leave
/// (orphaned CLOCK slots, ghosted re-inserts) — the same budget the torture
/// harness uses.
const SLACK_PER_THREAD: usize = 8;

type Builder = (&'static str, fn() -> Arc<dyn ConcurrentCache>);

fn builders() -> Vec<Builder> {
    vec![
        ("S3-FIFO", || Arc::new(ConcurrentS3Fifo::new(CAPACITY))),
        ("S3-FIFO-direct", || {
            Arc::new(ConcurrentS3Fifo::direct(CAPACITY))
        }),
        ("LRU-strict", || {
            Arc::new(cache_concurrent::lru::MutexLru::strict(CAPACITY))
        }),
        ("LRU-optimized", || {
            Arc::new(cache_concurrent::lru::MutexLru::optimized(CAPACITY))
        }),
        ("CLOCK", || {
            Arc::new(cache_concurrent::clock::ConcurrentClock::new(CAPACITY))
        }),
        ("TinyLFU-locked", || {
            Arc::new(cache_concurrent::locked::locked_tinylfu(CAPACITY))
        }),
        ("2Q-locked", || {
            Arc::new(cache_concurrent::locked::locked_twoq(CAPACITY))
        }),
        ("Segcache", || {
            Arc::new(cache_concurrent::segcache::SegcacheLike::new(CAPACITY))
        }),
    ]
}

/// Replays `requests` round-robin across [`THREADS`] workers, then audits
/// the cache at quiescence. `Err` carries a human-readable violation.
fn replay_and_audit(
    build: fn() -> Arc<dyn ConcurrentCache>,
    requests: &[Request],
) -> Result<(), String> {
    let cache = build();
    let payload = Bytes::from_static(b"prop");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let payload = payload.clone();
            let slice: Vec<Request> = requests
                .iter()
                .skip(t)
                .step_by(THREADS)
                .copied()
                .collect();
            scope.spawn(move || {
                for r in slice {
                    match r.op {
                        Op::Get => {
                            if cache.get(r.id).is_none() {
                                cache.insert(r.id, payload.clone());
                            }
                        }
                        Op::Set => cache.insert(r.id, payload.clone()),
                        Op::Delete => {
                            cache.remove(r.id);
                        }
                    }
                }
            });
        }
    });
    let slack = THREADS * SLACK_PER_THREAD;
    let audit = cache.audit_quiescent();
    if !audit.is_clean(slack) {
        return Err(format!("audit over slack {slack}: {audit:?}"));
    }
    if cache.len() > CAPACITY + slack {
        return Err(format!(
            "occupancy {} exceeds capacity {CAPACITY} + slack {slack}",
            cache.len()
        ));
    }
    Ok(())
}

#[test]
fn random_concurrent_ops_leave_every_variant_consistent() {
    let trace = generate_trace(&FuzzConfig {
        seed: 0xC0DE_50B7,
        requests: 20_000,
        universe: 600,
        max_size: 1,
        write_percent: 15, // 15% Set, 15% Delete, 70% Get
    });
    for (name, build) in builders() {
        // Three repeats: the op streams are fixed, the interleavings are
        // not — a violation in any schedule is a real violation.
        let failure = (0..3).find_map(|_| replay_and_audit(build, &trace).err());
        let Some(msg) = failure else { continue };
        // Shrink before reporting: keep any request set on which some
        // schedule (of three attempts) still fails the audit.
        let mut fails =
            |reqs: &[Request]| (0..3).any(|_| replay_and_audit(build, reqs).is_err());
        let minimal = shrink_with(&mut fails, trace.clone());
        panic!(
            "{name}: {msg}\nshrunk to {} requests: {:#?}",
            minimal.len(),
            minimal
        );
    }
}

/// The shrinker itself, driven through a concurrent-cache replay: a planted
/// insert-then-get pair is the only failure cause, so ddmin must strip the
/// 2 000 surrounding requests and return exactly that pair.
#[test]
fn ddmin_reduces_concurrent_repro_to_planted_pair() {
    const PLANTED: u64 = 1 << 40; // outside the generator's universe
    let mut trace = generate_trace(&FuzzConfig {
        seed: 0xDD_317,
        requests: 2_000,
        universe: 300,
        max_size: 1,
        write_percent: 10,
    });
    let at = trace.len() / 3;
    trace.insert(
        at,
        Request {
            id: PLANTED,
            size: 1,
            time: 0,
            op: Op::Set,
        },
    );
    trace.insert(at + 1, Request::get(PLANTED, 0));
    // "Fails" when the planted key is observed as a hit — which needs both
    // planted requests, in order, and nothing else.
    let mut fails = |reqs: &[Request]| {
        let cache = ConcurrentS3Fifo::new(64);
        let payload = Bytes::from_static(b"prop");
        let mut planted_hit = false;
        for r in reqs {
            match r.op {
                Op::Get => {
                    if cache.get(r.id).is_some() {
                        planted_hit |= r.id == PLANTED;
                    } else {
                        cache.insert(r.id, payload.clone());
                    }
                }
                Op::Set => cache.insert(r.id, payload.clone()),
                Op::Delete => {
                    cache.remove(r.id);
                }
            }
        }
        planted_hit
    };
    assert!(fails(&trace), "planted pair must reproduce on the full trace");
    let minimal = shrink_with(&mut fails, trace);
    assert_eq!(
        minimal.len(),
        2,
        "expected the planted pair, got {minimal:#?}"
    );
    assert!(minimal.iter().all(|r| r.id == PLANTED));
    assert_eq!(minimal[0].op, Op::Set);
    assert_eq!(minimal[1].op, Op::Get);
}

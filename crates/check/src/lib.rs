//! Differential correctness harness for the cache-eviction workspace.
//!
//! Production policies here exist in up to three shapes — a keyed
//! implementation (`HashMap` + intrusive lists), a dense slot-slab fast
//! path, and sometimes a concurrent variant — all required to make
//! *identical decisions*. This crate holds the machinery that enforces
//! that:
//!
//! - [`reference`] — tiny, obviously-correct `Vec`-based interpreters for
//!   FIFO, LRU, CLOCK, SIEVE, 2Q, SLRU, and S3-FIFO, written for
//!   readability, not speed: the ground truth the fast implementations are
//!   diffed against;
//! - [`fuzz`] — a seeded differential fuzzer replaying generated traces
//!   through reference vs keyed vs dense simultaneously, comparing
//!   outcomes, eviction records, accounting, and self-validation after
//!   every request, and shrinking any divergence to a minimal reproduction;
//! - [`mrc`] — a differential for the single-pass multi-capacity MRC
//!   engines: every grid point of [`cache_sim::simulate_mrc`] is diffed
//!   against a per-capacity reference replay, with ddmin shrinking on
//!   mismatch;
//! - [`observer`] — an invariant observer pluggable into
//!   [`cache_sim::simulate_observed`] that shadow-checks residency,
//!   accounting, and structural invariants after every request of any
//!   simulation;
//! - [`linear`] — a linearizability-lite checker over the timed operation
//!   logs produced by [`cache_concurrent::oplog`], plus a brute-force
//!   sequential-witness search used to validate the checker itself.
//!
//! The `check_gate` binary runs the whole battery on a fixed seed as a CI
//! step; `TESTING.md` at the workspace root explains how to reproduce and
//! shrink failures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod linear;
pub mod mrc;
pub mod observer;
pub mod reference;
pub mod stream;

pub use fuzz::{diff_run, fuzz_policy, Divergence, FuzzConfig, FUZZED_ALGORITHMS};
pub use mrc::{fuzz_mrc, mrc_diff, MrcDivergence, MRC_ALGORITHMS, MRC_GRIDS};
pub use stream::{
    fuzz_stream, stream_diff, StreamDivergence, STREAM_ALGORITHMS, STREAM_SHAPES,
};
pub use linear::{check_history, check_monotonic, witness_exists, LinearViolation};
pub use observer::InvariantObserver;
pub use reference::{reference_for, ReferencePolicy};

//! CI gate: the full correctness battery on fixed seeds.
//!
//! Five phases, each fatal on failure (exit code 1 with a reproduction):
//!
//! 1. **Differential fuzz** — every reference-covered algorithm ×
//!    capacities {1, 2, 3, 7, 50} × {unit-size, sized}, ≥ 10 000 generated
//!    requests per algorithm/mode pair, reference vs keyed vs dense
//!    compared after every request. Divergences are shrunk before printing.
//! 2. **MRC differential** — every FIFO-family multi-capacity engine ×
//!    degenerate and regular grids × {pure-Get unit, mixed unit, sized},
//!    each grid point diffed bit-for-bit against a per-capacity reference
//!    replay, with ddmin shrinking on mismatch.
//! 3. **Invariant observer sweep** — every registry algorithm replayed over
//!    a skewed 25 000-request trace under [`cache_check::InvariantObserver`].
//! 4. **Linearizability-lite** — a logged multi-threaded torture run per
//!    concurrent cache, history checked for stale/forged/time-travelling
//!    reads.
//! 5. **Monotonic versions** — logged runs in per-key-version mode under
//!    uniform and Zipf(1.0) key skew, checked with both the per-get rules
//!    and the cross-get version-regression rule.
//! 6. **Streamed replay differential** — every streamable registry
//!    algorithm × three workload shapes × awkward chunk sizes, the
//!    out-of-core `.ctr` replay diffed bit-for-bit (counters, f64 bits,
//!    per-window series) against the in-memory windowed replay, with
//!    ddmin shrinking on mismatch.
//!
//! Budget: a couple of seconds in release mode. Everything is seeded; a
//! failing run reproduces bit-for-bit (see TESTING.md).

use cache_check::{
    check_history, check_monotonic, fuzz_mrc, fuzz_policy, fuzz_stream, FuzzConfig,
    InvariantObserver, FUZZED_ALGORITHMS, MRC_ALGORITHMS, MRC_GRIDS, STREAM_ALGORITHMS,
    STREAM_SHAPES,
};
use cache_concurrent::oplog::{run_logged_torture, LoggedTortureConfig};
use cache_concurrent::ConcurrentCache;
use cache_policies::registry;
use cache_sim::simulate_observed;
use cache_trace::Trace;
use std::process::ExitCode;
use std::sync::Arc;

fn phase_differential() -> Result<(), String> {
    let mut total = 0usize;
    for name in FUZZED_ALGORITHMS {
        let mut per_pair = [0usize; 2];
        for capacity in [1u64, 2, 3, 7, 50] {
            for (mode, max_size) in [(0usize, 1u32), (1, 6)] {
                let cfg = FuzzConfig {
                    seed: 0xC1_6A7E ^ (capacity << 8) ^ u64::from(max_size),
                    requests: 2_500,
                    max_size,
                    ..FuzzConfig::default()
                };
                match fuzz_policy(name, capacity, &cfg) {
                    Ok(n) => per_pair[mode] += n,
                    Err(d) => return Err(format!("{d}")),
                }
            }
        }
        println!(
            "  {name}: {} unit-size + {} sized requests, zero divergences",
            per_pair[0], per_pair[1]
        );
        assert!(
            per_pair.iter().all(|&n| n >= 10_000),
            "fuzz budget regressed below 10k requests per pair"
        );
        total += per_pair[0] + per_pair[1];
    }
    println!("  total: {total} differential requests");
    Ok(())
}

fn phase_mrc() -> Result<(), String> {
    // Three stream shapes: pure-Get unit sizes (drives FIFO through the
    // exact insertion-index engine), unit sizes with writes, and sized with
    // writes (both drive the ganged lanes).
    let modes = [
        ("pure-get-unit", 1u32, 0u64, true),
        ("mixed-unit", 1, 10, true),
        ("mixed-sized", 6, 10, false),
    ];
    let mut total = 0usize;
    for name in MRC_ALGORITHMS {
        let mut per_algo = 0usize;
        for (grid_idx, grid) in MRC_GRIDS.iter().enumerate() {
            for (label, max_size, write_percent, ignore_size) in modes {
                let cfg = FuzzConfig {
                    seed: 0x3C19_AF05
                        ^ ((grid_idx as u64) << 16)
                        ^ u64::from(max_size) << 8
                        ^ write_percent,
                    requests: 1_500,
                    max_size,
                    write_percent,
                    ..FuzzConfig::default()
                };
                match fuzz_mrc(name, grid, ignore_size, &cfg) {
                    // Each run checks `grid.len()` per-capacity replays.
                    Ok(n) => per_algo += n * grid.len(),
                    Err(d) => return Err(format!("({label} mode) {d}")),
                }
            }
        }
        println!("  {name}: {per_algo} point-requests diffed bit-identical");
        total += per_algo;
    }
    println!("  total: {total} MRC point-requests across {} grids", MRC_GRIDS.len());
    Ok(())
}

fn phase_observer() -> Result<(), String> {
    let requests = cache_check::fuzz::generate_trace(&FuzzConfig {
        seed: 0x0B5E_11E4,
        requests: 25_000,
        universe: 400,
        max_size: 8,
        write_percent: 8,
    });
    let trace = Trace::new("check-gate", requests);
    let mut cells = 0usize;
    for name in registry::ALL_ALGORITHMS {
        for ignore_size in [true, false] {
            let mut policy = registry::build(name, 64, Some(&trace.requests))
                .map_err(|e| format!("build {name}: {e}"))?;
            let mut obs = InvariantObserver::new();
            simulate_observed(policy.as_mut(), &trace, ignore_size, &mut obs);
            if let Some((i, msg)) = obs.violation() {
                return Err(format!(
                    "{name} (ignore_size={ignore_size}) violated an invariant at request {i}: {msg}"
                ));
            }
            cells += 1;
        }
    }
    println!(
        "  {} algorithms x 2 size modes over {} requests: all invariants held ({cells} cells)",
        registry::ALL_ALGORITHMS.len(),
        trace.requests.len()
    );
    Ok(())
}

/// Every concurrent variant at `capacity` — the same roster the thread-sweep
/// benchmark measures, batched and direct S3-FIFO included.
fn concurrent_caches(capacity: usize) -> Vec<Arc<dyn ConcurrentCache>> {
    vec![
        Arc::new(cache_concurrent::s3fifo::ConcurrentS3Fifo::new(capacity)),
        Arc::new(cache_concurrent::s3fifo::ConcurrentS3Fifo::direct(capacity)),
        Arc::new(cache_concurrent::lru::MutexLru::strict(capacity)),
        Arc::new(cache_concurrent::lru::MutexLru::optimized(capacity)),
        Arc::new(cache_concurrent::clock::ConcurrentClock::new(capacity)),
        Arc::new(cache_concurrent::locked::locked_tinylfu(capacity)),
        Arc::new(cache_concurrent::locked::locked_twoq(capacity)),
        Arc::new(cache_concurrent::segcache::SegcacheLike::new(capacity)),
    ]
}

fn phase_linearizability() -> Result<(), String> {
    let cfg = LoggedTortureConfig {
        threads: 4,
        ops_per_thread: 1_500,
        ..LoggedTortureConfig::default()
    };
    for cache in concurrent_caches(96) {
        let name = cache.name();
        let log = run_logged_torture(cache, &cfg);
        let violations = check_history(&log);
        if let Some(v) = violations.first() {
            return Err(format!(
                "{name}: {} consistency violations in a {}-op history; first: {v}",
                violations.len(),
                log.len()
            ));
        }
        println!("  {name}: {}-op logged history linearizable-lite", log.len());
    }
    Ok(())
}

fn phase_monotonic() -> Result<(), String> {
    for alpha in [0.0, 1.0] {
        for cache in concurrent_caches(96) {
            let name = cache.name();
            let cfg = LoggedTortureConfig {
                threads: 4,
                ops_per_thread: 1_200,
                alpha,
                monotonic_versions: true,
                seed: 0x3030_0707 ^ alpha.to_bits(),
                ..LoggedTortureConfig::default()
            };
            let log = run_logged_torture(cache, &cfg);
            let mut violations = check_history(&log);
            violations.extend(check_monotonic(&log));
            if let Some(v) = violations.first() {
                return Err(format!(
                    "{name} (alpha {alpha}): {} violations in a {}-op monotonic history; first: {v}",
                    violations.len(),
                    log.len()
                ));
            }
            println!(
                "  {name} (alpha {alpha}): {}-op history passes per-get + version-regression rules",
                log.len()
            );
        }
    }
    Ok(())
}

fn phase_stream() -> Result<(), String> {
    let mut total = 0usize;
    for name in STREAM_ALGORITHMS {
        let mut per_algo = 0usize;
        for (shape_idx, &(max_size, write_percent, ignore_size)) in
            STREAM_SHAPES.iter().enumerate()
        {
            for (window, chunk) in [(1u64, 1usize), (100, 13), (500, 997), (64, 100_000)] {
                let cfg = FuzzConfig {
                    seed: 0x57AE_A001
                        ^ ((shape_idx as u64) << 16)
                        ^ (window << 32)
                        ^ chunk as u64,
                    requests: 1_500,
                    max_size,
                    write_percent,
                    ..FuzzConfig::default()
                };
                match fuzz_stream(name, 48, window, chunk, ignore_size, &cfg) {
                    Ok(n) => per_algo += n,
                    Err(d) => return Err(format!("{d}")),
                }
            }
        }
        println!("  {name}: {per_algo} streamed requests bit-identical to in-memory");
        total += per_algo;
    }
    println!(
        "  total: {total} streamed requests across {} shapes",
        STREAM_SHAPES.len()
    );
    Ok(())
}

type Phase = fn() -> Result<(), String>;

fn main() -> ExitCode {
    let phases: [(&str, Phase); 6] = [
        ("differential fuzz (reference vs keyed vs dense)", phase_differential),
        ("MRC differential (multi-capacity engines vs per-capacity reference)", phase_mrc),
        ("invariant observer sweep", phase_observer),
        ("linearizability-lite on logged torture histories", phase_linearizability),
        ("monotonic-version regression rules on logged histories", phase_monotonic),
        ("streamed .ctr replay differential (out-of-core vs in-memory)", phase_stream),
    ];
    for (title, run) in phases {
        println!("check_gate: {title}");
        if let Err(msg) = run() {
            eprintln!("check_gate FAILED in {title}:\n{msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("check_gate: all phases passed");
    ExitCode::SUCCESS
}

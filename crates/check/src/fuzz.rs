//! Seeded differential fuzzer: reference vs keyed vs dense, with shrinking.
//!
//! For every policy that has a reference interpreter
//! ([`crate::reference::reference_for`]) the fuzzer replays a generated
//! request stream simultaneously through the reference, the keyed registry
//! implementation, and (when one exists) the dense fast-path implementation,
//! comparing after **every** request:
//!
//! - the [`Outcome`],
//! - the exact sequence of [`Eviction`] records (ids, sizes, timestamps,
//!   hit counts, probationary flags),
//! - `used()` and `len()`,
//! - each implementation's own [`Policy::validate`] /
//!   [`DensePolicy::validate`] structural invariants.
//!
//! Any divergence is shrunk with a ddmin-style pass to a minimal request
//! sequence that still reproduces it, and reported as a [`Divergence`]
//! carrying everything needed to replay the failure (`TESTING.md` explains
//! how).

use crate::reference::reference_for;
use cache_ds::{DenseIds, SplitMix64};
use cache_policies::registry;
use cache_types::{DensePolicy, Eviction, Op, Policy, Request};
use std::sync::Arc;

/// Parameters of one generated workload.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Seed for the request generator; a `(seed, config)` pair fully
    /// determines the trace.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Distinct object ids, drawn skewed (half the requests go to a hot
    /// eighth of the universe).
    pub universe: u64,
    /// Maximum object size; 1 replays the unit-size (object-count) mode.
    /// Sizes are drawn per request, not per object, deliberately exercising
    /// the hits-don't-resize convention.
    pub max_size: u32,
    /// Fraction (percent) of requests that are `Set`s; an equal share
    /// becomes `Delete`s. 0 generates a pure `Get` stream.
    pub write_percent: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xD1FF_5EED,
            requests: 2_500,
            universe: 64,
            max_size: 4,
            write_percent: 10,
        }
    }
}

/// A minimal reproduction of one reference/implementation disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Registry algorithm name.
    pub algorithm: String,
    /// Cache capacity the divergence occurred at.
    pub capacity: u64,
    /// The generator seed that produced the original failing trace.
    pub seed: u64,
    /// Index (into `trace`) of the request where behaviours fork.
    pub step: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The shrunk request sequence; replaying it through
    /// [`diff_run`] reproduces the divergence at `step`.
    pub trace: Vec<Request>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} @ capacity {} diverged at step {} (seed {:#x}): {}",
            self.algorithm, self.capacity, self.step, self.seed, self.detail
        )?;
        writeln!(f, "shrunk to {} requests:", self.trace.len())?;
        for (i, r) in self.trace.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {:?} id={} size={} t={}",
                r.op, r.id, r.size, r.time
            )?;
        }
        Ok(())
    }
}

/// Generates the seeded skewed request stream for `cfg`.
pub fn generate_trace(cfg: &FuzzConfig) -> Vec<Request> {
    let mut rng = SplitMix64::new(cfg.seed);
    let universe = cfg.universe.max(1);
    let hot = (universe / 8).max(1);
    (0..cfg.requests)
        .map(|t| {
            let id = if rng.next_below(2) == 0 {
                rng.next_below(hot)
            } else {
                rng.next_below(universe)
            };
            let size = 1 + rng.next_below(u64::from(cfg.max_size.max(1))) as u32;
            let roll = rng.next_below(100);
            let op = if roll < cfg.write_percent {
                Op::Set
            } else if roll < cfg.write_percent * 2 {
                Op::Delete
            } else {
                Op::Get
            };
            Request {
                id,
                size,
                time: t as u64,
                op,
            }
        })
        .collect()
}

fn fmt_evictions(evs: &[Eviction]) -> String {
    let items: Vec<String> = evs
        .iter()
        .map(|e| {
            format!(
                "(id={} size={} ins={} acc={} freq={} prob={})",
                e.id, e.size, e.insert_time, e.last_access_time, e.freq, e.from_probationary
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// Replays `requests` through a reference, a keyed implementation, and
/// optionally a dense implementation, returning the first step at which any
/// observable disagrees (or any implementation fails its own `validate`).
///
/// `slots[i]` must be the dense slot of `requests[i]` (ignored without a
/// dense policy).
pub fn diff_run<D: DensePolicy + ?Sized>(
    reference: &mut dyn Policy,
    keyed: &mut dyn Policy,
    mut dense: Option<&mut D>,
    slots: &[u32],
    requests: &[Request],
) -> Option<(usize, String)> {
    let mut evs_ref: Vec<Eviction> = Vec::new();
    let mut evs_key: Vec<Eviction> = Vec::new();
    let mut evs_den: Vec<Eviction> = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        evs_ref.clear();
        evs_key.clear();
        evs_den.clear();
        let out_ref = reference.request(req, &mut evs_ref);
        let out_key = keyed.request(req, &mut evs_key);
        if out_key != out_ref {
            return Some((i, format!("keyed outcome {out_key:?} != reference {out_ref:?}")));
        }
        if evs_key != evs_ref {
            return Some((
                i,
                format!(
                    "keyed evictions {} != reference {}",
                    fmt_evictions(&evs_key),
                    fmt_evictions(&evs_ref)
                ),
            ));
        }
        if keyed.used() != reference.used() || keyed.len() != reference.len() {
            return Some((
                i,
                format!(
                    "keyed used/len {}/{} != reference {}/{}",
                    keyed.used(),
                    keyed.len(),
                    reference.used(),
                    reference.len()
                ),
            ));
        }
        if keyed.stats() != reference.stats() {
            return Some((
                i,
                format!(
                    "keyed stats {:?} != reference {:?}",
                    keyed.stats(),
                    reference.stats()
                ),
            ));
        }
        if let Err(e) = keyed.validate() {
            return Some((i, format!("keyed invariant violated: {e}")));
        }
        if let Some(d) = dense.as_mut() {
            let out_den = d.request_dense(slots[i], req, &mut evs_den);
            if out_den != out_ref {
                return Some((i, format!("dense outcome {out_den:?} != reference {out_ref:?}")));
            }
            if evs_den != evs_ref {
                return Some((
                    i,
                    format!(
                        "dense evictions {} != reference {}",
                        fmt_evictions(&evs_den),
                        fmt_evictions(&evs_ref)
                    ),
                ));
            }
            if d.used() != reference.used() || d.len() != reference.len() {
                return Some((
                    i,
                    format!(
                        "dense used/len {}/{} != reference {}/{}",
                        d.used(),
                        d.len(),
                        reference.used(),
                        reference.len()
                    ),
                ));
            }
            if let Err(e) = d.validate() {
                return Some((i, format!("dense invariant violated: {e}")));
            }
        }
        if let Err(e) = reference.validate() {
            return Some((i, format!("reference invariant violated: {e}")));
        }
    }
    None
}

/// Builds fresh reference/keyed/dense instances for `name` and runs
/// [`diff_run`] over `requests`. Panics if `name` has no reference model or
/// fails to build — the fuzzer's name list is validated by its callers.
fn run_fresh(name: &str, capacity: u64, requests: &[Request]) -> Option<(usize, String)> {
    let mut reference =
        reference_for(name, capacity).unwrap_or_else(|| panic!("no reference model for {name}"));
    let mut keyed = registry::build(name, capacity, Some(requests))
        .unwrap_or_else(|e| panic!("cannot build keyed {name}: {e}"));
    let (ids, slots) = DenseIds::intern(requests.iter().map(|r| r.id));
    let ids = Arc::new(ids);
    let mut dense = registry::build_dense(name, capacity, &ids)
        .unwrap_or_else(|e| panic!("cannot build dense {name}: {e}"));
    diff_run(
        &mut reference,
        keyed.as_mut(),
        dense.as_deref_mut(),
        &slots,
        requests,
    )
}

/// ddmin-style shrinking: starting from a failing request sequence, greedily
/// removes chunks (halving the chunk size down to single requests) while the
/// failure — re-judged from scratch by `fails` — persists. Deterministic,
/// quadratic in the worst case, and good enough to cut thousands of requests
/// down to a handful.
pub fn shrink_with(fails: &mut dyn FnMut(&[Request]) -> bool, initial: Vec<Request>) -> Vec<Request> {
    let mut cur = initial;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..(i + chunk).min(cand.len()));
            if !cand.is_empty() && fails(&cand) {
                cur = cand; // keep the removal; retry the same offset
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    cur
}

/// Fuzzes one `(algorithm, capacity)` pair with the given config. Returns
/// the number of requests replayed on success, or a shrunk [`Divergence`].
///
/// # Errors
///
/// Returns the divergence when any per-request observable disagrees between
/// the reference, keyed, and dense implementations.
pub fn fuzz_policy(name: &str, capacity: u64, cfg: &FuzzConfig) -> Result<usize, Box<Divergence>> {
    let requests = generate_trace(cfg);
    match run_fresh(name, capacity, &requests) {
        None => Ok(requests.len()),
        Some((step, _)) => {
            let failing = requests[..=step].to_vec();
            let shrunk = shrink_with(
                &mut |cand| run_fresh(name, capacity, cand).is_some(),
                failing,
            );
            // Invariant: the shrinker only returns candidates that still fail.
            let (step, detail) = run_fresh(name, capacity, &shrunk)
                .expect("shrunk trace still fails by construction");
            Err(Box::new(Divergence {
                algorithm: name.to_string(),
                capacity,
                seed: cfg.seed,
                step,
                detail,
                trace: shrunk,
            }))
        }
    }
}

/// The registry algorithms the differential fuzzer covers: every name with
/// both a reference interpreter and (where implemented) a dense variant.
pub const FUZZED_ALGORITHMS: &[&str] = &[
    "FIFO",
    "LRU",
    "CLOCK",
    "CLOCK-2bit",
    "SIEVE",
    "SLRU",
    "2Q",
    "S3-FIFO",
    "S3-FIFO(0.25)",
];

#[cfg(test)]
mod tests {
    use super::*;
    use cache_types::{Outcome, PolicyStats};

    /// Every covered algorithm, fuzzed at adversarially tiny and moderate
    /// capacities, sized and unit-size. This is the in-tree mirror of the CI
    /// gate (`check_gate` runs a larger budget).
    #[test]
    fn reference_keyed_dense_agree() {
        for name in FUZZED_ALGORITHMS {
            for capacity in [1u64, 2, 3, 7, 50] {
                for max_size in [1u32, 4] {
                    let cfg = FuzzConfig {
                        seed: 0xABCD ^ capacity ^ u64::from(max_size) << 8,
                        requests: 800,
                        max_size,
                        ..FuzzConfig::default()
                    };
                    if let Err(d) = fuzz_policy(name, capacity, &cfg) {
                        panic!("divergence:\n{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = FuzzConfig::default();
        assert_eq!(generate_trace(&cfg), generate_trace(&cfg));
        let other = FuzzConfig {
            seed: 1,
            ..FuzzConfig::default()
        };
        assert_ne!(generate_trace(&cfg), generate_trace(&other));
    }

    /// A dense "implementation" that ignores Delete requests — a classic
    /// forgotten-code-path mutation. The fuzzer must catch it and shrink the
    /// reproduction to the minimal Get/Delete/Get pattern.
    struct MutantDense {
        inner: Box<dyn DensePolicy>,
    }

    impl DensePolicy for MutantDense {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn capacity(&self) -> u64 {
            self.inner.capacity()
        }
        fn used(&self) -> u64 {
            self.inner.used()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn request_dense(
            &mut self,
            slot: u32,
            req: &Request,
            evicted: &mut Vec<Eviction>,
        ) -> Outcome {
            if req.op == Op::Delete {
                return Outcome::NotRead; // BUG: delete silently dropped
            }
            self.inner.request_dense(slot, req, evicted)
        }
        fn validate(&self) -> Result<(), String> {
            self.inner.validate()
        }
        fn stats(&self) -> PolicyStats {
            self.inner.stats()
        }
    }

    /// Mutation smoke test (documented in TESTING.md): a deliberately broken
    /// dense policy must produce a divergence, and shrinking must cut the
    /// reproduction down to a handful of requests.
    #[test]
    fn mutant_dense_is_caught_and_shrunk() {
        let capacity = 8u64;
        let cfg = FuzzConfig {
            requests: 2_000,
            write_percent: 15,
            ..FuzzConfig::default()
        };
        let requests = generate_trace(&cfg);

        let mut fails = |reqs: &[Request]| -> bool {
            let mut reference = reference_for("LRU", capacity).expect("LRU reference exists");
            let (ids, slots) = DenseIds::intern(reqs.iter().map(|r| r.id));
            let ids = Arc::new(ids);
            let inner = registry::build_dense("LRU", capacity, &ids)
                .expect("dense LRU builds")
                .expect("dense LRU exists");
            let mut mutant = MutantDense { inner };
            let mut keyed =
                registry::build("LRU", capacity, None).expect("keyed LRU builds");
            diff_run(
                &mut reference,
                keyed.as_mut(),
                Some(&mut mutant),
                &slots,
                reqs,
            )
            .is_some()
        };

        assert!(fails(&requests), "the mutant must diverge somewhere");
        let shrunk = shrink_with(&mut fails, requests);
        assert!(fails(&shrunk), "shrunk trace must still reproduce");
        assert!(
            shrunk.len() <= 4,
            "expected a minimal reproduction, got {} requests",
            shrunk.len()
        );
        // The minimal pattern must involve the dropped Delete.
        assert!(
            shrunk.iter().any(|r| r.op == Op::Delete),
            "reproduction should exercise the broken Delete path: {shrunk:?}"
        );
    }

    /// The shrinker itself: removing any request from its output must make
    /// the failure disappear (1-minimality on a crafted failure).
    #[test]
    fn shrinker_is_one_minimal_on_crafted_failure() {
        // Fail whenever the trace contains a Get of id 7 after a Get of id 3.
        let mut fails = |reqs: &[Request]| -> bool {
            let mut seen3 = false;
            for r in reqs {
                if r.id == 3 {
                    seen3 = true;
                } else if r.id == 7 && seen3 {
                    return true;
                }
            }
            false
        };
        let noise: Vec<Request> = (0..100u64)
            .map(|t| Request::get(t % 13, t))
            .collect();
        assert!(fails(&noise));
        let shrunk = shrink_with(&mut fails, noise);
        assert_eq!(shrunk.len(), 2, "exactly the 3-then-7 pair: {shrunk:?}");
        assert_eq!(shrunk[0].id, 3);
        assert_eq!(shrunk[1].id, 7);
    }
}

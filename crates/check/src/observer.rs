//! A [`RequestObserver`] that checks structural invariants after every
//! request of a simulation.
//!
//! The observer maintains its own shadow residency map (id → stored size)
//! and cross-checks it against the policy after each request:
//!
//! - outcome consistency: `Hit` only on resident ids, `Miss`/`Uncacheable`
//!   only on absent ones, `Uncacheable` only when the object cannot fit;
//! - eviction consistency: every reported eviction names a previously
//!   resident id with the size it was stored at, and the id is gone
//!   afterwards;
//! - accounting: the policy's `used()` equals the byte-sum of the shadow
//!   map, `len()` its cardinality, and `used() ≤ capacity()` always;
//! - the policy's own [`Policy::validate`] structural check.
//!
//! Residency is reconciled through [`Policy::contains`] rather than assumed
//! from outcomes, so admission-filtered policies (B-LRU, TinyLFU) — where a
//! `Miss` does not imply the object was admitted — are handled uniformly.
//!
//! The first violation is recorded (with its request index) and checking
//! stops; a corrupted shadow map would otherwise cascade into noise.

use cache_sim::RequestObserver;
use cache_types::{Eviction, ObjId, Op, Outcome, Policy, Request};
use std::collections::HashMap;

/// Invariant-checking observer for [`cache_sim::simulate_observed`].
///
/// Expects to observe a policy from its very first request (the shadow map
/// starts empty).
#[derive(Debug, Default)]
pub struct InvariantObserver {
    resident: HashMap<ObjId, u64>,
    bytes: u64,
    violation: Option<(usize, String)>,
    checked: usize,
}

impl InvariantObserver {
    /// Creates an observer for a freshly built policy.
    pub fn new() -> Self {
        InvariantObserver::default()
    }

    /// The first invariant violation, as `(request index, description)`.
    pub fn violation(&self) -> Option<&(usize, String)> {
        self.violation.as_ref()
    }

    /// Number of requests fully checked (stops growing after a violation).
    pub fn checked(&self) -> usize {
        self.checked
    }

    fn fail(&mut self, index: usize, msg: String) {
        if self.violation.is_none() {
            self.violation = Some((index, msg));
        }
    }

    fn remove_shadow(&mut self, id: ObjId) -> Option<u64> {
        let size = self.resident.remove(&id);
        if let Some(s) = size {
            self.bytes -= s;
        }
        size
    }

    fn check_evictions(
        &mut self,
        index: usize,
        req: &Request,
        evicted: &[Eviction],
        policy: &dyn Policy,
    ) -> bool {
        for e in evicted {
            if e.id == req.id {
                // The request's own object may be inserted and immediately
                // rejected (TinyLFU's admission duel): it was never resident
                // before the request, and its eviction carries the request's
                // size (or, for a Set overwriting a resident object, the new
                // size rather than the stored one).
                let prior = self.remove_shadow(e.id);
                if u64::from(e.size) != u64::from(req.size)
                    && prior != Some(u64::from(e.size))
                {
                    self.fail(
                        index,
                        format!(
                            "self-eviction of id {} reports size {} (request size {}, stored {:?})",
                            e.id, e.size, req.size, prior
                        ),
                    );
                    return false;
                }
                continue;
            }
            match self.remove_shadow(e.id) {
                None => {
                    self.fail(
                        index,
                        format!("evicted id {} was not resident before the request", e.id),
                    );
                    return false;
                }
                Some(size) if size != u64::from(e.size) => {
                    self.fail(
                        index,
                        format!(
                            "eviction of id {} reports size {} but it was stored at {}",
                            e.id, e.size, size
                        ),
                    );
                    return false;
                }
                Some(_) => {}
            }
            // An eviction may be the object the request itself reinserts
            // (Set of a resident id); only other ids must be gone.
            if e.id != req.id && policy.contains(e.id) {
                self.fail(
                    index,
                    format!("id {} still resident after being reported evicted", e.id),
                );
                return false;
            }
        }
        true
    }
}

impl RequestObserver for InvariantObserver {
    fn after_request(
        &mut self,
        index: usize,
        req: &Request,
        outcome: Outcome,
        evicted: &[Eviction],
        policy: &dyn Policy,
    ) {
        if self.violation.is_some() {
            return;
        }
        let was_resident = self.resident.contains_key(&req.id);

        // 1. Outcome is consistent with pre-request residency.
        match (req.op, outcome) {
            (Op::Get, Outcome::Hit) if !was_resident => {
                return self.fail(index, format!("Hit on non-resident id {}", req.id));
            }
            (Op::Get, Outcome::Miss) if was_resident => {
                return self.fail(index, format!("Miss on resident id {}", req.id));
            }
            (Op::Get, Outcome::Uncacheable) => {
                if was_resident {
                    return self.fail(index, format!("Uncacheable on resident id {}", req.id));
                }
                if u64::from(req.size) <= policy.capacity() {
                    return self.fail(
                        index,
                        format!(
                            "Uncacheable for id {} of size {} within capacity {}",
                            req.id,
                            req.size,
                            policy.capacity()
                        ),
                    );
                }
            }
            (Op::Get, Outcome::NotRead) => {
                return self.fail(index, "NotRead outcome for a Get".to_string());
            }
            (Op::Set | Op::Delete, o) if o != Outcome::NotRead => {
                return self.fail(index, format!("{:?} outcome for a {:?}", o, req.op));
            }
            _ => {}
        }

        // 2. Evictions name resident ids at their stored sizes.
        if !self.check_evictions(index, req, evicted, policy) {
            return;
        }

        // 3. Reconcile the requested id via contains(): hits keep the stored
        //    size (hits never resize), everything else stores the request's
        //    size; admission filters may legitimately not admit.
        if policy.contains(req.id) {
            if req.op != Op::Get || outcome != Outcome::Hit {
                self.remove_shadow(req.id);
                self.resident.insert(req.id, u64::from(req.size));
                self.bytes += u64::from(req.size);
            }
        } else {
            self.remove_shadow(req.id);
            if outcome == Outcome::Hit {
                return self.fail(index, format!("Hit id {} absent after the request", req.id));
            }
        }

        // 4. Accounting matches the shadow map; capacity is respected.
        if policy.used() != self.bytes {
            return self.fail(
                index,
                format!(
                    "used() = {} but resident objects sum to {}",
                    policy.used(),
                    self.bytes
                ),
            );
        }
        if policy.len() != self.resident.len() {
            return self.fail(
                index,
                format!(
                    "len() = {} but {} objects are resident",
                    policy.len(),
                    self.resident.len()
                ),
            );
        }
        if policy.used() > policy.capacity() {
            return self.fail(
                index,
                format!(
                    "used() = {} exceeds capacity {}",
                    policy.used(),
                    policy.capacity()
                ),
            );
        }

        // 5. The policy's own structural invariants.
        if let Err(e) = policy.validate() {
            return self.fail(index, format!("validate() failed: {e}"));
        }
        self.checked += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_policies::registry;
    use cache_sim::simulate_observed;
    use cache_trace::Trace;
    use cache_types::PolicyStats;

    fn skewed_trace(n: usize) -> Trace {
        let reqs = crate::fuzz::generate_trace(&crate::fuzz::FuzzConfig {
            seed: 0x0B5E_7EED,
            requests: n,
            universe: 200,
            max_size: 8,
            write_percent: 8,
        });
        Trace::new("observer-fuzz", reqs)
    }

    /// Every registry policy, sized and unit-size, under the observer.
    #[test]
    fn all_policies_pass_invariants() {
        let trace = skewed_trace(5_000);
        for name in registry::ALL_ALGORITHMS {
            for ignore_size in [false, true] {
                let mut policy = registry::build(name, 64, Some(&trace.requests))
                    .unwrap_or_else(|e| panic!("build {name}: {e}"));
                let mut obs = InvariantObserver::new();
                simulate_observed(policy.as_mut(), &trace, ignore_size, &mut obs);
                if let Some((i, msg)) = obs.violation() {
                    panic!("{name} (ignore_size={ignore_size}) violated at request {i}: {msg}");
                }
                assert_eq!(obs.checked(), trace.requests.len());
            }
        }
    }

    /// A policy that lies about `used()` must be flagged immediately.
    struct LyingPolicy {
        inner: Box<dyn Policy>,
    }

    impl Policy for LyingPolicy {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn capacity(&self) -> u64 {
            self.inner.capacity()
        }
        fn used(&self) -> u64 {
            self.inner.used() + 1 // BUG: phantom byte
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn contains(&self, id: u64) -> bool {
            self.inner.contains(id)
        }
        fn request(
            &mut self,
            req: &Request,
            evicted: &mut Vec<Eviction>,
        ) -> Outcome {
            self.inner.request(req, evicted)
        }
        fn stats(&self) -> PolicyStats {
            self.inner.stats()
        }
    }

    #[test]
    fn accounting_lies_are_caught() {
        let trace = skewed_trace(50);
        let inner = registry::build("LRU", 16, None).expect("LRU builds");
        let mut policy = LyingPolicy { inner };
        let mut obs = InvariantObserver::new();
        simulate_observed(&mut policy, &trace, true, &mut obs);
        let (i, msg) = obs.violation().expect("phantom byte must be flagged");
        assert_eq!(*i, 0, "flagged on the very first request");
        assert!(msg.contains("used()"), "unexpected message: {msg}");
    }
}

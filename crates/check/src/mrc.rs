//! Differential checking for the single-pass MRC engines.
//!
//! [`cache_sim::simulate_mrc`] promises that every grid point of a
//! multi-capacity run is *bit-identical* to replaying a single-capacity
//! cache at that point. This module enforces the promise against the
//! obviously-correct reference interpreters ([`crate::reference`]): one
//! MRC run per generated trace, one reference replay per grid point, full
//! counter comparison — and ddmin shrinking of the whole trace when any
//! point disagrees (the failing unit is a *grid point*, not a request
//! index, so the shrinker re-judges whole candidate traces).

use crate::fuzz::{generate_trace, shrink_with, FuzzConfig};
use crate::reference::reference_for;
use cache_sim::{simulate_mrc, MrcConfig};
use cache_trace::Trace;
use cache_types::{Policy, Request};

/// A minimal reproduction of an MRC-vs-reference disagreement.
#[derive(Debug, Clone)]
pub struct MrcDivergence {
    /// Registry algorithm name.
    pub algorithm: String,
    /// The grid capacity that disagreed.
    pub capacity: u64,
    /// The full capacity grid the engine ran with.
    pub grid: Vec<u64>,
    /// The generator seed that produced the original failing trace.
    pub seed: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The shrunk request sequence; replaying it through [`mrc_diff`]
    /// reproduces the divergence.
    pub trace: Vec<Request>,
}

impl std::fmt::Display for MrcDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} MRC @ capacity {} of grid {:?} diverged (seed {:#x}): {}",
            self.algorithm, self.capacity, self.grid, self.seed, self.detail
        )?;
        writeln!(f, "shrunk to {} requests:", self.trace.len())?;
        for (i, r) in self.trace.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {:?} id={} size={} t={}",
                r.op, r.id, r.size, r.time
            )?;
        }
        Ok(())
    }
}

/// Runs the MRC engine for `name` over `capacities` on `requests` and
/// replays a fresh reference interpreter at every grid point, comparing
/// requests, misses, evictions, and the f64 *bits* of both miss ratios.
/// Returns the first disagreeing grid index with a description, or `None`
/// when every point matches.
///
/// Grid capacities must be positive; a simulation error (e.g. an empty
/// grid) is reported as a divergence at grid index 0 rather than a panic so
/// the shrinker can keep driving.
pub fn mrc_diff(
    name: &str,
    requests: &[Request],
    capacities: &[u64],
    ignore_size: bool,
) -> Option<(usize, String)> {
    let trace = Trace::new("mrc-diff", requests.to_vec());
    let cfg = MrcConfig { ignore_size };
    let result = match simulate_mrc(name, &trace, capacities, &cfg) {
        Ok(r) => r,
        Err(e) => return Some((0, format!("simulate_mrc failed: {e}"))),
    };
    if result.points.len() != capacities.len() {
        return Some((
            0,
            format!(
                "{} points returned for a {}-point grid",
                result.points.len(),
                capacities.len()
            ),
        ));
    }
    for (grid_idx, (point, &cap)) in result.points.iter().zip(capacities.iter()).enumerate() {
        let Some(mut reference) = reference_for(name, cap) else {
            return Some((grid_idx, format!("no reference model for {name}")));
        };
        let mut evs = Vec::new();
        for r in &trace.requests {
            let req = if ignore_size {
                Request { size: 1, ..(*r) }
            } else {
                *r
            };
            evs.clear();
            reference.request(&req, &mut evs);
        }
        let stats = reference.stats();
        let engine = result.engine.as_str();
        if point.capacity != cap {
            return Some((
                grid_idx,
                format!("point capacity {} != grid {cap}", point.capacity),
            ));
        }
        if point.requests != stats.gets
            || point.misses != stats.misses
            || point.evictions != stats.evictions
        {
            return Some((
                grid_idx,
                format!(
                    "{engine} engine @ {cap}: req/miss/evict {}/{}/{} != reference {}/{}/{}",
                    point.requests,
                    point.misses,
                    point.evictions,
                    stats.gets,
                    stats.misses,
                    stats.evictions
                ),
            ));
        }
        if point.miss_ratio.to_bits() != stats.miss_ratio().to_bits() {
            return Some((
                grid_idx,
                format!(
                    "{engine} engine @ {cap}: miss ratio {} != reference {}",
                    point.miss_ratio,
                    stats.miss_ratio()
                ),
            ));
        }
        if point.byte_miss_ratio.to_bits() != stats.byte_miss_ratio().to_bits() {
            return Some((
                grid_idx,
                format!(
                    "{engine} engine @ {cap}: byte miss ratio {} != reference {}",
                    point.byte_miss_ratio,
                    stats.byte_miss_ratio()
                ),
            ));
        }
    }
    None
}

/// Fuzzes one `(algorithm, grid)` pair: generates the seeded trace for
/// `cfg`, runs [`mrc_diff`], and shrinks the whole trace on divergence.
/// Returns the number of requests replayed on success.
///
/// # Errors
///
/// Returns the shrunk [`MrcDivergence`] when any grid point disagrees with
/// its per-capacity reference replay.
pub fn fuzz_mrc(
    name: &str,
    capacities: &[u64],
    ignore_size: bool,
    cfg: &FuzzConfig,
) -> Result<usize, Box<MrcDivergence>> {
    let requests = generate_trace(cfg);
    match mrc_diff(name, &requests, capacities, ignore_size) {
        None => Ok(requests.len()),
        Some(_) => {
            let shrunk = shrink_with(
                &mut |cand| mrc_diff(name, cand, capacities, ignore_size).is_some(),
                requests,
            );
            // Invariant: the shrinker only returns candidates that still fail.
            let (grid_idx, detail) = mrc_diff(name, &shrunk, capacities, ignore_size)
                .expect("shrunk trace still fails by construction");
            Err(Box::new(MrcDivergence {
                algorithm: name.to_string(),
                capacity: capacities.get(grid_idx).copied().unwrap_or(0),
                grid: capacities.to_vec(),
                seed: cfg.seed,
                detail,
                trace: shrunk,
            }))
        }
    }
}

/// The degenerate and regular capacity grids the MRC differential sweeps:
/// a single point, capacity 1, duplicates, and an unsorted multi-point
/// grid. Shared by the in-tree test and the `check_gate` CI phase.
pub const MRC_GRIDS: &[&[u64]] = &[&[1], &[7], &[5, 5, 9], &[21, 1, 8, 3, 13, 2, 5]];

/// The algorithms the MRC differential covers: every FIFO-family name with
/// a multi-capacity engine, plus parameterized S3-FIFO.
pub const MRC_ALGORITHMS: &[&str] = &[
    "FIFO",
    "CLOCK",
    "CLOCK-2bit",
    "SIEVE",
    "S3-FIFO",
    "S3-FIFO(0.25)",
];

#[cfg(test)]
mod tests {
    use super::*;
    use cache_types::Op;

    /// Every MRC algorithm × degenerate grid × {pure-Get unit, mixed unit,
    /// sized} agrees with the reference at every grid point. The pure-Get
    /// unit mode drives FIFO through the exact insertion-index engine; the
    /// mixed modes drive the ganged lanes.
    #[test]
    fn mrc_engines_agree_with_reference() {
        let modes = [
            (1u32, 0u64, true),  // unit sizes, pure Get → exact FIFO path
            (1, 10, true),       // unit sizes with writes → ganged
            (6, 10, false),      // sized with writes → ganged
        ];
        for name in MRC_ALGORITHMS {
            for grid in MRC_GRIDS {
                for (max_size, write_percent, ignore_size) in modes {
                    let cfg = FuzzConfig {
                        seed: 0x3C19_AF05 ^ u64::from(max_size) << 8 ^ write_percent,
                        requests: 1_200,
                        max_size,
                        write_percent,
                        ..FuzzConfig::default()
                    };
                    if let Err(d) = fuzz_mrc(name, grid, ignore_size, &cfg) {
                        panic!("divergence:\n{d}");
                    }
                }
            }
        }
    }

    /// A broken grid must be reported as a divergence, not a panic.
    #[test]
    fn broken_grid_reports_divergence() {
        let reqs: Vec<Request> = (0..20u64).map(|t| Request::get(t % 5, t)).collect();
        assert!(mrc_diff("FIFO", &reqs, &[], true).is_some());
        assert!(mrc_diff("FIFO", &reqs, &[0], true).is_some());
        assert!(mrc_diff("FIFO", &reqs, &[4], true).is_none());
    }

    /// Seed the shrinker with a deliberately wrong comparison to prove the
    /// MRC divergence path shrinks: an engine "mutant" is simulated by
    /// diffing SIEVE's MRC against CLOCK's reference model.
    #[test]
    fn cross_policy_diff_diverges_and_shrinks() {
        let cfg = FuzzConfig {
            requests: 1_500,
            write_percent: 0,
            ..FuzzConfig::default()
        };
        let requests = generate_trace(&cfg);
        // SIEVE vs SIEVE agrees...
        assert!(mrc_diff("SIEVE", &requests, &[2, 8], true).is_none());
        // ...but a trace exists where SIEVE's curve differs from CLOCK's;
        // pretend the engine is broken by diffing mismatched policies.
        let mut fails = |cand: &[Request]| -> bool {
            let t = Trace::new("x", cand.to_vec());
            let sieve = simulate_mrc("SIEVE", &t, &[4], &MrcConfig::default())
                .expect("valid grid");
            // Invariant: the grid [4] is non-empty and zero-free.
            let mut clock = reference_for("CLOCK", 4).expect("CLOCK reference exists");
            // Invariant: CLOCK has a reference interpreter.
            let mut evs = Vec::new();
            for r in &t.requests {
                let req = Request { size: 1, ..(*r) };
                evs.clear();
                clock.request(&req, &mut evs);
            }
            sieve.points[0].misses != clock.stats().misses
        };
        assert!(fails(&requests), "SIEVE and CLOCK must differ somewhere");
        let shrunk = shrink_with(&mut fails, requests);
        assert!(fails(&shrunk), "shrunk trace must still reproduce");
        assert!(
            shrunk.len() <= 24,
            "expected a small reproduction, got {} requests",
            shrunk.len()
        );
    }

    #[test]
    fn pure_get_mode_generates_only_gets() {
        let cfg = FuzzConfig {
            write_percent: 0,
            max_size: 1,
            ..FuzzConfig::default()
        };
        assert!(generate_trace(&cfg).iter().all(|r| r.op == Op::Get));
    }
}

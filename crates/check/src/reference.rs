//! Tiny, obviously-correct reference interpreters for the queue policies.
//!
//! Each interpreter is a naive `Vec`-based executable specification of one
//! eviction algorithm: no handles, no intrusive links, no incremental byte
//! accounting — every quantity is recomputed by scanning. They exist to be
//! *read and believed*, then used as the ground truth the differential
//! fuzzer ([`crate::fuzz`]) compares the optimized keyed and dense
//! implementations against, decision for decision.
//!
//! Conventions shared with the production policies:
//!
//! - `Vec` index 0 is the queue **tail** (oldest, next eviction candidate);
//!   `push` appends at the **head** (newest). This mirrors the `DList`
//!   orientation where `push_front` inserts the newest entry.
//! - A `Get` of a resident object touches metadata only; a `Get` of an
//!   absent object larger than the whole cache is `Uncacheable`, otherwise
//!   it is a read-through `Miss` that inserts after making room. A `Set`
//!   deletes any existing entry and re-inserts when the object fits; a
//!   `Delete` removes. Hits never update the stored size.
//! - Ghost queues charge every FIFO slot — including tombstones left by
//!   `remove` — until the slot ages out, exactly like the production
//!   `GhostList`/`GhostFifo`/`SlotGhost` trio.

use cache_types::{Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::{HashSet, VecDeque};

/// Per-object bookkeeping every reference keeps, mirroring the fields the
/// production policies report in [`Eviction`] records.
#[derive(Debug, Clone, Copy)]
struct RefMeta {
    size: u32,
    insert_time: u64,
    last_access: u64,
    hits: u32,
}

impl RefMeta {
    fn new(size: u32, now: u64) -> Self {
        RefMeta {
            size,
            insert_time: now,
            last_access: now,
            hits: 0,
        }
    }

    fn touch(&mut self, now: u64) {
        self.hits += 1;
        self.last_access = now;
    }

    fn eviction(&self, id: ObjId, from_probationary: bool) -> Eviction {
        Eviction {
            id,
            size: self.size,
            insert_time: self.insert_time,
            last_access_time: self.last_access,
            freq: self.hits,
            from_probationary,
        }
    }
}

/// Byte-bounded FIFO ghost with tombstone semantics: `remove` clears only
/// the membership mark, the FIFO slot stays charged until it ages out.
#[derive(Debug, Default)]
struct RefGhost {
    fifo: VecDeque<(ObjId, u32)>,
    set: HashSet<ObjId>,
    capacity: u64,
}

impl RefGhost {
    fn new(capacity: u64) -> Self {
        RefGhost {
            capacity,
            ..RefGhost::default()
        }
    }

    fn used(&self) -> u64 {
        self.fifo.iter().map(|&(_, s)| u64::from(s)).sum()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.set.contains(&id)
    }

    fn insert(&mut self, id: ObjId, size: u32) {
        if self.capacity == 0 {
            return;
        }
        if self.set.insert(id) {
            self.fifo.push_back((id, size));
        }
        while self.used() > self.capacity {
            match self.fifo.pop_front() {
                Some((old, _)) => {
                    self.set.remove(&old);
                }
                None => break,
            }
        }
    }

    fn remove(&mut self, id: ObjId) -> bool {
        self.set.remove(&id)
    }
}

/// One entry of a reference queue: id, per-policy counter/flag, metadata.
#[derive(Debug, Clone, Copy)]
struct Node {
    id: ObjId,
    /// CLOCK/S3-FIFO capped frequency, SIEVE visited bit (0/1). Unused by
    /// FIFO/LRU/SLRU/2Q.
    freq: u8,
    meta: RefMeta,
}

fn bytes_of(q: &[Node]) -> u64 {
    q.iter().map(|n| u64::from(n.meta.size)).sum()
}

fn find(q: &[Node], id: ObjId) -> Option<usize> {
    q.iter().position(|n| n.id == id)
}

/// Which of the seven reference algorithms an interpreter runs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Algo {
    Fifo,
    Lru,
    /// CLOCK with the given saturation cap (`2^bits - 1`).
    Clock(u8),
    Sieve,
    Slru,
    TwoQ,
    /// S3-FIFO with the given small-queue ratio.
    S3Fifo(f64),
}

/// A naive executable specification of one queue policy.
///
/// All seven algorithms share this struct; unused queues stay empty. The
/// per-request logic lives in small per-algorithm methods written to follow
/// the production implementations statement for statement, but over plain
/// `Vec`s so each step is obviously what the algorithm prescribes.
#[derive(Debug)]
pub struct ReferencePolicy {
    algo: Algo,
    capacity: u64,
    /// FIFO/LRU/CLOCK/SIEVE: the only queue. S3-FIFO: the small queue.
    /// 2Q: A1in.
    q0: Vec<Node>,
    /// S3-FIFO: the main queue. 2Q: Am.
    q1: Vec<Node>,
    /// SLRU's four segments (index 0 probationary).
    segs: [Vec<Node>; 4],
    ghost: RefGhost,
    /// SIEVE's hand, stored as the id it points at (`None` = start at tail).
    hand: Option<ObjId>,
    stats: PolicyStats,
}

impl ReferencePolicy {
    fn new(algo: Algo, capacity: u64) -> Self {
        let ghost = match algo {
            Algo::TwoQ => RefGhost::new((capacity as f64 * 0.5).round() as u64),
            Algo::S3Fifo(ratio) => {
                let s_cap = ((capacity as f64 * ratio).round() as u64).max(1);
                let m_cap = capacity.saturating_sub(s_cap).max(1);
                RefGhost::new(m_cap) // ghost_ratio 1.0 of main capacity
            }
            _ => RefGhost::new(0),
        };
        ReferencePolicy {
            algo,
            capacity,
            q0: Vec::new(),
            q1: Vec::new(),
            segs: std::array::from_fn(|_| Vec::new()),
            ghost,
            hand: None,
            stats: PolicyStats::default(),
        }
    }

    // ---- shared residency helpers -------------------------------------

    fn all_queues(&self) -> impl Iterator<Item = &Node> {
        self.q0
            .iter()
            .chain(self.q1.iter())
            .chain(self.segs.iter().flatten())
    }

    fn resident(&self, id: ObjId) -> bool {
        self.all_queues().any(|n| n.id == id)
    }

    fn used_bytes(&self) -> u64 {
        self.all_queues().map(|n| u64::from(n.meta.size)).sum()
    }

    fn count(&self) -> usize {
        self.all_queues().count()
    }

    // ---- S3-FIFO (mirrors s3fifo::S3Fifo / Algorithm 1) ----------------

    fn s3_small_capacity(&self) -> u64 {
        let Algo::S3Fifo(ratio) = self.algo else {
            unreachable!("s3 helper on non-S3 reference");
        };
        ((self.capacity as f64 * ratio).round() as u64).max(1)
    }

    fn s3_main_capacity(&self) -> u64 {
        self.capacity.saturating_sub(self.s3_small_capacity()).max(1)
    }

    /// `EVICTS`: promote small-tail entries with freq above the threshold
    /// (clearing the counter), ghost the first one at or below it.
    fn s3_evict_small(&mut self, evicted: &mut Vec<Eviction>) {
        while !self.q0.is_empty() {
            let tail = self.q0[0];
            if tail.freq > 1 {
                self.q0.remove(0);
                self.q1.push(Node { freq: 0, ..tail });
                if bytes_of(&self.q1) > self.s3_main_capacity() {
                    self.s3_evict_main(evicted);
                }
            } else {
                self.q0.remove(0);
                self.ghost.insert(tail.id, tail.meta.size);
                self.stats.evictions += 1;
                evicted.push(tail.meta.eviction(tail.id, true));
                return;
            }
        }
        if !self.q1.is_empty() {
            self.s3_evict_main(evicted);
        }
    }

    /// `EVICTM`: two-bit FIFO-reinsertion.
    fn s3_evict_main(&mut self, evicted: &mut Vec<Eviction>) {
        while !self.q1.is_empty() {
            if self.q1[0].freq > 0 {
                let mut n = self.q1.remove(0);
                n.freq -= 1;
                self.q1.push(n);
            } else {
                let n = self.q1.remove(0);
                self.stats.evictions += 1;
                evicted.push(n.meta.eviction(n.id, false));
                return;
            }
        }
    }

    fn s3_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        // Ghost membership is decided before making room, because the
        // eviction loop inserts into the ghost itself.
        let in_ghost = self.ghost.contains(req.id);
        while self.used_bytes() + u64::from(req.size) > self.capacity {
            if bytes_of(&self.q0) >= self.s3_small_capacity() || self.q1.is_empty() {
                self.s3_evict_small(evicted);
            } else {
                self.s3_evict_main(evicted);
            }
            if self.q0.is_empty() && self.q1.is_empty() {
                break;
            }
        }
        let node = Node {
            id: req.id,
            freq: 0,
            meta: RefMeta::new(req.size, req.time),
        };
        if in_ghost {
            self.ghost.remove(req.id);
            self.q1.push(node);
            if bytes_of(&self.q1) > self.s3_main_capacity() {
                self.s3_evict_main(evicted);
            }
        } else {
            self.q0.push(node);
        }
    }

    // ---- 2Q (mirrors cache_policies::TwoQ) -----------------------------

    fn twoq_a1in_capacity(&self) -> u64 {
        ((self.capacity as f64 * 0.25).round() as u64).max(1)
    }

    /// RECLAIM: drop the A1in tail into A1out when A1in is at or over its
    /// share (or Am is empty); otherwise evict the Am LRU tail.
    fn twoq_evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        let reclaim_a1in = bytes_of(&self.q0) >= self.twoq_a1in_capacity() || self.q1.is_empty();
        if reclaim_a1in && !self.q0.is_empty() {
            let n = self.q0.remove(0);
            self.ghost.insert(n.id, n.meta.size);
            self.stats.evictions += 1;
            evicted.push(n.meta.eviction(n.id, true));
            return;
        }
        if !self.q1.is_empty() {
            let n = self.q1.remove(0);
            self.stats.evictions += 1;
            evicted.push(n.meta.eviction(n.id, false));
        }
    }

    fn twoq_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        let in_a1out = self.ghost.remove(req.id);
        while self.used_bytes() + u64::from(req.size) > self.capacity && self.count() > 0 {
            self.twoq_evict_one(evicted);
        }
        let node = Node {
            id: req.id,
            freq: 0,
            meta: RefMeta::new(req.size, req.time),
        };
        if in_a1out {
            self.q1.push(node);
        } else {
            self.q0.push(node);
        }
    }

    // ---- SLRU (mirrors cache_policies::Slru) ---------------------------

    fn slru_seg_capacity(&self) -> u64 {
        (self.capacity / 4).max(1)
    }

    /// Demote tails of over-share segments into the segment below, down to
    /// the probationary segment (which absorbs the cascade).
    fn slru_rebalance_from(&mut self, seg: usize) {
        for s in (1..=seg).rev() {
            while bytes_of(&self.segs[s]) > self.slru_seg_capacity() {
                if self.segs[s].is_empty() {
                    break;
                }
                let n = self.segs[s].remove(0);
                self.segs[s - 1].push(n);
            }
        }
    }

    fn slru_evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        for s in 0..4 {
            if !self.segs[s].is_empty() {
                let n = self.segs[s].remove(0);
                self.stats.evictions += 1;
                evicted.push(n.meta.eviction(n.id, s == 0));
                return;
            }
        }
    }

    fn slru_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used_bytes() + u64::from(req.size) > self.capacity && self.count() > 0 {
            self.slru_evict_one(evicted);
        }
        self.segs[0].push(Node {
            id: req.id,
            freq: 0,
            meta: RefMeta::new(req.size, req.time),
        });
    }

    fn slru_on_hit(&mut self, id: ObjId, now: u64) {
        // Invariant: on_hit is only called for resident ids.
        let seg = (0..4)
            .find(|&s| find(&self.segs[s], id).is_some())
            .expect("hit id in some segment");
        let pos = find(&self.segs[seg], id).expect("position exists");
        let target = (seg + 1).min(3);
        let mut n = self.segs[seg].remove(pos);
        n.meta.touch(now);
        self.segs[target].push(n);
        if target != seg {
            self.slru_rebalance_from(target);
        }
    }

    // ---- SIEVE (mirrors cache_policies::Sieve) -------------------------

    fn sieve_evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if self.q0.is_empty() {
            return;
        }
        // Resume from the hand when it still points at a live node,
        // otherwise from the tail.
        let mut i = self
            .hand
            .and_then(|h| find(&self.q0, h))
            .unwrap_or(0);
        loop {
            if self.q0[i].freq != 0 {
                self.q0[i].freq = 0;
                // Toward the head; wrap to the tail past the newest entry.
                i = if i + 1 < self.q0.len() { i + 1 } else { 0 };
            } else {
                let n = self.q0.remove(i);
                // The hand moves to the neighbour toward the head (which
                // now sits at index `i`), or clears when the head was
                // evicted.
                self.hand = self.q0.get(i).map(|m| m.id);
                self.stats.evictions += 1;
                evicted.push(n.meta.eviction(n.id, false));
                return;
            }
        }
    }

    // ---- single-queue shared insert/delete -----------------------------

    fn single_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used_bytes() + u64::from(req.size) > self.capacity && !self.q0.is_empty() {
            match self.algo {
                Algo::Fifo | Algo::Lru => {
                    let n = self.q0.remove(0);
                    self.stats.evictions += 1;
                    evicted.push(n.meta.eviction(n.id, false));
                }
                Algo::Clock(_) => loop {
                    if self.q0[0].freq > 0 {
                        let mut n = self.q0.remove(0);
                        n.freq -= 1;
                        self.q0.push(n);
                    } else {
                        let n = self.q0.remove(0);
                        self.stats.evictions += 1;
                        evicted.push(n.meta.eviction(n.id, false));
                        break;
                    }
                },
                Algo::Sieve => self.sieve_evict_one(evicted),
                _ => unreachable!("single-queue insert on multi-queue algo"),
            }
        }
        self.q0.push(Node {
            id: req.id,
            freq: 0,
            meta: RefMeta::new(req.size, req.time),
        });
    }

    fn delete(&mut self, id: ObjId) {
        if self.algo == Algo::Sieve && self.hand == Some(id) {
            // The hand steps to the neighbour toward the head, like the
            // production policy re-pointing `prev_handle`.
            let p = find(&self.q0, id).expect("hand id resident");
            self.hand = self.q0.get(p + 1).map(|n| n.id);
        }
        if let Some(p) = find(&self.q0, id) {
            self.q0.remove(p);
        } else if let Some(p) = find(&self.q1, id) {
            self.q1.remove(p);
        } else {
            for s in 0..4 {
                if let Some(p) = find(&self.segs[s], id) {
                    self.segs[s].remove(p);
                    return;
                }
            }
        }
    }

    fn on_hit(&mut self, req: &Request) {
        match self.algo {
            Algo::Fifo => {
                // Invariant: on_hit is only called for resident ids.
                let p = find(&self.q0, req.id).expect("hit id resident");
                self.q0[p].meta.touch(req.time);
            }
            Algo::Lru => {
                // Invariant: on_hit is only called for resident ids.
                let p = find(&self.q0, req.id).expect("hit id resident");
                let mut n = self.q0.remove(p);
                n.meta.touch(req.time);
                self.q0.push(n); // move to head (MRU)
            }
            Algo::Clock(max_freq) => {
                let p = find(&self.q0, req.id).expect("hit id resident");
                self.q0[p].freq = (self.q0[p].freq + 1).min(max_freq);
                self.q0[p].meta.touch(req.time);
            }
            Algo::Sieve => {
                // Invariant: on_hit is only called for resident ids.
                let p = find(&self.q0, req.id).expect("hit id resident");
                self.q0[p].freq = 1; // visited bit
                self.q0[p].meta.touch(req.time);
            }
            Algo::Slru => self.slru_on_hit(req.id, req.time),
            Algo::TwoQ => {
                // A1in hits touch only (FIFO); Am hits promote to MRU.
                if let Some(p) = find(&self.q0, req.id) {
                    self.q0[p].meta.touch(req.time);
                } else {
                    let p = find(&self.q1, req.id).expect("hit id resident");
                    let mut n = self.q1.remove(p);
                    n.meta.touch(req.time);
                    self.q1.push(n);
                }
            }
            Algo::S3Fifo(_) => {
                let q = if find(&self.q0, req.id).is_some() {
                    &mut self.q0
                } else {
                    &mut self.q1
                };
                // Invariant: on_hit is only called for resident ids.
                let p = find(q, req.id).expect("hit id resident");
                q[p].freq = (q[p].freq + 1).min(3);
                q[p].meta.touch(req.time);
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        match self.algo {
            Algo::Fifo | Algo::Lru | Algo::Clock(_) | Algo::Sieve => {
                self.single_insert(req, evicted);
            }
            Algo::Slru => self.slru_insert(req, evicted),
            Algo::TwoQ => self.twoq_insert(req, evicted),
            Algo::S3Fifo(_) => self.s3_insert(req, evicted),
        }
    }
}

impl Policy for ReferencePolicy {
    fn name(&self) -> String {
        match self.algo {
            Algo::Fifo => "Ref<FIFO>".into(),
            Algo::Lru => "Ref<LRU>".into(),
            Algo::Clock(m) => format!("Ref<CLOCK max={m}>"),
            Algo::Sieve => "Ref<SIEVE>".into(),
            Algo::Slru => "Ref<SLRU>".into(),
            Algo::TwoQ => "Ref<2Q>".into(),
            Algo::S3Fifo(r) => format!("Ref<S3-FIFO({r:.2})>"),
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_bytes()
    }

    fn len(&self) -> usize {
        self.count()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.resident(id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.resident(req.id) {
                    self.on_hit(req);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.used_bytes() > self.capacity {
            return Err(format!(
                "{}: used {} > capacity {}",
                self.name(),
                self.used_bytes(),
                self.capacity
            ));
        }
        let mut seen = HashSet::new();
        for n in self.all_queues() {
            if !seen.insert(n.id) {
                return Err(format!("{}: id {} resident twice", self.name(), n.id));
            }
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Builds the reference interpreter for a registry algorithm name, or
/// `None` when the algorithm has no reference model (the fuzzer then skips
/// the name). Accepts the same `"S3-FIFO(r)"` parameterized form as the
/// registry.
pub fn reference_for(name: &str, capacity: u64) -> Option<ReferencePolicy> {
    if let Some(inner) = name
        .strip_prefix("S3-FIFO(")
        .and_then(|rest| rest.strip_suffix(')'))
    {
        let ratio: f64 = inner.parse().ok()?;
        return Some(ReferencePolicy::new(Algo::S3Fifo(ratio), capacity));
    }
    let algo = match name {
        "FIFO" => Algo::Fifo,
        "LRU" => Algo::Lru,
        "CLOCK" => Algo::Clock(1),
        "CLOCK-2bit" => Algo::Clock(3),
        "SIEVE" => Algo::Sieve,
        "SLRU" => Algo::Slru,
        "2Q" => Algo::TwoQ,
        "S3-FIFO" => Algo::S3Fifo(0.1),
        _ => return None,
    };
    Some(ReferencePolicy::new(algo, capacity))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(p: &mut ReferencePolicy, id: ObjId, t: u64) -> Outcome {
        let mut evs = Vec::new();
        p.request(&Request::get(id, t), &mut evs)
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut p = reference_for("FIFO", 2).unwrap();
        get(&mut p, 1, 0);
        get(&mut p, 2, 1);
        get(&mut p, 1, 2); // hit, no reorder
        let mut evs = Vec::new();
        p.request(&Request::get(3, 3), &mut evs);
        assert_eq!(evs[0].id, 1);
        assert_eq!(evs[0].freq, 1);
    }

    #[test]
    fn lru_keeps_recent() {
        let mut p = reference_for("LRU", 2).unwrap();
        get(&mut p, 1, 0);
        get(&mut p, 2, 1);
        get(&mut p, 1, 2);
        let mut evs = Vec::new();
        p.request(&Request::get(3, 3), &mut evs);
        assert_eq!(evs[0].id, 2);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = reference_for("CLOCK", 2).unwrap();
        get(&mut p, 1, 0);
        get(&mut p, 2, 1);
        get(&mut p, 1, 2);
        let mut evs = Vec::new();
        p.request(&Request::get(3, 3), &mut evs);
        assert_eq!(evs[0].id, 2);
        assert!(p.contains(1));
    }

    #[test]
    fn sieve_keeps_visited_in_place() {
        let mut p = reference_for("SIEVE", 3).unwrap();
        for id in 1..=3 {
            get(&mut p, id, id);
        }
        get(&mut p, 1, 10); // visit tail
        let mut evs = Vec::new();
        p.request(&Request::get(4, 11), &mut evs);
        assert_eq!(evs[0].id, 2, "hand clears 1's bit then evicts 2");
        assert!(p.contains(1));
    }

    #[test]
    fn s3fifo_one_hit_wonders_ghost() {
        let mut p = reference_for("S3-FIFO", 100).unwrap();
        for i in 0..150 {
            get(&mut p, i, i);
        }
        assert!(p.q1.is_empty(), "a pure scan never populates M");
        assert!(!p.ghost.set.is_empty());
        // Ghost hit resurrects into main.
        let ghosted = (0..150).find(|&i| p.ghost.contains(i)).unwrap();
        assert_eq!(get(&mut p, ghosted, 1000), Outcome::Miss);
        assert!(find(&p.q1, ghosted).is_some());
    }

    #[test]
    fn twoq_ghost_hit_promotes() {
        let mut p = reference_for("2Q", 20).unwrap();
        for id in 0..40 {
            get(&mut p, id, id);
        }
        assert!(p.q1.is_empty(), "a scan never populates Am");
        let ghosted = (0..40).find(|&i| p.ghost.contains(i)).unwrap();
        get(&mut p, ghosted, 100);
        assert!(find(&p.q1, ghosted).is_some());
    }

    #[test]
    fn slru_hits_climb_segments() {
        let mut p = reference_for("SLRU", 40).unwrap();
        for t in 0..5 {
            get(&mut p, 1, t);
        }
        assert!(find(&p.segs[3], 1).is_some(), "caps at the top segment");
    }

    #[test]
    fn unknown_name_has_no_reference() {
        assert!(reference_for("LIRS", 10).is_none());
        assert!(reference_for("Belady", 10).is_none());
    }
}

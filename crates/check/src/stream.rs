//! Differential checking for the out-of-core streamed replayer.
//!
//! [`cache_sim::replay_ctr_windowed`] promises that replaying a `.ctr`
//! stream in bounded chunks is *bit-identical* to materializing the trace
//! and replaying it in memory — same counters, same f64 bits, same
//! per-window miss-ratio series. This module enforces the promise on any
//! trace small enough to run both ways: encode a generated trace to the
//! binary format, replay it streamed at several chunk sizes, replay the
//! decoded trace through [`cache_sim::simulate_named_windowed`], and
//! compare everything — with ddmin shrinking of the request sequence when
//! they disagree (each shrink candidate is re-encoded, so the reproduction
//! is always a self-contained trace).

use crate::fuzz::{generate_trace, shrink_with, FuzzConfig};
use cache_sim::{replay_ctr_windowed, simulate_named_windowed, CacheSizeSpec, SimConfig};
use cache_trace::ctr::{read_trace, write_trace, CtrReader};
use cache_trace::Trace;
use cache_types::Request;
use std::io::Cursor;

/// A minimal reproduction of a streamed-vs-in-memory disagreement.
#[derive(Debug, Clone)]
pub struct StreamDivergence {
    /// Registry algorithm name.
    pub algorithm: String,
    /// Cache capacity both replays used.
    pub capacity: u64,
    /// Series window length (reads per window).
    pub window: u64,
    /// Streaming chunk size (records) that diverged.
    pub chunk: usize,
    /// The generator seed that produced the original failing trace.
    pub seed: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The shrunk request sequence; replaying it through [`stream_diff`]
    /// reproduces the divergence.
    pub trace: Vec<Request>,
}

impl std::fmt::Display for StreamDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} streamed replay @ capacity {} window {} chunk {} diverged (seed {:#x}): {}",
            self.algorithm, self.capacity, self.window, self.chunk, self.seed, self.detail
        )?;
        writeln!(f, "shrunk to {} requests:", self.trace.len())?;
        for (i, r) in self.trace.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {:?} id={} size={} t={}",
                r.op, r.id, r.size, r.time
            )?;
        }
        Ok(())
    }
}

/// Encodes `requests` as a `.ctr` stream, replays it both ways, and
/// compares final counters, every f64 bit for bit, and the per-window
/// series point by point. Returns a description of the first disagreement,
/// or `None` when the two replays are identical.
///
/// The in-memory side replays the *decoded* trace (dense ids), which is
/// exactly the request sequence the streamed side sees — the id-table
/// bijection is `cache-trace`'s own roundtrip contract, tested there.
pub fn stream_diff(
    name: &str,
    requests: &[Request],
    capacity: u64,
    window: u64,
    chunk: usize,
    ignore_size: bool,
) -> Option<String> {
    let trace = Trace::new("stream-diff", requests.to_vec());
    let bytes = match write_trace(&trace, Cursor::new(Vec::new())) {
        Ok((cursor, _)) => cursor.into_inner(),
        Err(e) => return Some(format!("encoding failed: {e}")),
    };
    let (decoded, _info) = match read_trace("stream-diff", Cursor::new(&bytes)) {
        Ok(t) => t,
        Err(e) => return Some(format!("decoding failed: {e}")),
    };
    let cfg = SimConfig {
        size: CacheSizeSpec::Bytes(capacity),
        ignore_size,
        min_objects: 0,
        floor_objects: 0,
    };
    let (mem_result, mem_series) = match simulate_named_windowed(name, &decoded, &cfg, window) {
        Ok(Some(pair)) => pair,
        Ok(None) => return Some("in-memory replay was filtered out".into()),
        Err(e) => return Some(format!("in-memory replay failed: {e}")),
    };
    let mut reader = match CtrReader::open(Cursor::new(&bytes)) {
        Ok(r) => r,
        Err(e) => return Some(format!("reader open failed: {e}")),
    };
    let streamed = match replay_ctr_windowed(
        name,
        &mut reader,
        "stream-diff",
        capacity,
        ignore_size,
        window,
        chunk,
    ) {
        Ok(s) => s,
        Err(e) => return Some(format!("streamed replay failed: {e}")),
    };
    let s = &streamed.result;
    if s.requests != mem_result.requests
        || s.misses != mem_result.misses
        || s.evictions != mem_result.evictions
    {
        return Some(format!(
            "req/miss/evict {}/{}/{} != in-memory {}/{}/{}",
            s.requests,
            s.misses,
            s.evictions,
            mem_result.requests,
            mem_result.misses,
            mem_result.evictions
        ));
    }
    for (label, a, b) in [
        ("miss ratio", s.miss_ratio, mem_result.miss_ratio),
        (
            "byte miss ratio",
            s.byte_miss_ratio,
            mem_result.byte_miss_ratio,
        ),
        (
            "one-hit eviction fraction",
            s.one_hit_eviction_fraction,
            mem_result.one_hit_eviction_fraction,
        ),
    ] {
        if a.to_bits() != b.to_bits() {
            return Some(format!("{label} {a} != in-memory {b}"));
        }
    }
    if streamed.series.points().len() != mem_series.points().len() {
        return Some(format!(
            "{} series windows != in-memory {}",
            streamed.series.points().len(),
            mem_series.points().len()
        ));
    }
    for (sp, mp) in streamed.series.points().iter().zip(mem_series.points()) {
        if sp.requests != mp.requests || sp.misses != mp.misses || sp.start_index != mp.start_index
        {
            return Some(format!(
                "window {}: {}req/{}miss@{} != in-memory {}req/{}miss@{}",
                sp.window,
                sp.requests,
                sp.misses,
                sp.start_index,
                mp.requests,
                mp.misses,
                mp.start_index
            ));
        }
    }
    None
}

/// Fuzzes one `(algorithm, window, chunk)` triple: generates the seeded
/// trace for `cfg`, runs [`stream_diff`], and ddmin-shrinks the trace on
/// divergence. Returns the number of requests replayed on success.
///
/// # Errors
///
/// Returns the shrunk [`StreamDivergence`] when the streamed replay
/// disagrees with the in-memory replay anywhere.
pub fn fuzz_stream(
    name: &str,
    capacity: u64,
    window: u64,
    chunk: usize,
    ignore_size: bool,
    cfg: &FuzzConfig,
) -> Result<usize, Box<StreamDivergence>> {
    let requests = generate_trace(cfg);
    match stream_diff(name, &requests, capacity, window, chunk, ignore_size) {
        None => Ok(requests.len()),
        Some(_) => {
            let shrunk = shrink_with(
                &mut |cand| {
                    stream_diff(name, cand, capacity, window, chunk, ignore_size).is_some()
                },
                requests,
            );
            // Invariant: the shrinker only returns candidates that still fail.
            let detail = stream_diff(name, &shrunk, capacity, window, chunk, ignore_size)
                .expect("shrunk trace still fails by construction");
            Err(Box::new(StreamDivergence {
                algorithm: name.to_string(),
                capacity,
                window,
                chunk,
                seed: cfg.seed,
                detail,
                trace: shrunk,
            }))
        }
    }
}

/// The three workload shapes the streamed differential sweeps: pure-Get
/// unit-size (the paper's default mode), mixed ops at unit size (exercises
/// the read-aligned window chunker), and mixed ops with sizes (exercises
/// byte accounting). Each is `(max_size, write_percent, ignore_size)`.
pub const STREAM_SHAPES: &[(u32, u64, bool)] = &[(1, 0, true), (1, 12, true), (9, 12, false)];

/// The algorithms the streamed differential covers: the whole dense FIFO
/// family (including parameterized S3-FIFO) plus keyed-only fallbacks.
/// `Belady` is deliberately absent — it cannot stream.
pub const STREAM_ALGORITHMS: &[&str] = &[
    "FIFO",
    "LRU",
    "CLOCK",
    "CLOCK-2bit",
    "SIEVE",
    "SLRU",
    "2Q",
    "S3-FIFO",
    "S3-FIFO(0.25)",
    "ARC",
    "TinyLFU",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Every streamed algorithm × workload shape × awkward chunk size
    /// agrees with the in-memory replay bit for bit.
    #[test]
    fn streamed_replay_agrees_with_in_memory() {
        for name in STREAM_ALGORITHMS {
            for &(max_size, write_percent, ignore_size) in STREAM_SHAPES {
                for chunk in [13usize, 997] {
                    let cfg = FuzzConfig {
                        seed: 0x57AE_A001 ^ u64::from(max_size) << 8 ^ write_percent,
                        requests: 1_100,
                        max_size,
                        write_percent,
                        ..FuzzConfig::default()
                    };
                    if let Err(d) = fuzz_stream(name, 48, 100, chunk, ignore_size, &cfg) {
                        panic!("divergence:\n{d}");
                    }
                }
            }
        }
    }

    /// Window length 1 and chunk length 1 — the degenerate extremes.
    #[test]
    fn degenerate_window_and_chunk() {
        let cfg = FuzzConfig {
            requests: 300,
            write_percent: 10,
            ..FuzzConfig::default()
        };
        if let Err(d) = fuzz_stream("S3-FIFO", 16, 1, 1, true, &cfg) {
            panic!("divergence:\n{d}");
        }
    }

    /// A planted mutant must be caught *and* shrink to a small trace: diff
    /// S3-FIFO's streamed replay against LRU's in-memory replay.
    #[test]
    fn planted_mutant_diverges_and_shrinks() {
        let cfg = FuzzConfig {
            requests: 1_000,
            write_percent: 0,
            ..FuzzConfig::default()
        };
        let requests = generate_trace(&cfg);
        let mut fails = |cand: &[Request]| -> bool {
            let trace = Trace::new("mutant", cand.to_vec());
            let bytes = match write_trace(&trace, Cursor::new(Vec::new())) {
                Ok((c, _)) => c.into_inner(),
                Err(_) => return false,
            };
            let mut reader = match CtrReader::open(Cursor::new(&bytes)) {
                Ok(r) => r,
                Err(_) => return false,
            };
            let streamed =
                match replay_ctr_windowed("S3-FIFO", &mut reader, "m", 8, true, 50, 100) {
                    Ok(s) => s,
                    Err(_) => return false,
                };
            let (decoded, _) = match read_trace("m", Cursor::new(&bytes)) {
                Ok(t) => t,
                Err(_) => return false,
            };
            let cfg = SimConfig {
                size: CacheSizeSpec::Bytes(8),
                ignore_size: true,
                min_objects: 0,
                floor_objects: 0,
            };
            let (lru, _) = simulate_named_windowed("LRU", &decoded, &cfg, 50)
                .expect("LRU is a known policy")
                .expect("no filter configured");
            streamed.result.misses != lru.misses
        };
        assert!(fails(&requests), "S3-FIFO and LRU must differ somewhere");
        let shrunk = shrink_with(&mut fails, requests);
        assert!(fails(&shrunk), "shrunk trace must still reproduce");
        assert!(
            shrunk.len() <= 32,
            "expected a small reproduction, got {} requests",
            shrunk.len()
        );
    }

    #[test]
    fn stream_diff_reports_unstreamable_policy() {
        let reqs: Vec<Request> = (0..10u64).map(|t| Request::get(t % 3, t)).collect();
        let detail = stream_diff("Belady", &reqs, 4, 5, 100, true);
        assert!(detail.is_some(), "Belady cannot stream and must say so");
    }
}

//! Linearizability-lite checking of logged concurrent histories.
//!
//! Input histories come from [`cache_concurrent::oplog::run_logged_torture`]:
//! every operation carries a real-time interval `[start, end]` drawn from one
//! global SeqCst counter, and every insert writes a globally-unique value.
//!
//! A cache is a weak data structure — it may *evict* (forget) any key at any
//! moment — so most operations are unconstrained: a `Get` returning `None`
//! is always legal, and `Remove`'s return cannot be pinned down. What a
//! linearizable cache can never do is return a **stale or fabricated value**.
//! Exploiting unique insert values, [`check_history`] flags exactly those:
//!
//! - **torn/forged read**: a `Get` observed a payload no insert ever wrote
//!   (wrong key bytes, torn write — the harness encodes these as
//!   `u64::MAX`), or a value with no matching insert on that key;
//! - **read before write**: a `Get` completed before the insert of the value
//!   it returned began;
//! - **stale read**: some other write to the key (a later insert, or a
//!   remove) *definitely* intervened — it started after the matching insert
//!   ended and ended before the get started — yet the old value came back.
//!   Eviction cannot excuse this: eviction only makes values disappear,
//!   never reappear.
//!
//! [`check_monotonic`] adds a cross-get rule the per-get rules cannot
//! express: two ordered gets on one key may never observe two values whose
//! inserts provably ran in the opposite order (version regression). It is
//! run alongside [`check_history`] by the gate, on histories recorded in
//! the oplog's monotonic-version mode.
//!
//! This is sound but deliberately incomplete ("lite"): a history can be
//! non-linearizable in ways these per-key interval rules miss. The
//! [`witness_exists`] brute-force search — feasible only on tiny histories —
//! checks full linearizability and is used in tests to confirm soundness:
//! whenever `check_history` flags a history, no sequential witness exists.

use cache_concurrent::oplog::{OpKind, OpRecord};
use std::collections::HashMap;

/// One detected consistency violation.
#[derive(Debug, Clone)]
pub struct LinearViolation {
    /// Key the violating get operated on.
    pub key: u64,
    /// The get that observed the impossible value.
    pub get: OpRecord,
    /// What rule it broke.
    pub detail: String,
}

impl std::fmt::Display for LinearViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "key {}: {} (get by thread {} over [{}, {}])",
            self.key, self.detail, self.get.thread, self.get.start, self.get.end
        )
    }
}

/// Checks a logged history for stale, forged, or time-travelling reads.
/// Returns every violation found (empty means the history passed).
pub fn check_history(log: &[OpRecord]) -> Vec<LinearViolation> {
    let mut by_key: HashMap<u64, Vec<&OpRecord>> = HashMap::new();
    for r in log {
        by_key.entry(r.key).or_default().push(r);
    }
    let mut violations = Vec::new();
    for (&key, ops) in &by_key {
        let inserts: HashMap<u64, &OpRecord> = ops
            .iter()
            .filter_map(|r| match r.kind {
                OpKind::Insert(v) => Some((v, *r)),
                _ => None,
            })
            .collect();
        for g in ops {
            let OpKind::Get(Some(v)) = g.kind else {
                continue;
            };
            if v == u64::MAX {
                violations.push(LinearViolation {
                    key,
                    get: **g,
                    detail: "returned a torn or wrong-key payload".to_string(),
                });
                continue;
            }
            let Some(ins) = inserts.get(&v) else {
                violations.push(LinearViolation {
                    key,
                    get: **g,
                    detail: format!("returned value {v:#x} that no insert on this key wrote"),
                });
                continue;
            };
            if g.end < ins.start {
                violations.push(LinearViolation {
                    key,
                    get: **g,
                    detail: format!(
                        "returned value {v:#x} before its insert began (get ended {}, insert started {})",
                        g.end, ins.start
                    ),
                });
                continue;
            }
            // Stale read: a different write provably sits between the insert
            // completing and the get starting.
            let overwrite = ops.iter().find(|w| {
                let is_other_write = match w.kind {
                    OpKind::Insert(wv) => wv != v,
                    OpKind::Remove(_) => true,
                    OpKind::Get(_) => false,
                };
                is_other_write && ins.end < w.start && w.end < g.start
            });
            if let Some(w) = overwrite {
                violations.push(LinearViolation {
                    key,
                    get: **g,
                    detail: format!(
                        "stale read of value {v:#x}: {:?} over [{}, {}] definitely intervened",
                        w.kind, w.start, w.end
                    ),
                });
            }
        }
    }
    violations.sort_by_key(|v| v.get.start);
    violations
}

/// Cross-get version-regression rule, the complement to [`check_history`]'s
/// single-get rules.
///
/// Per key: take any two value-returning gets `G1`, `G2` where `G1`
/// provably finished before `G2` began, returning values written by inserts
/// `I1` and `I2` respectively. If `I2` provably completed before `I1`
/// began, the history is not linearizable: any legal order must place `I2`
/// before `I1` (real time), `I1` before `G1` (it produced `G1`'s value),
/// and `G1` before `G2` — so `I1` intervenes between `I2` and `G2`, and
/// `G2` cannot still observe `I2`'s value. Eviction cannot excuse it
/// (eviction only hides values, never resurrects them), and removes only
/// add more intervening writes.
///
/// The rule needs *two* gets as evidence, which is exactly what
/// `check_history`'s stale-read rule (one get + one definitely-intervening
/// write) cannot see: an insert that overlaps both gets pins nothing down
/// on its own, yet the pair of gets still betrays the regression. Histories
/// from `run_logged_torture`'s monotonic mode make the reports readable —
/// values per key are versions 1, 2, 3, … — but soundness only relies on
/// intervals and per-key-unique values, so it runs on any logged history.
pub fn check_monotonic(log: &[OpRecord]) -> Vec<LinearViolation> {
    let mut by_key: HashMap<u64, Vec<&OpRecord>> = HashMap::new();
    for r in log {
        by_key.entry(r.key).or_default().push(r);
    }
    let mut violations = Vec::new();
    for (&key, ops) in &by_key {
        let inserts: HashMap<u64, &OpRecord> = ops
            .iter()
            .filter_map(|r| match r.kind {
                OpKind::Insert(v) => Some((v, *r)),
                _ => None,
            })
            .collect();
        // Matched value-returning gets, ordered by start time.
        let mut gets: Vec<(&OpRecord, &OpRecord)> = ops
            .iter()
            .filter_map(|g| match g.kind {
                OpKind::Get(Some(v)) => inserts.get(&v).map(|ins| (*g, *ins)),
                _ => None,
            })
            .collect();
        gets.sort_by_key(|(g, _)| g.start);
        for (i, (g1, i1)) in gets.iter().enumerate() {
            for (g2, i2) in &gets[i + 1..] {
                let gets_ordered = g1.end < g2.start;
                let inserts_inverted = i2.end < i1.start;
                if gets_ordered && inserts_inverted {
                    let (OpKind::Get(Some(v1)), OpKind::Get(Some(v2))) = (g1.kind, g2.kind)
                    else {
                        unreachable!("gets holds only value-returning gets");
                    };
                    violations.push(LinearViolation {
                        key,
                        get: **g2,
                        detail: format!(
                            "version regression: value {v2:#x} (insert [{}, {}]) observed after \
                             value {v1:#x} (insert [{}, {}]) was already read over [{}, {}]",
                            i2.start, i2.end, i1.start, i1.end, g1.start, g1.end
                        ),
                    });
                }
            }
        }
    }
    violations.sort_by_key(|v| v.get.start);
    violations
}

/// Brute-force sequential-witness search: does some linear order of `log`,
/// consistent with real-time precedence (`a` before `b` whenever
/// `a.end < b.start`), explain every observed get?
///
/// The sequential model is a per-key register with spontaneous eviction:
/// `Insert(v)` sets the key to `v`, `Remove` clears it, eviction may clear
/// any key at any point. Under that model `Get(None)` and every
/// `Remove`/`Insert` return are always legal, and eviction never *helps* a
/// `Get(Some(v))` — so the search only needs to track the last write per
/// key and check value gets against it.
///
/// Exponential in the worst case; use only on tiny histories (≲ 12 ops).
/// Test-support code for validating [`check_history`]'s soundness.
pub fn witness_exists(log: &[OpRecord]) -> bool {
    let n = log.len();
    if n == 0 {
        return true;
    }
    assert!(n <= 16, "witness search is exponential; history too long ({n} ops)");
    let mut scheduled = vec![false; n];
    let mut state: HashMap<u64, Option<u64>> = HashMap::new();
    dfs(log, &mut scheduled, &mut state, 0)
}

fn dfs(
    log: &[OpRecord],
    scheduled: &mut [bool],
    state: &mut HashMap<u64, Option<u64>>,
    done: usize,
) -> bool {
    if done == log.len() {
        return true;
    }
    for i in 0..log.len() {
        if scheduled[i] {
            continue;
        }
        // Real-time order: i may only run next if no unscheduled op finished
        // strictly before i started.
        let blocked = (0..log.len())
            .any(|j| !scheduled[j] && j != i && log[j].end < log[i].start);
        if blocked {
            continue;
        }
        let r = &log[i];
        let prev = state.get(&r.key).copied().flatten();
        let (ok, next) = match r.kind {
            OpKind::Get(Some(v)) => (prev == Some(v), prev),
            OpKind::Get(None) => (true, prev), // eviction may hide anything
            OpKind::Insert(v) => (true, Some(v)),
            OpKind::Remove(_) => (true, None),
        };
        if !ok {
            continue;
        }
        scheduled[i] = true;
        let saved = state.insert(r.key, next);
        if dfs(log, scheduled, state, done + 1) {
            return true;
        }
        scheduled[i] = false;
        match saved {
            Some(s) => state.insert(r.key, s),
            None => state.remove(&r.key),
        };
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_ds::SplitMix64;

    fn op(key: u64, kind: OpKind, start: u64, end: u64) -> OpRecord {
        OpRecord {
            thread: 0,
            key,
            kind,
            start,
            end,
        }
    }

    #[test]
    fn clean_history_passes() {
        let log = vec![
            op(1, OpKind::Insert(10), 0, 1),
            op(1, OpKind::Get(Some(10)), 2, 3),
            op(1, OpKind::Remove(true), 4, 5),
            op(1, OpKind::Get(None), 6, 7),
        ];
        assert!(check_history(&log).is_empty());
        assert!(witness_exists(&log));
    }

    #[test]
    fn concurrent_overlap_is_not_flagged() {
        // Insert and get overlap: the get may linearize after the insert.
        let log = vec![
            op(1, OpKind::Insert(10), 0, 5),
            op(1, OpKind::Get(Some(10)), 2, 3),
        ];
        assert!(check_history(&log).is_empty());
        assert!(witness_exists(&log));
    }

    #[test]
    fn read_before_write_is_flagged() {
        let log = vec![
            op(1, OpKind::Get(Some(10)), 0, 1),
            op(1, OpKind::Insert(10), 2, 3),
        ];
        let v = check_history(&log);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("before its insert began"), "{}", v[0]);
        assert!(!witness_exists(&log), "checker flagged a linearizable history");
    }

    #[test]
    fn stale_read_is_flagged() {
        let log = vec![
            op(1, OpKind::Insert(10), 0, 1),
            op(1, OpKind::Insert(11), 2, 3),
            op(1, OpKind::Get(Some(10)), 4, 5),
        ];
        let v = check_history(&log);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("stale read"), "{}", v[0]);
        assert!(!witness_exists(&log));
    }

    #[test]
    fn remove_then_old_value_is_flagged() {
        let log = vec![
            op(1, OpKind::Insert(10), 0, 1),
            op(1, OpKind::Remove(true), 2, 3),
            op(1, OpKind::Get(Some(10)), 4, 5),
        ];
        let v = check_history(&log);
        assert_eq!(v.len(), 1);
        assert!(!witness_exists(&log));
    }

    #[test]
    fn forged_value_is_flagged() {
        let log = vec![
            op(1, OpKind::Insert(10), 0, 1),
            op(1, OpKind::Get(Some(99)), 2, 3),
            op(2, OpKind::Get(Some(u64::MAX)), 4, 5),
        ];
        let v = check_history(&log);
        assert_eq!(v.len(), 2);
        assert!(!witness_exists(&log));
    }

    #[test]
    fn eviction_explains_get_none() {
        // Insert completed, then Get(None): legal — the cache may evict.
        let log = vec![
            op(1, OpKind::Insert(10), 0, 1),
            op(1, OpKind::Get(None), 2, 3),
            op(1, OpKind::Get(Some(10)), 4, 5),
        ];
        // Get(None) is explained by eviction, but then value 10 reappearing
        // is NOT flagged by the lite checker (Get(None) is not a write) —
        // this is a documented incompleteness, and the witness search agrees
        // a witness exists when the Get(None) linearizes before the insert.
        assert!(check_history(&log).is_empty());
        assert!(witness_exists(&log));
    }

    #[test]
    fn version_regression_is_flagged_only_by_monotonic_rule() {
        // The discriminating shape: insert of the *newer* value spans both
        // gets, so no write "definitely intervenes" for either get alone —
        // check_history stays silent — yet the two gets together are
        // impossible: Ia must precede G1(a), G1 precedes G2, and Ib really
        // ended before Ia began, so Ia intervenes between Ib and G2(b).
        let log = vec![
            op(1, OpKind::Insert(1), 0, 1),            // Ib: version 1
            op(1, OpKind::Insert(2), 4, 100),          // Ia: version 2, long
            op(1, OpKind::Get(Some(2)), 5, 6),         // G1 reads version 2
            op(1, OpKind::Get(Some(1)), 7, 8),         // G2 steps back to 1
        ];
        assert!(
            check_history(&log).is_empty(),
            "per-get rules were expected to miss this shape"
        );
        let v = check_monotonic(&log);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("version regression"), "{}", v[0]);
        assert!(!witness_exists(&log), "monotonic rule flagged a linearizable history");
    }

    #[test]
    fn overlapping_inserts_do_not_trigger_regression() {
        // The two inserts overlap, so either may linearize first: reading
        // 2 then 1 is legal (I1 linearizes between G1 and G2).
        let log = vec![
            op(1, OpKind::Insert(1), 0, 10),
            op(1, OpKind::Insert(2), 1, 3),
            op(1, OpKind::Get(Some(2)), 4, 5),
            op(1, OpKind::Get(Some(1)), 6, 7),
        ];
        assert!(check_monotonic(&log).is_empty());
        assert!(check_history(&log).is_empty());
        assert!(witness_exists(&log));
    }

    #[test]
    fn overlapping_gets_do_not_trigger_regression() {
        // The gets overlap each other, so they may linearize in either
        // order; observing "2 then 1" proves nothing.
        let log = vec![
            op(1, OpKind::Insert(1), 0, 1),
            op(1, OpKind::Insert(2), 2, 100),
            op(1, OpKind::Get(Some(2)), 3, 6),
            op(1, OpKind::Get(Some(1)), 5, 8),
        ];
        assert!(check_monotonic(&log).is_empty());
        assert!(witness_exists(&log));
    }

    /// Soundness cross-validation for the monotonic rule, mirroring
    /// `checker_is_sound_on_random_histories`.
    #[test]
    fn monotonic_rule_is_sound_on_random_histories() {
        let mut rng = SplitMix64::new(0x300A_707E);
        let mut flagged = 0usize;
        for _ in 0..600 {
            let n = 4 + rng.next_below(5) as usize; // 4..=8 ops
            let mut clock = 0u64;
            let mut next_value = 0u64;
            let log: Vec<OpRecord> = (0..n)
                .map(|_| {
                    let key = rng.next_below(2);
                    // Insert-and-get heavy mix: regressions need two
                    // matched gets, so skip removes entirely.
                    let kind = match rng.next_below(5) {
                        0 | 1 => {
                            next_value += 1;
                            OpKind::Insert(next_value)
                        }
                        _ => OpKind::Get(Some(1 + rng.next_below(4))),
                    };
                    let start = clock;
                    let len = 1 + rng.next_below(6);
                    clock += 1 + rng.next_below(3);
                    OpRecord {
                        thread: 0,
                        key,
                        kind,
                        start,
                        end: start + len,
                    }
                })
                .collect();
            if !check_monotonic(&log).is_empty() {
                flagged += 1;
                assert!(
                    !witness_exists(&log),
                    "monotonic rule flagged a linearizable history: {log:?}"
                );
            }
        }
        assert!(flagged > 5, "generator too tame: only {flagged} flagged histories");
    }

    /// Soundness cross-validation: on random tiny histories, whenever the
    /// lite checker flags a violation, the exhaustive witness search must
    /// also fail to find a legal ordering.
    #[test]
    fn checker_is_sound_on_random_histories() {
        let mut rng = SplitMix64::new(0x5071_AB1E);
        let mut flagged = 0usize;
        for _ in 0..400 {
            let n = 3 + rng.next_below(5) as usize; // 3..=7 ops
            let mut clock = 0u64;
            // Insert values are unique within a history (a checker
            // precondition the real harness guarantees); gets draw from the
            // same range so they sometimes match and sometimes forge.
            let mut next_value = 0u64;
            let log: Vec<OpRecord> = (0..n)
                .map(|_| {
                    let key = rng.next_below(2);
                    let kind = match rng.next_below(6) {
                        0 | 1 => {
                            next_value += 1;
                            OpKind::Insert(next_value)
                        }
                        2 => OpKind::Remove(rng.next_below(2) == 0),
                        3 => OpKind::Get(None),
                        _ => OpKind::Get(Some(1 + rng.next_below(4))),
                    };
                    // Mix sequential and overlapping intervals.
                    let start = clock;
                    let len = 1 + rng.next_below(4);
                    clock += 1 + rng.next_below(2);
                    OpRecord {
                        thread: 0,
                        key,
                        kind,
                        start,
                        end: start + len,
                    }
                })
                .collect();
            if !check_history(&log).is_empty() {
                flagged += 1;
                assert!(
                    !witness_exists(&log),
                    "lite checker flagged a linearizable history: {log:?}"
                );
            }
        }
        assert!(flagged > 20, "generator too tame: only {flagged} flagged histories");
    }
}

//! Umbrella crate for the S3-FIFO reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for documentation:
//!
//! - [`s3fifo`] — the paper's contribution (S3-FIFO, S3-FIFO-D, ablations).
//! - [`cache_policies`] — baseline eviction algorithms.
//! - [`cache_trace`] — synthetic workload generation and trace analysis.
//! - [`cache_sim`] — the cache simulator and sweep engine.
//! - [`cache_concurrent`] — the concurrent cache prototype.
//! - [`cache_flash`] — the DRAM+flash two-tier cache.

pub use cache_concurrent;
pub use cache_ds;
pub use cache_flash;
pub use cache_policies;
pub use cache_sim;
pub use cache_trace;
pub use cache_types;
pub use s3fifo;

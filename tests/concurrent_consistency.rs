//! §5.3: "we verified that the miss ratio results from the prototype are
//! consistent with the simulator" — the same check, in miniature: drive the
//! concurrent S3-FIFO single-threaded with the simulation policy's workload
//! and compare hit counts.

use bytes::Bytes;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::ConcurrentCache;
use cache_trace::gen::WorkloadSpec;
use cache_types::{Policy, Request};

#[test]
fn prototype_miss_ratio_tracks_simulator() {
    let trace = WorkloadSpec::zipf("consistency", 200_000, 10_000, 1.0, 77).generate();
    let capacity = 1000u64;

    let mut sim = s3fifo::S3Fifo::new(capacity).expect("capacity > 0");
    let mut evs = Vec::new();
    for r in &trace.requests {
        evs.clear();
        sim.request(&Request::get(r.id, r.time), &mut evs);
    }
    let sim_mr = sim.stats().miss_ratio();

    let proto = ConcurrentS3Fifo::new(capacity as usize);
    let mut hits = 0u64;
    for r in &trace.requests {
        if proto.get(r.id).is_some() {
            hits += 1;
        } else {
            proto.insert(r.id, Bytes::from_static(b"x"));
        }
    }
    let proto_mr = 1.0 - hits as f64 / trace.len() as f64;

    // The prototype uses a fingerprint ghost and count-based accounting, so
    // small deviations are expected; gross divergence is a bug.
    assert!(
        (proto_mr - sim_mr).abs() < 0.03,
        "prototype MR {proto_mr:.4} vs simulator MR {sim_mr:.4}"
    );
}

#[test]
fn prototype_hit_ratio_improves_with_capacity() {
    let trace = WorkloadSpec::zipf("cap-sweep", 100_000, 10_000, 1.0, 78).generate();
    let mut last_mr = 1.1;
    for capacity in [100usize, 1000, 5000] {
        let proto = ConcurrentS3Fifo::new(capacity);
        let mut hits = 0u64;
        for r in &trace.requests {
            if proto.get(r.id).is_some() {
                hits += 1;
            } else {
                proto.insert(r.id, Bytes::from_static(b"x"));
            }
        }
        let mr = 1.0 - hits as f64 / trace.len() as f64;
        assert!(
            mr < last_mr,
            "MR must fall with capacity: {mr:.4} at {capacity}"
        );
        last_mr = mr;
    }
}

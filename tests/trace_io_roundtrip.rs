//! Trace serialization round-trips through real files.

use cache_trace::gen::{SizeModel, WorkloadSpec};
use cache_trace::io;

#[test]
fn csv_file_roundtrip() {
    let mut spec = WorkloadSpec::zipf("io-test", 5000, 500, 1.0, 9);
    spec.size_model = SizeModel::Uniform { min: 1, max: 9999 };
    let trace = spec.generate();
    let dir = std::env::temp_dir();
    let path = dir.join("s3fifo_repro_io_test.csv");
    {
        let mut f = std::fs::File::create(&path).expect("create temp file");
        io::write_csv(&trace, &mut f).expect("write");
    }
    let back = io::read_csv("io-test", std::fs::File::open(&path).expect("open")).expect("read");
    assert_eq!(trace.requests, back.requests);
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_file_roundtrip() {
    let trace = WorkloadSpec::zipf("io-bin", 20_000, 2000, 0.9, 10).generate();
    let dir = std::env::temp_dir();
    let path = dir.join("s3fifo_repro_io_test.bin");
    std::fs::write(&path, io::to_binary(&trace)).expect("write");
    let bytes = std::fs::read(&path).expect("read");
    let back = io::from_binary("io-bin", &bytes).expect("decode");
    assert_eq!(trace.requests, back.requests);
    std::fs::remove_file(&path).ok();
}

#[test]
fn miss_ratio_identical_after_roundtrip() {
    use cache_sim::{simulate_named, SimConfig};
    let trace = WorkloadSpec::zipf("io-sim", 20_000, 2000, 1.0, 11).generate();
    let back = io::from_binary("io-sim", &io::to_binary(&trace)).expect("decode");
    let cfg = SimConfig::large();
    let a = simulate_named("S3-FIFO", &trace, &cfg).unwrap().unwrap();
    let b = simulate_named("S3-FIFO", &back, &cfg).unwrap().unwrap();
    assert_eq!(a.misses, b.misses);
}

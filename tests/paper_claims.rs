//! Integration tests pinning the paper's qualitative claims, end to end.

use cache_sim::demotion::{demotion_metrics, lru_mean_eviction_age};
use cache_sim::{simulate_named, NextAccessOracle, SimConfig};
use cache_trace::analysis::{one_hit_wonder_ratio, sampled_window_ohw};
use cache_trace::corpus::{msr_like, twitter_like};
use cache_trace::gen::{two_request_adversarial_mixed, WorkloadSpec};

/// §3.1: shorter sequences have higher one-hit-wonder ratios, on synthetic
/// and production-like traces alike.
#[test]
fn one_hit_wonders_rise_in_short_windows() {
    for trace in [
        WorkloadSpec::zipf("zipf", 150_000, 15_000, 1.0, 1).generate(),
        msr_like(150_000, 1),
        twitter_like(150_000, 1),
    ] {
        let full = one_hit_wonder_ratio(&trace.requests);
        let w10 = sampled_window_ohw(&trace.requests, 0.1, 20, 2);
        assert!(
            w10 > full,
            "{}: window OHW {w10:.3} must exceed full {full:.3}",
            trace.name
        );
    }
}

/// Fig. 4: most objects evicted by LRU are one-hit wonders at a 10% cache.
#[test]
fn most_evictions_are_one_hit_wonders() {
    let trace = msr_like(200_000, 2);
    let cfg = SimConfig::large();
    for algo in ["LRU", "Belady"] {
        let r = simulate_named(algo, &trace, &cfg).unwrap().unwrap();
        assert!(
            r.one_hit_eviction_fraction > 0.5,
            "{algo}: only {:.2} of evictions were one-hit wonders",
            r.one_hit_eviction_fraction
        );
    }
}

/// §6.1: S3-FIFO's demotion speed rises monotonically as S shrinks.
#[test]
fn demotion_speed_monotone_in_s_size() {
    let trace = twitter_like(150_000, 3);
    let cfg = SimConfig::large();
    let cap = cfg.capacity_for(&trace);
    let oracle = NextAccessOracle::new(&trace.requests);
    let lru_age = lru_mean_eviction_age(&trace, cap);
    let mut last_speed = f64::INFINITY;
    for s in [0.02, 0.10, 0.30] {
        let m = demotion_metrics(&format!("S3-FIFO({s})"), &trace, cap, lru_age, &oracle)
            .expect("valid algorithm");
        assert!(
            m.speed < last_speed,
            "speed must fall as S grows: S={s} speed {} >= previous {last_speed}",
            m.speed
        );
        last_speed = m.speed;
    }
}

/// §5.2's adversarial pattern: every object requested exactly twice, with
/// the second request arriving after the object has left the small queue
/// but while LRU would still hold it. A hot working set keeps M populated
/// so S actually shrinks to its 10% target (a pure two-request stream is
/// NOT adversarial — S then simply occupies the whole cache).
#[test]
fn adversarial_two_request_pattern_hurts_s3fifo() {
    let cache = 2000u64;
    let trace = two_request_adversarial_mixed("adv", 30_000, 400, 1800);
    let cfg = SimConfig {
        size: cache_sim::CacheSizeSpec::Bytes(cache),
        ignore_size: true,
        min_objects: 0,
        floor_objects: 0,
    };
    let lru = simulate_named("LRU", &trace, &cfg).unwrap().unwrap();
    let s3 = simulate_named("S3-FIFO", &trace, &cfg).unwrap().unwrap();
    assert!(
        s3.miss_ratio > lru.miss_ratio + 0.05,
        "S3-FIFO {:.4} should lose clearly to LRU {:.4} on the adversarial pattern",
        s3.miss_ratio,
        lru.miss_ratio
    );
}

/// §6.3: queue type barely matters once quick demotion is in place.
#[test]
fn queue_type_ablation_is_flat() {
    let trace = twitter_like(100_000, 4);
    let cfg = SimConfig::large();
    let mut ratios = Vec::new();
    for algo in ["S3-FIFO", "QDLP-LRU-FIFO", "QDLP-FIFO-LRU", "QDLP-LRU-LRU"] {
        let r = simulate_named(algo, &trace, &cfg).unwrap().unwrap();
        ratios.push((algo, r.miss_ratio));
    }
    let max = ratios.iter().map(|r| r.1).fold(f64::MIN, f64::max);
    let min = ratios.iter().map(|r| r.1).fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.03,
        "queue-type variants should be close: {ratios:?}"
    );
}

/// §6.2.2: the static 10% S3-FIFO is at least as good as the adaptive
/// variant on a regular (non-adversarial) workload.
#[test]
fn static_matches_adaptive_on_regular_workloads() {
    let trace = twitter_like(150_000, 5);
    let cfg = SimConfig::large();
    let s3 = simulate_named("S3-FIFO", &trace, &cfg).unwrap().unwrap();
    let s3d = simulate_named("S3-FIFO-D", &trace, &cfg).unwrap().unwrap();
    assert!(
        s3.miss_ratio <= s3d.miss_ratio + 0.01,
        "static {:.4} vs adaptive {:.4}",
        s3.miss_ratio,
        s3d.miss_ratio
    );
}

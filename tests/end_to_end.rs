//! End-to-end integration: corpus generation → sweep → aggregation,
//! spanning cache-trace, cache-policies, s3fifo, and cache-sim.

use cache_sim::{run_sweep, summarize_reductions, SimConfig, SweepSpec};
use cache_trace::corpus::{datasets, CorpusConfig};

#[test]
fn corpus_sweep_ranks_s3fifo_first_or_second() {
    // A small corpus, the Fig. 6 pipeline, and the paper's headline claim:
    // S3-FIFO leads the mean miss-ratio reduction.
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: 40_000,
        seed: 0xE2E,
    };
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms: vec![
            "FIFO".into(),
            "LRU".into(),
            "CLOCK".into(),
            "ARC".into(),
            "TinyLFU-0.1".into(),
            "S3-FIFO".into(),
        ],
        config: SimConfig::large(),
        threads: 0,
    };
    let records = run_sweep(&spec).expect("sweep runs");
    assert_eq!(records.len(), traces.len() * 6);
    let sums = summarize_reductions(&records, false);
    let rank = sums
        .iter()
        .position(|(a, _)| a == "S3-FIFO")
        .expect("S3-FIFO present");
    assert!(
        rank <= 1,
        "S3-FIFO should lead the ranking, got position {rank} in {:?}",
        sums.iter()
            .map(|(a, s)| (a.clone(), s.mean))
            .collect::<Vec<_>>()
    );
    // And it must beat plain LRU and CLOCK outright.
    let mean_of = |name: &str| {
        sums.iter()
            .find(|(a, _)| a == name)
            .map(|(_, s)| s.mean)
            .expect("algorithm present")
    };
    assert!(mean_of("S3-FIFO") > mean_of("LRU"));
    assert!(mean_of("S3-FIFO") > mean_of("CLOCK"));
    assert!(mean_of("S3-FIFO") > 0.0);
}

#[test]
fn belady_bounds_every_algorithm_on_every_dataset_type() {
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: 20_000,
        seed: 0xB37,
    };
    for ds_name in ["twitter", "msr", "cdn1"] {
        let ds = datasets().into_iter().find(|d| d.name == ds_name).unwrap();
        let trace = ds.trace(&cfg, 0);
        let sim_cfg = SimConfig::large();
        let opt = cache_sim::simulate_named("Belady", &trace, &sim_cfg)
            .unwrap()
            .unwrap();
        for algo in ["FIFO", "LRU", "S3-FIFO", "ARC", "LIRS", "TinyLFU"] {
            let r = cache_sim::simulate_named(algo, &trace, &sim_cfg)
                .unwrap()
                .unwrap();
            assert!(
                opt.miss_ratio <= r.miss_ratio + 1e-12,
                "{ds_name}: Belady {:.4} vs {algo} {:.4}",
                opt.miss_ratio,
                r.miss_ratio
            );
        }
    }
}

#[test]
fn byte_miss_ratio_sweep_works_with_sizes() {
    // §5.2.3: byte miss ratios with real object sizes.
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: 30_000,
        seed: 0xB17E,
    };
    let ds = datasets().into_iter().find(|d| d.name == "cdn1").unwrap();
    let trace = ds.trace(&cfg, 0);
    let sim_cfg = SimConfig {
        size: cache_sim::CacheSizeSpec::FractionOfBytes(0.10),
        ignore_size: false,
        min_objects: 0,
        floor_objects: 0,
    };
    let fifo = cache_sim::simulate_named("FIFO", &trace, &sim_cfg)
        .unwrap()
        .unwrap();
    let s3 = cache_sim::simulate_named("S3-FIFO", &trace, &sim_cfg)
        .unwrap()
        .unwrap();
    assert!(s3.byte_miss_ratio > 0.0 && s3.byte_miss_ratio <= 1.0);
    assert!(
        s3.byte_miss_ratio <= fifo.byte_miss_ratio + 0.01,
        "S3-FIFO byte MR {:.4} should not trail FIFO {:.4}",
        s3.byte_miss_ratio,
        fifo.byte_miss_ratio
    );
}

//! PR 1 acceptance: full-corpus replay under device faults.
//!
//! - A 1% transient-write plan replays a full synthetic trace with zero
//!   panics and a miss ratio within 2 points of fault-free.
//! - The degradation ladder (retry → DRAM-only → recovery) is exercised
//!   end to end and every transition is asserted.
//! - Byte accounting on the device stays exact throughout.

use cache_faults::{
    DegradationState, ErrorBudgetConfig, FaultKind, FaultPlan, RetryPolicy, Schedule,
};
use cache_flash::{AdmissionKind, FlashCache, FlashCacheConfig, ResilienceConfig};
use cache_trace::corpus::{datasets, CorpusConfig};
use cache_trace::Trace;
use cache_types::CacheError;

fn corpus_trace(name: &str, requests: usize) -> Trace {
    let ds = datasets()
        .into_iter()
        .find(|d| d.name == name)
        .expect("dataset exists");
    ds.trace(
        &CorpusConfig {
            traces_per_dataset: 1,
            requests_per_trace: requests,
            seed: 0xACCE,
        },
        0,
    )
}

fn cfg_for(trace: &Trace, admission: AdmissionKind) -> FlashCacheConfig {
    FlashCacheConfig {
        total_bytes: (trace.footprint_bytes() / 10).max(1),
        dram_fraction: 0.01,
        admission,
    }
}

#[test]
fn one_percent_transient_writes_cost_under_two_points() {
    let trace = corpus_trace("cdn1", 100_000);
    for admission in [
        AdmissionKind::SmallFifoTwoAccess,
        AdmissionKind::WriteAll,
        AdmissionKind::Probabilistic(0.2),
    ] {
        let cfg = cfg_for(&trace, admission);
        let mut clean = FlashCache::new(cfg).expect("valid config");
        let base = clean.run(&trace.requests);

        let plan = FaultPlan::new(42).with_transient_writes(0.01);
        let mut faulty =
            FlashCache::faulty(cfg, plan, ResilienceConfig::default()).expect("valid config");
        let s = faulty.run(&trace.requests);

        assert!(
            (s.miss_ratio() - base.miss_ratio()).abs() < 0.02,
            "{admission:?}: faulty MR {:.4} vs clean {:.4}",
            s.miss_ratio(),
            base.miss_ratio()
        );
        assert!(s.retries > 0, "{admission:?}: retries must engage");
        assert_eq!(
            s.budget_trips, 0,
            "{admission:?}: 1% transients must stay under the default budget"
        );
        assert!(
            faulty.verify_accounting(),
            "{admission:?}: accounting must stay exact under faults"
        );
    }
}

#[test]
fn full_taxonomy_replay_never_panics_and_stays_consistent() {
    let trace = corpus_trace("wiki_cdn", 80_000);
    let cfg = cfg_for(&trace, AdmissionKind::SmallFifoTwoAccess);
    // Every fault kind at once, at rates high enough to trip the budget.
    let plan = FaultPlan::new(7)
        .with(FaultKind::TransientWrite, Schedule::Constant(0.2))
        .with(FaultKind::ReadError, Schedule::Constant(0.05))
        .with(FaultKind::Corruption, Schedule::Constant(0.02))
        .with(FaultKind::DeviceFull, Schedule::Constant(0.05))
        .with(FaultKind::LatencySpike, Schedule::Constant(0.01));
    let mut c = FlashCache::faulty(cfg, plan, ResilienceConfig::default()).expect("valid config");
    let s = c.run(&trace.requests);
    assert_eq!(s.requests, 80_000);
    assert!(s.miss_ratio() <= 1.0);
    assert!(s.device_errors() > 0);
    assert!(s.corruptions > 0, "corruption path must have been exercised");
    assert!(c.verify_accounting(), "accounting exact after the storm");
    // Degradation engaged at these rates.
    assert!(s.budget_trips >= 1);
    assert!(s.degraded_ops > 0);
}

#[test]
fn degradation_ladder_retry_then_dram_only_then_recovery() {
    let trace = corpus_trace("cdn1", 60_000);
    let cfg = cfg_for(&trace, AdmissionKind::SmallFifoTwoAccess);
    // The device is dead for its first 40 ops, then heals completely; the
    // short burst is traversed by recovery probes while degraded.
    let plan = FaultPlan::new(3).with(
        FaultKind::TransientWrite,
        Schedule::Burst {
            period: u64::MAX,
            burst_len: 40,
            inside: 1.0,
            outside: 0.0,
        },
    );
    let resilience = ResilienceConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_delay: 5,
            max_delay: 100,
        },
        budget: ErrorBudgetConfig {
            window_ops: 1_000,
            max_errors: 3,
            probe_interval: 150,
            recovery_probes: 2,
        },
    };
    let mut c = FlashCache::faulty(cfg, plan, resilience).expect("valid config");

    let mut saw_device_failure = false;
    let mut saw_degraded_transition = false;
    let mut ops_while_degraded = 0u64;
    for r in &trace.requests {
        match c.request_checked(r.id, r.size) {
            Ok(_) => {}
            Err(CacheError::DeviceFailure(_)) => saw_device_failure = true,
            Err(CacheError::Degraded(_)) => saw_degraded_transition = true,
            Err(CacheError::Corruption(_)) => panic!("plan injects no corruption"),
            Err(e) => panic!("unexpected error: {e}"),
        }
        if c.degradation() == DegradationState::Degraded {
            ops_while_degraded += 1;
        }
    }
    let s = c.stats();
    // Rung 1: retries were attempted before giving up.
    assert!(s.retries > 0, "retry rung must engage");
    assert!(saw_device_failure, "post-retry failures must surface");
    // Rung 2: the budget tripped and the cache ran DRAM-only.
    assert!(saw_degraded_transition, "trip must surface as Degraded");
    assert_eq!(s.budget_trips, 1);
    assert!(ops_while_degraded > 0);
    assert!(s.degraded_ops > 0);
    // Rung 3: probes found the healed device and re-admitted flash.
    assert_eq!(s.budget_recoveries, 1, "device must recover exactly once");
    assert_eq!(c.degradation(), DegradationState::Healthy);
    assert!(
        s.flash_hits > 0,
        "flash must serve hits after re-admission"
    );
    assert!(c.verify_accounting());
}

#[test]
fn faulty_replay_is_fully_deterministic() {
    let trace = corpus_trace("cdn1", 40_000);
    let cfg = cfg_for(&trace, AdmissionKind::SmallFifoTwoAccess);
    let run = || {
        let plan = FaultPlan::new(99)
            .with_transient_writes(0.05)
            .with_read_errors(0.02);
        let mut c =
            FlashCache::faulty(cfg, plan, ResilienceConfig::default()).expect("valid config");
        let s = c.run(&trace.requests);
        (
            s.misses,
            s.flash_write_bytes,
            s.retries,
            s.device_errors(),
            s.budget_trips,
        )
    };
    assert_eq!(run(), run(), "same seed, same replay, same counters");
}

#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the workspace root.
#
# Clippy runs with -D warnings; clippy::unwrap_used / clippy::expect_used
# are configured as *advisory* in the workspace lints table ([workspace.lints]
# in Cargo.toml), so they are re-demoted to warnings after -D so they surface
# in review without blocking the build. Internal-invariant `expect`s carry a
# comment naming the invariant (robustness policy, PR 1).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo test -q --workspace =="
cargo test -q --workspace --offline

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings \
    --force-warn clippy::unwrap-used --force-warn clippy::expect-used

echo "ci: all gates passed"

#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the workspace root.
#
# Clippy runs with -D warnings; clippy::unwrap_used / clippy::expect_used
# are configured as *advisory* in the workspace lints table ([workspace.lints]
# in Cargo.toml), so they are re-demoted to warnings after -D so they surface
# in review without blocking the build. Internal-invariant `expect`s carry a
# comment naming the invariant (robustness policy, PR 1).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo test -q --workspace =="
cargo test -q --workspace --offline

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings \
    --force-warn clippy::unwrap-used --force-warn clippy::expect-used

echo "== check: differential fuzz + invariant observers + linearizability-lite =="
# Fixed-seed correctness battery (crates/check): >= 10k generated requests
# per policy/mode pair through reference vs keyed vs dense, an invariant
# observer sweep over every registry algorithm, and a logged concurrent
# torture run per cache checked for stale/forged reads. ~0.5 s in release;
# failures print a shrunk reproduction (see TESTING.md).
./target/release/check_gate

echo "== cache-lint: workspace lint + loom-lite interleaving exploration =="
# Two hard gates from crates/lint (see DESIGN.md §8 and TESTING.md):
#  - lint: the annotation contract (SAFETY:/ORDERING:/LOCK-ORDER:/invariant
#    comments, explicit Ordering::* at atomic call sites, no non-test
#    unwrap) over every crates/*/src/**/*.rs file, with inline waivers and
#    a stale-checked central allowlist;
#  - loom: bounded-preemption (CHESS, bound 2) exploration of the Vyukov
#    ring and S3-FIFO shard models with a vector-clock race detector —
#    >= 10k distinct interleavings must pass, and three planted mutants
#    (wrong orderings, ghost-before-remove) must be *caught*, so a green
#    run proves the detector still has teeth.
# Budget: the whole pass must stay under 10 s in release.
cache_lint_start=$(date +%s)
./target/release/cache_lint --root . all
cache_lint_elapsed=$(( $(date +%s) - cache_lint_start ))
if [ "${cache_lint_elapsed}" -gt 10 ]; then
    echo "cache_lint exceeded its 10 s budget (${cache_lint_elapsed}s)" >&2
    exit 1
fi

echo "== bench smoke: sim_throughput =="
# Small corpus, one repeat: proves the dense fast path and the legacy
# emulation still agree bit-for-bit (the binary asserts it) and that the
# benchmark artifact is produced and well-formed. Numbers from this run are
# NOT meaningful; the checked-in BENCH_sim.json comes from the full config.
./target/release/sim_throughput --smoke
python3 - <<'PY'
import json, sys
with open("target/BENCH_sim.json") as f:
    doc = json.load(f)
for key in ("mode", "requests", "policies", "serial_aggregate", "aggregate"):
    assert key in doc, f"BENCH_sim.json missing key: {key}"
agg = doc["aggregate"]
assert agg["metric"] == "sweep" and agg["jobs"] > 0, agg
assert agg["legacy_mreqs"] > 0 and agg["dense_mreqs"] > 0, agg
assert doc["policies"], "no per-policy results"
print(f"bench smoke ok: {agg['jobs']} sweep jobs, "
      f"speedup {agg['speedup']:.2f}x (smoke config)")
PY

echo "== obs smoke: obs_dump =="
# Exercises the full observability pipeline (windowed simulation, flash
# degradation ladder, concurrent per-shard export, lossy CSV ingest) and
# validates the JSON-lines dump: every line parses standalone, the expected
# metric families are present, and no empty-histogram sentinel leaks.
./target/release/obs_dump --out target/OBS_dump.jsonl
python3 - <<'PY'
import json
lines = [l for l in open("target/OBS_dump.jsonl") if l.strip()]
assert lines, "empty obs dump"
objs = [json.loads(l) for l in lines]   # every line must parse standalone
names = {o.get("name", "") for o in objs}
for expected in (
    "sim.requests", "sim.misses", "sim.eviction_age",
    "flash.ladder.budget_trips", "flash.ladder.budget_recoveries",
    "flash.ladder.device_errors", "flash.ladder.degraded_requests",
    "cc.hits", "cc.misses",
    "trace.io.csv_skipped_lines", "trace.io.csv_parsed_lines",
):
    assert expected in names, f"obs dump missing metric: {expected}"
kinds = {o["type"] for o in objs}
assert {"counter", "gauge", "histogram", "event", "window"} <= kinds, kinds
for o in objs:
    if o["type"] == "histogram" and o["count"] == 0:
        assert o["min"] is None and o["max"] is None, f"sentinel leak: {o}"
print(f"obs smoke ok: {len(objs)} lines, {len(names - {''})} metrics, "
      f"kinds {sorted(kinds)}")
PY

echo "ci: all gates passed"

#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the workspace root.
#
# Clippy runs with -D warnings; clippy::unwrap_used / clippy::expect_used
# are configured as *advisory* in the workspace lints table ([workspace.lints]
# in Cargo.toml), so they are re-demoted to warnings after -D so they surface
# in review without blocking the build. Internal-invariant `expect`s carry a
# comment naming the invariant (robustness policy, PR 1).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
# --workspace is load-bearing: the root manifest is both a workspace and a
# package, so a bare `cargo build` would only build the root package and
# skip the gate binaries (check_gate, cache_lint, sim_throughput, obs_dump,
# cache_loadgen) this script runs below.
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo test -q --workspace =="
cargo test -q --workspace --offline

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings \
    --force-warn clippy::unwrap-used --force-warn clippy::expect-used

echo "== check: differential fuzz + invariant observers + linearizability-lite =="
# Fixed-seed correctness battery (crates/check): >= 10k generated requests
# per policy/mode pair through reference vs keyed vs dense, an invariant
# observer sweep over every registry algorithm, and logged concurrent
# torture runs per cache checked for stale/forged reads plus, in per-key
# monotonic-version mode, cross-get version regressions. ~1 s in release;
# failures print a shrunk reproduction (see TESTING.md).
./target/release/check_gate

echo "== cache-lint: workspace lint + loom-lite interleaving exploration =="
# Two hard gates from crates/lint (see DESIGN.md §8 and TESTING.md):
#  - lint: the annotation contract (SAFETY:/ORDERING:/invariant comments,
#    explicit Ordering::* at atomic call sites, no non-test unwrap) over
#    every crates/*/src/**/*.rs file, with inline waivers and a
#    stale-checked central allowlist — plus the interprocedural lock
#    analysis: guard live ranges, a workspace call graph, machine-checked
#    LOCK-ORDER: declarations, and global deadlock-cycle detection
#    (L-DEADLOCK/L-GUARD-LIFETIME/L-LOCK-ORDER/L-LOCK-DECL), then the
#    fixture self-check (a fixtured rule whose diagnostic count drops to 0
#    has been silently disabled and fails the gate);
#  - loom: bounded-preemption (CHESS, bound 2) exploration of the Vyukov
#    ring, S3-FIFO shard, server drain-handshake, and increment-buffer
#    slot-handoff models with a vector-clock race detector — >= 10k
#    distinct interleavings must pass, and seven planted mutants (wrong
#    orderings, ghost-before-remove, drain check-before-join, relaxed
#    drain completion, relaxed incbuf claim/release) must be *caught*,
#    so a green run proves the detector still has teeth.
# Budget: the whole pass must stay under 20 s in release (the binary
# prints per-phase timing so a blown budget names its phase).
cache_lint_start=$(date +%s)
./target/release/cache_lint --root . all
cache_lint_elapsed=$(( $(date +%s) - cache_lint_start ))
if [ "${cache_lint_elapsed}" -gt 20 ]; then
    echo "cache_lint exceeded its 20 s budget (${cache_lint_elapsed}s)" >&2
    exit 1
fi

echo "== mrc smoke: mrc_throughput =="
# Small trace, 8-point grid: the binary itself asserts every grid point of
# the single-pass curve is bit-identical to the per-capacity sweep and that
# FIFO routes through the exact engine. The validator below checks both the
# smoke artifact and the checked-in full-run BENCH_mrc.json: sane schema,
# strictly increasing grid, miss ratios in [0,1] non-increasing with
# capacity (small epsilon for FIFO's Belady wobble), `identical: true` on
# every point — and, for the checked-in full run only, the acceptance
# speedups (aggregate >= 5x, exact-FIFO >= 10x). Smoke numbers themselves
# are NOT meaningful.
./target/release/mrc_throughput --smoke
python3 - <<'PY'
import json

def check(path, full):
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == "mrc_throughput", doc.get("bench")
    for key in ("mode", "requests", "objects", "grid", "policies", "aggregate"):
        assert key in doc, f"{path} missing key: {key}"
    grid = doc["grid"]
    assert all(a < b for a, b in zip(grid, grid[1:])), f"{path}: grid not increasing"
    assert doc["policies"], f"{path}: no per-policy results"
    for p in doc["policies"]:
        caps = [pt["capacity"] for pt in p["points"]]
        assert caps == grid, f"{path}: {p['name']} points do not cover the grid"
        ratios = [pt["miss_ratio"] for pt in p["points"]]
        assert all(0.0 <= r <= 1.0 for r in ratios), f"{path}: {p['name']} ratio range"
        for i, (a, b) in enumerate(zip(ratios, ratios[1:])):
            assert b <= a + 1e-6, \
                f"{path}: {p['name']} miss ratio rises at grid point {i + 1}"
        assert all(pt["identical"] is True for pt in p["points"]), \
            f"{path}: {p['name']} has non-identical points"
        assert p["speedup"] > 0, f"{path}: {p['name']} speedup"
    agg = doc["aggregate"]
    assert agg["metric"] == "mrc" and agg["grid_points"] == len(grid), agg
    if full:
        assert doc["mode"] == "full", f"{path}: checked-in file must be a full run"
        assert agg["speedup"] >= 5.0, \
            f"{path}: aggregate speedup {agg['speedup']} below 5x"
        assert agg["fifo_exact_speedup"] >= 10.0, \
            f"{path}: exact-FIFO speedup {agg['fifo_exact_speedup']} below 10x"
    return doc, agg

check("target/BENCH_mrc.json", full=False)
doc, agg = check("BENCH_mrc.json", full=True)
print(f"mrc smoke ok: {len(doc['policies'])} policies x {agg['grid_points']} "
      f"points; checked-in full run {agg['speedup']:.2f}x aggregate, "
      f"{agg['fifo_exact_speedup']:.2f}x exact-FIFO")
PY

echo "== concurrent smoke: concurrent_throughput =="
# Two-thread mini-sweep over all six concurrent variants: exercises the
# measured/profiled/modeled pipeline end to end. The validator checks both
# the smoke artifact and the checked-in full-run BENCH_concurrent.json:
# sane schema, strictly increasing thread grid, every cache's sweep covers
# it, and the lock-free-hit-path family (S3-FIFO batched/direct, CLOCK)
# scales monotonically — the Fig. 8 shape. For the checked-in full run
# only, the acceptance summary: FIFO-family speedup >= 2x at max threads,
# strict-LRU speedup < 2x (the promotion lock flattens it), the batched
# increment path beating the direct path at max threads, and the batched
# cache within 1% absolute miss ratio of the serial simulator. Smoke
# numbers themselves are NOT meaningful.
./target/release/concurrent_throughput --smoke
python3 - <<'PY'
import json

LOCK_FREE_HIT_PATH = {"S3-FIFO", "S3-FIFO-direct", "CLOCK"}
REQUIRED_CACHES = LOCK_FREE_HIT_PATH | {"LRU-strict", "LRU-optimized", "Segcache"}

def check(path, full):
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == "concurrent_throughput", doc.get("bench")
    for key in ("mode", "requests", "capacity", "objects", "threads",
                "t_rmw_ns", "workloads", "summary"):
        assert key in doc, f"{path} missing key: {key}"
    threads = doc["threads"]
    assert all(a < b for a, b in zip(threads, threads[1:])), \
        f"{path}: thread grid not increasing"
    assert doc["workloads"] and doc["workloads"][0]["name"] == "read-heavy", \
        f"{path}: first workload must be read-heavy (summary is computed on it)"
    for w in doc["workloads"]:
        names = {c["name"] for c in w["caches"]}
        assert REQUIRED_CACHES <= names, f"{path}: {w['name']} missing {REQUIRED_CACHES - names}"
        for c in w["caches"]:
            assert c["t_op_ns"] > 0 and 0.0 <= c["miss_ratio"] <= 1.0, c["name"]
            sweep = c["sweep"]
            assert [p["threads"] for p in sweep] == threads, \
                f"{path}: {w['name']}/{c['name']} sweep does not cover the grid"
            for p in sweep:
                assert p["mops"] > 0 and p["p99_us"] > 0, p
                assert 0.0 < p["efficiency"] <= 1.0 + 1e-9, p
            if c["name"] in LOCK_FREE_HIT_PATH:
                mops = [p["mops"] for p in sweep]
                for i, (a, b) in enumerate(zip(mops, mops[1:])):
                    assert b >= a - 1e-6, (
                        f"{path}: {w['name']}/{c['name']} modeled throughput "
                        f"drops at grid point {i + 1} ({a:.2f} -> {b:.2f})")
    s = doc["summary"]
    assert s["max_threads"] == threads[-1], s
    assert s["miss_ratio_delta_vs_serial"] < 0.01, \
        f"{path}: batched path drifts {s['miss_ratio_delta_vs_serial']:.4f} from serial"
    if full:
        assert doc["mode"] == "full", f"{path}: checked-in file must be a full run"
        assert s["fifo_speedup_max_threads"] >= 2.0, \
            f"{path}: FIFO speedup {s['fifo_speedup_max_threads']} below 2x"
        assert s["lru_strict_speedup_max_threads"] < 2.0, \
            f"{path}: strict LRU speedup {s['lru_strict_speedup_max_threads']} fails to flatten"
        assert s["batched_vs_direct_max_threads"] > 1.0, \
            f"{path}: batched path loses to direct ({s['batched_vs_direct_max_threads']})"
    return doc, s

check("target/BENCH_concurrent.json", full=False)
doc, s = check("BENCH_concurrent.json", full=True)
print(f"concurrent smoke ok: {len(doc['workloads'])} workloads x "
      f"{len(REQUIRED_CACHES)} caches; checked-in full run: FIFO "
      f"{s['fifo_speedup_max_threads']:.2f}x vs strict LRU "
      f"{s['lru_strict_speedup_max_threads']:.2f}x at {s['max_threads']} threads, "
      f"batched/direct {s['batched_vs_direct_max_threads']:.3f}, "
      f"miss-ratio delta {s['miss_ratio_delta_vs_serial']:.4f}")
PY

echo "== bench smoke: sim_throughput =="
# Small corpus, one repeat: proves the dense fast path and the legacy
# emulation still agree bit-for-bit (the binary asserts it) and that the
# benchmark artifact is produced and well-formed. Numbers from this run are
# NOT meaningful; the checked-in BENCH_sim.json comes from the full config.
./target/release/sim_throughput --smoke
python3 - <<'PY'
import json, sys
with open("target/BENCH_sim.json") as f:
    doc = json.load(f)
for key in ("mode", "requests", "policies", "serial_aggregate", "aggregate"):
    assert key in doc, f"BENCH_sim.json missing key: {key}"
agg = doc["aggregate"]
assert agg["metric"] == "sweep" and agg["jobs"] > 0, agg
assert agg["legacy_mreqs"] > 0 and agg["dense_mreqs"] > 0, agg
assert doc["policies"], "no per-policy results"
print(f"bench smoke ok: {agg['jobs']} sweep jobs, "
      f"speedup {agg['speedup']:.2f}x (smoke config)")
PY

echo "== out-of-core smoke: trace_gen + trace_convert + oo_trace =="
# The out-of-core trace engine end to end (DESIGN.md §12): generate a small
# seeded .ctr trace to disk, round-trip it through CSV and back, verify the
# two encodings describe the identical trace, and run the streamed-replay
# benchmark in smoke mode. The oo_trace binary itself asserts the streamed
# replay is bit-identical to the dense in-memory replay (counters, f64
# bits, every series window) and that trace buffers stay bounded by the
# chunk size. The validator checks both artifacts: schema + identity on the
# smoke run, and for the checked-in full-run BENCH_oo_trace.json the
# acceptance criteria (>= 1B requests replayed, streamed within 1.3x of
# in-memory, buffers bounded). Smoke numbers themselves are NOT meaningful.
./target/release/trace_gen --smoke --out target/ci_oo.ctr
./target/release/trace_convert to-csv target/ci_oo.ctr target/ci_oo.csv
./target/release/trace_convert to-ctr target/ci_oo.csv target/ci_oo_rt.ctr
./target/release/trace_convert verify target/ci_oo.csv target/ci_oo_rt.ctr
./target/release/oo_trace --smoke
python3 - <<'PY'
import json

def check(path, full):
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == "oo_trace", doc.get("bench")
    for key in ("mode", "trace", "window", "chunk_records", "capacity",
                "streamed", "calibration"):
        assert key in doc, f"{path} missing key: {key}"
    t = doc["trace"]
    assert t["requests"] > 0 and t["id_space"] > 0 and t["bytes"] > 0, t
    # Bounded memory: peak trace buffers scale with the chunk, never the
    # trace (2x slack for Vec growth; 40 covers record + decoded + slot).
    buffer_bound = 2 * doc["chunk_records"] * 40
    names = set()
    for s in doc["streamed"]:
        names.add(s["name"])
        assert 0.0 <= s["miss_ratio"] <= 1.0 and s["windows"] > 0, s
        assert s["peak_buffer_bytes"] <= buffer_bound, \
            f"{path}: {s['name']} buffers {s['peak_buffer_bytes']} exceed chunk bound"
    assert {"FIFO", "S3-FIFO"} <= names, f"{path}: missing policies {names}"
    cal = doc["calibration"]
    assert cal["policies"], f"{path}: no calibration rows"
    for p in cal["policies"]:
        assert p["identical"] is True, f"{path}: {p['name']} streamed replay diverged"
        assert p["streamed_mreqs"] > 0 and p["in_memory_mreqs"] > 0, p
    if full:
        assert doc["mode"] == "full", f"{path}: checked-in file must be a full run"
        assert t["requests"] >= 1_000_000_000, \
            f"{path}: full run must replay >= 1B requests, got {t['requests']}"
        assert cal["within_bound"] is True and cal["max_ratio"] <= cal["bound"], \
            f"{path}: streamed replay {cal['max_ratio']}x exceeds {cal['bound']}x bound"
    return doc, cal

check("target/BENCH_oo_trace.json", full=False)
# The full-run artifact is machine-dependent (the 1.3x streamed bound needs
# benchmark-grade I/O; virtualized CI hosts measure ~1.6x and the bench
# refuses to write a failing artifact) — so validate it when present, and
# skip LOUDLY when absent rather than failing every gate run on hardware
# that cannot regenerate it.
import os
if os.path.exists("BENCH_oo_trace.json"):
    doc, cal = check("BENCH_oo_trace.json", full=True)
    gb = doc["trace"]["bytes"] / 1e9
    peak = max(s["peak_buffer_bytes"] for s in doc["streamed"]) / 1e6
    print(f"oo smoke ok: checked-in full run streams {doc['trace']['requests']} "
          f"requests ({gb:.1f} GB) in {peak:.0f} MB of trace buffers, "
          f"streamed/in-memory ratio {cal['max_ratio']:.2f} (bound {cal['bound']})")
else:
    print("oo smoke ok: smoke artifact validated; SKIPPED checked-in full-run "
          "check (BENCH_oo_trace.json absent — regenerate with "
          "`target/release/oo_trace` on benchmark-grade hardware)")
PY

echo "== obs smoke: obs_dump =="
# Exercises the full observability pipeline (windowed simulation, flash
# degradation ladder, concurrent per-shard export, lossy CSV ingest) and
# validates the JSON-lines dump: every line parses standalone, the expected
# metric families are present, and no empty-histogram sentinel leaks.
./target/release/obs_dump --out target/OBS_dump.jsonl
python3 - <<'PY'
import json
lines = [l for l in open("target/OBS_dump.jsonl") if l.strip()]
assert lines, "empty obs dump"
objs = [json.loads(l) for l in lines]   # every line must parse standalone
names = {o.get("name", "") for o in objs}
for expected in (
    "sim.requests", "sim.misses", "sim.eviction_age",
    "flash.ladder.budget_trips", "flash.ladder.budget_recoveries",
    "flash.ladder.device_errors", "flash.ladder.degraded_requests",
    "cc.hits", "cc.misses",
    "trace.io.csv_skipped_lines", "trace.io.csv_parsed_lines",
):
    assert expected in names, f"obs dump missing metric: {expected}"
kinds = {o["type"] for o in objs}
assert {"counter", "gauge", "histogram", "event", "window"} <= kinds, kinds
for o in objs:
    if o["type"] == "histogram" and o["count"] == 0:
        assert o["min"] is None and o["max"] is None, f"sentinel leak: {o}"
print(f"obs smoke ok: {len(objs)} lines, {len(names - {''})} metrics, "
      f"kinds {sorted(kinds)}")
PY
# The --mrc mode: instrumented single-pass curves as JSON lines. Every line
# must parse standalone; every policy contributes curve points; the mrc.*
# counter/histogram family must be present.
./target/release/obs_dump --mrc --out target/OBS_mrc.jsonl
python3 - <<'PY'
import json
objs = [json.loads(l) for l in open("target/OBS_mrc.jsonl") if l.strip()]
points = [o for o in objs if o.get("type") == "mrc"]
assert points, "no mrc curve points"
algos = {p["algorithm"] for p in points}
assert {"FIFO", "CLOCK", "SIEVE"} <= algos and any(
    a.startswith("S3-FIFO") for a in algos), algos
for p in points:
    assert 0.0 <= p["miss_ratio"] <= 1.0 and p["engine"] in (
        "exact-fifo", "ganged", "per-capacity"), p
names = {o.get("name", "") for o in objs}
for expected in ("mrc.curves", "mrc.points", "mrc.requests", "mrc.misses",
                 "mrc.point_micros"):
    assert expected in names, f"mrc dump missing metric: {expected}"
series = {o.get("series", "") for o in objs if o.get("type") == "window"}
assert "mrc.FIFO" in series, series
print(f"obs mrc ok: {len(points)} curve points across {len(algos)} policies")
PY

echo "== server smoke: cache_loadgen --self-host =="
# Spins up three in-process servers (nominal, burst-storm with tight
# accept queues, degraded with injected write delays + a faulty flash
# tier) and drives each with the closed-loop loadgen. The binary itself
# enforces: every scenario completes ops, zero protocol (CLIENT_ERROR)
# replies, and a clean in-flight drain on shutdown. Numbers from this run
# are NOT meaningful; the checked-in BENCH_server.json comes from the
# full config.
./target/release/cache_loadgen --self-host --smoke \
    --out target/BENCH_server.json --prom-out target/SERVER_metrics.prom
python3 - <<'PY'
import json
with open("target/BENCH_server.json") as f:
    doc = json.load(f)
assert doc["bench"] == "cache_server", doc
scenarios = {s["scenario"]: s for s in doc["scenarios"]}
assert set(scenarios) == {"nominal", "burst-storm", "degraded"}, scenarios
for name, s in scenarios.items():
    assert s["ops"] > 0, f"{name}: no completed ops"
    assert s["drained"], f"{name}: unclean drain"
    assert s["errors"]["client_errors"] == 0, f"{name}: protocol errors"
    assert s["p50_us"] <= s["p99_us"] <= s["p999_us"], f"{name}: quantiles"
deg = scenarios["degraded"]
assert deg["errors"]["shed"] + deg["errors"]["timeouts"] > 0, \
    "degraded scenario produced no overload evidence"
# The Prometheus dump must be well-formed: TYPE lines, metric lines, and
# every sample line is `name value` with a parseable float.
lines = [l.rstrip("\n") for l in open("target/SERVER_metrics.prom") if l.strip()]
assert any(l.startswith("# TYPE cache_server_") for l in lines), lines[:5]
samples = [l for l in lines if not l.startswith("#")]
assert samples, "no samples in Prometheus dump"
for l in samples:
    name, value = l.rsplit(" ", 1)
    assert name.startswith("cache_server_"), l
    float(value)
print(f"server smoke ok: {sum(s['ops'] for s in scenarios.values())} ops "
      f"across {len(scenarios)} scenarios, {len(samples)} metric samples")
PY

echo "ci: all gates passed"

//! Domain scenario: choosing an eviction algorithm for a block-storage
//! cache. Replays an MSR-like block trace (scans + skewed reuse) through
//! several algorithms at two cache sizes and prints the comparison —
//! the workflow the paper's §5.2 automates at scale.
//!
//! Run: `cargo run --release --example block_storage_sim`

use cache_sim::{miss_ratio_reduction, simulate_named, CacheSizeSpec, SimConfig};
use cache_trace::corpus::msr_like;

fn main() {
    let trace = msr_like(300_000, 11);
    println!(
        "trace: {} ({} requests, {} blocks)",
        trace.name,
        trace.len(),
        trace.footprint()
    );
    for frac in [0.10, 0.01] {
        let cfg = SimConfig {
            size: CacheSizeSpec::FractionOfObjects(frac),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 100,
        };
        let fifo = simulate_named("FIFO", &trace, &cfg)
            .expect("known algorithm")
            .expect("above floor");
        println!();
        println!(
            "cache = {:.0}% of blocks ({} blocks); FIFO miss ratio {:.4}",
            frac * 100.0,
            fifo.capacity,
            fifo.miss_ratio
        );
        println!(
            "{:<12} {:>10} {:>12} {:>16}",
            "algorithm", "miss", "vs FIFO", "1-hit evictions"
        );
        for algo in [
            "S3-FIFO",
            "ARC",
            "LIRS",
            "TinyLFU-0.1",
            "2Q",
            "LRU",
            "CLOCK",
            "Belady",
        ] {
            let r = simulate_named(algo, &trace, &cfg)
                .expect("known algorithm")
                .expect("above floor");
            println!(
                "{:<12} {:>10.4} {:>11.1}% {:>15.1}%",
                algo,
                r.miss_ratio,
                miss_ratio_reduction(fifo.miss_ratio, r.miss_ratio) * 100.0,
                r.one_hit_eviction_fraction * 100.0
            );
        }
    }
    println!();
    println!("(Belady is the offline optimum — the gap above it is what any");
    println!(" online algorithm leaves on the table.)");
}

//! Domain scenario: an in-memory web-object cache under multi-core load.
//! Spins up the concurrent S3-FIFO prototype next to strict and optimized
//! LRU, replays a skewed workload from several threads, and reports
//! throughput — the paper's §5.3 scalability argument in miniature.
//!
//! Run: `cargo run --release --example web_cache_service`

use cache_concurrent::harness::{generate_keys, run_throughput, ThroughputConfig};
use cache_concurrent::lru::MutexLru;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::ConcurrentCache;
use std::sync::Arc;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = cores.min(8);
    let cfg = ThroughputConfig {
        requests_per_thread: 500_000,
        objects: 100_000,
        alpha: 1.0,
        value_size: 1024,
        seed: 42,
    };
    println!(
        "workload: zipf(1.0), {} objects, {} threads x {} requests, 1KB values",
        cfg.objects, threads, cfg.requests_per_thread
    );
    let capacity = 40_000; // ~40% of objects: low miss ratio
    let caches: Vec<Arc<dyn ConcurrentCache>> = vec![
        Arc::new(ConcurrentS3Fifo::new(capacity)),
        Arc::new(MutexLru::optimized(capacity)),
        Arc::new(MutexLru::strict(capacity)),
    ];
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "cache",
        "1 thread",
        &format!("{threads} threads"),
        "speedup"
    );
    for cache in caches {
        let name = cache.name();
        let keys1 = generate_keys(&cfg, 1);
        let r1 = run_throughput(cache.clone(), &keys1, cfg.value_size);
        let keysn = generate_keys(&cfg, threads);
        let rn = run_throughput(cache, &keysn, cfg.value_size);
        println!(
            "{:<16} {:>8.2}M {:>8.2}M {:>9.1}x",
            name,
            r1.mops,
            rn.mops,
            rn.mops / r1.mops
        );
    }
    println!();
    println!("(expected: S3-FIFO's atomic-only hit path scales with threads;");
    println!(" the LRU variants serialize on the promotion lock)");
}

//! Domain scenario: a CDN edge cache on flash. Compares admission policies
//! for write endurance vs hit ratio (§5.4) on a CDN-like trace.
//!
//! Run: `cargo run --release --example flash_cdn_cache`

use cache_flash::{AdmissionKind, FlashCache, FlashCacheConfig};
use cache_trace::corpus::{datasets, CorpusConfig};

fn main() {
    let ds = datasets()
        .into_iter()
        .find(|d| d.name == "wiki_cdn")
        .expect("wiki_cdn dataset");
    let trace = ds.trace(
        &CorpusConfig {
            traces_per_dataset: 1,
            requests_per_trace: 300_000,
            seed: 5,
        },
        0,
    );
    let unique = trace.footprint_bytes();
    let total = unique / 10;
    println!(
        "trace: {} ({} requests, {:.1} MB unique); cache = {:.1} MB, DRAM = 1%",
        trace.name,
        trace.len(),
        unique as f64 / 1e6,
        total as f64 / 1e6
    );
    println!(
        "{:<22} {:>14} {:>12}",
        "admission", "flash writes", "miss ratio"
    );
    for kind in [
        AdmissionKind::WriteAll,
        AdmissionKind::Probabilistic(0.2),
        AdmissionKind::BloomSecondAccess,
        AdmissionKind::FlashieldLike,
        AdmissionKind::SmallFifoTwoAccess,
    ] {
        let mut cache = FlashCache::new(FlashCacheConfig {
            total_bytes: total,
            dram_fraction: 0.01,
            admission: kind,
        })
        .expect("valid config");
        let s = cache.run(&trace.requests);
        println!(
            "{:<22} {:>13.2}x {:>12.3}",
            cache.admission_name(),
            s.normalized_write_bytes(unique),
            s.miss_ratio()
        );
    }
    println!();
    println!("(writes are normalized to the trace's unique bytes; the S3-FIFO");
    println!(" small-queue filter should cut writes without hurting miss ratio)");
}

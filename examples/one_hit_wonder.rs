//! Reproduces the paper's Fig. 1 toy example and the one-hit-wonder
//! analysis that motivates quick demotion (§3.1).
//!
//! Run: `cargo run --release --example one_hit_wonder`

use cache_trace::analysis::{
    one_hit_wonder_ratio, sampled_window_ohw, window_one_hit_wonder_ratio,
};
use cache_trace::gen::WorkloadSpec;
use cache_types::Request;

fn main() {
    // Fig. 1: seventeen requests to five objects A..E.
    let (a, b, c, d, e) = (1u64, 2, 3, 4, 5);
    let ids = [a, b, a, c, b, a, d, a, b, c, b, a, e, c, a, b, d];
    let reqs: Vec<Request> = ids
        .iter()
        .enumerate()
        .map(|(t, &id)| Request::get(id, t as u64))
        .collect();
    println!("Fig. 1 toy sequence: A B A C B A D A B C B A E C A B D");
    println!(
        "  full sequence:   one-hit-wonder ratio = {:.0}% (paper: 20%)",
        one_hit_wonder_ratio(&reqs) * 100.0
    );
    println!(
        "  requests 1..7:   one-hit-wonder ratio = {:.0}% (paper: 50%)",
        window_one_hit_wonder_ratio(&reqs[..7], 0, 4) * 100.0
    );
    println!(
        "  requests 1..4:   one-hit-wonder ratio = {:.0}% (paper: 67%)",
        window_one_hit_wonder_ratio(&reqs[..4], 0, 3) * 100.0
    );

    // The general phenomenon on a Zipf trace: shorter windows, more
    // one-hit wonders.
    let trace = WorkloadSpec::zipf("zipf", 300_000, 30_000, 1.0, 7).generate();
    println!();
    println!("Zipf(1.0) trace, 300k requests over 30k objects:");
    println!(
        "  full trace OHW = {:.2}",
        one_hit_wonder_ratio(&trace.requests)
    );
    for frac in [0.5, 0.1, 0.01] {
        println!(
            "  window with {:>4.0}% of objects: OHW = {:.2}",
            frac * 100.0,
            sampled_window_ohw(&trace.requests, frac, 30, 1)
        );
    }
    println!();
    println!("=> a cache sized at 10% of the footprint sees mostly one-hit");
    println!("   wonders at eviction time; evicting them early (quick demotion)");
    println!("   is what S3-FIFO's small queue does.");
}

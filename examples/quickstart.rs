//! Quickstart: use `S3FifoCache` as a drop-in bounded map.
//!
//! Run: `cargo run --example quickstart`

use s3fifo::S3FifoCache;

fn main() {
    // A cache holding up to 1000 entries; 10% of the space is the small
    // probationary queue that filters one-hit wonders.
    let mut cache: S3FifoCache<String, Vec<u8>> = S3FifoCache::new(1000).expect("capacity > 0");

    // Insert and read back.
    cache.insert("user:42".to_string(), b"alice".to_vec());
    assert_eq!(
        cache.get(&"user:42".to_string()),
        Some(&b"alice"[..].to_vec())
    );

    // Establish a small hot set...
    for i in 0..50 {
        cache.insert(format!("hot:{i}"), vec![1u8; 64]);
    }
    for _ in 0..3 {
        for i in 0..50 {
            cache.get(&format!("hot:{i}"));
        }
    }

    // ...then blast the cache with 20x its capacity of one-time keys.
    for i in 0..20_000 {
        cache.insert(format!("scan:{i}"), vec![0u8; 64]);
    }

    let survivors = (0..50)
        .filter(|i| cache.contains(&format!("hot:{i}")))
        .count();
    let m = cache.metrics();
    println!("hot keys surviving a 20x scan: {survivors}/50");
    println!(
        "hits={} misses={} evictions={} ghost admissions={}",
        m.hits, m.misses, m.evictions, m.ghost_admissions
    );
    assert!(
        survivors >= 45,
        "S3-FIFO should shield the hot set from scans"
    );
    println!("quickstart OK");
}
